//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the subset of the proptest API its property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), integer and
//! float range strategies, `proptest::collection::vec`, `any::<bool>()`,
//! `prop_oneof!`, `.prop_map(...)`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Semantics: each test function runs `cases` times with inputs drawn from a
//! deterministic per-test RNG (seeded from the test name and case index), so
//! failures reproduce across runs. **Shrinking is not implemented** — a
//! failing case reports the panic from the raw sampled input instead of a
//! minimized one. That loses debugging convenience, not coverage.

use std::ops::Range;

pub use rand::{Rng, RngCore, SeedableRng, StdRng};

/// Runner configuration and execution.
pub mod test_runner {
    use rand::{RngCore, SeedableRng, StdRng};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives one property through its configured number of cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner for `config`.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `body` once per case with a per-case deterministic RNG.
        pub fn run(&mut self, name: &str, mut body: impl FnMut(&mut StdRng)) {
            // FNV-1a over the test name keeps seeds distinct per property
            // while staying reproducible run to run.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            for case in 0..self.config.cases {
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // Warm the mixer once so case 0 doesn't sample the raw seed.
                let _ = rng.next_u64();
                body(&mut rng);
            }
        }
    }
}

/// Strategies: composable descriptions of how to sample a value.
pub mod strategy {
    use rand::{Rng, StdRng};
    use std::ops::Range;

    /// A sampleable description of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; `generate`
    /// draws a single concrete value.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter applying a function to sampled values.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (backing for `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy behind `any::<bool>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// Returns the canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::{Rng, StdRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with length in `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                0
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Non-shrinking assertion; panics (failing the case) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Non-shrinking equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Non-shrinking inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among strategy arms, all producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are sampled from strategies.
///
/// Supports the subset of real proptest syntax this workspace uses:
/// an optional leading `#![proptest_config(expr)]`, then any number of
/// `fn name(arg in strategy, ...) { body }` items with doc comments and
/// attributes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Re-exported range type for strategy signatures.
pub type SizeRange = Range<usize>;

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Union;
    use crate::test_runner::TestRunner;
    use rand::{SeedableRng, StdRng};

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_len_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = crate::collection::vec(0u8..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn union_and_map_compose() {
        let strat = Union::new(vec![
            (0u64..10).prop_map(|x| x * 2).boxed(),
            (100u64..110).boxed(),
        ]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0 || (100..110).contains(&v));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut first = Vec::new();
        TestRunner::new(ProptestConfig::with_cases(5)).run("det", |rng| {
            first.push((0u64..1000).generate(rng));
        });
        let mut second = Vec::new();
        TestRunner::new(ProptestConfig::with_cases(5)).run("det", |rng| {
            second.push((0u64..1000).generate(rng));
        });
        assert_eq!(first, second);
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// The macro itself expands with config, docs, and multiple args.
        fn macro_round_trip(a in 0u64..50, flag in any::<bool>()) {
            prop_assert!(a < 50);
            let b = if flag { a } else { a + 1 };
            prop_assert_ne!(a + 1, b + if flag { 1 } else { 0 } + 1);
            prop_assert_eq!(a, a);
        }
    }
}
