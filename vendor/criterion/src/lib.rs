//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the bench-definition API it uses (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `Bencher::iter`) backed by
//! a small timing harness: per benchmark it warms up, auto-sizes a batch so a
//! sample takes a measurable slice of the budget, collects `sample_size`
//! samples, and prints the median ns/iter. No statistical analysis, HTML
//! reports, or regression tracking — numbers are indicative, and the real
//! measurement story for this repo lives in the `src/bin/*_table.rs`
//! binaries, which use `mc-bench`'s own `measure()`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle; one per bench binary.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
            throughput: None,
        }
    }
}

/// Units processed per iteration, for reporting rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Anything acceptable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            ns_per_iter: None,
        };
        f(&mut b);
        self.report(&id, b.ns_per_iter);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            ns_per_iter: None,
        };
        f(&mut b, input);
        self.report(&id, b.ns_per_iter);
        self
    }

    fn report(&self, id: &str, ns_per_iter: Option<f64>) {
        match ns_per_iter {
            Some(ns) => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) if ns > 0.0 => {
                        format!("  ({:.1} Melem/s)", n as f64 * 1e3 / ns)
                    }
                    Some(Throughput::Bytes(n)) if ns > 0.0 => {
                        format!("  ({:.1} MiB/s)", n as f64 * 1e9 / ns / (1 << 20) as f64)
                    }
                    _ => String::new(),
                };
                println!("{}/{:<40} {:>12.1} ns/iter{}", self.name, id, ns, rate);
            }
            None => println!(
                "{}/{:<40} (no measurement: iter never called)",
                self.name, id
            ),
        }
    }

    /// Ends the group (printing happens eagerly; this is for API parity).
    pub fn finish(&mut self) {}
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measures `f`, recording the median time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and estimate cost so batches amortize timer overhead.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.5);

        let sample_budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((sample_budget_ns / est_ns).clamp(1.0, 10_000_000.0)) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

/// Declares a bench entry point running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
