//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the *interface subset it actually uses* — `Mutex`, `MutexGuard`,
//! `Condvar`, `WaitTimeoutResult` — implemented on top of `std::sync`. The
//! semantics match `parking_lot` where the workspace depends on them:
//!
//! * `Mutex::lock` returns a guard directly (no poisoning in the API; a
//!   poisoned std mutex is recovered with `into_inner`, mirroring
//!   parking_lot's "no poisoning" contract);
//! * `Condvar::wait`/`wait_for` take `&mut MutexGuard` and reacquire the lock
//!   before returning.
//!
//! The *performance* characteristics of the real crate (userspace queues,
//! word-sized locks) are of course not reproduced; benchmarks that ablate
//! "parking_lot vs std" substrate quality measure std twice until the real
//! dependency is restored.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock with the `parking_lot` guard-returning API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Returns a mutable reference to the inner value (requires exclusive
    /// access, so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily take the
/// std guard out (std's condvar consumes and returns guards by value); it is
/// `Some` at every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with the `parking_lot` `&mut guard` API.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified; the guard's lock is released while waiting and
    /// reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present outside wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    /// Like [`wait`](Self::wait) with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present outside wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
