//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool`. The generator is splitmix64 — statistically
//! fine for the randomized tests and workload shufflers in this repo, not for
//! anything security-sensitive.

use std::ops::{Range, RangeInclusive};

/// Core trait producing raw random words.
pub trait RngCore {
    /// Returns the next random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG seeded from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open or closed interval.
///
/// Mirrors `rand::distributions::uniform::SampleUniform` closely enough that
/// `gen_range(0..100)` infers the literal's type from the call site (the
/// `SampleRange` impls below are generic over `T`, exactly like real rand).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    fn sample_range(start: Self, end: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range(start: $t, end: $t, inclusive: bool, rng: &mut dyn RngCore) -> $t {
                // Work in the unsigned domain so signed spans don't overflow.
                let span = (end as $u).wrapping_sub(start as $u);
                let offset = if inclusive {
                    assert!(start <= end, "cannot sample empty range");
                    if span == <$u>::MAX {
                        // Interval covers the whole domain; any word works.
                        rng.next_u64() as $u
                    } else {
                        (rng.next_u64() % (span as u64 + 1)) as $u
                    }
                } else {
                    assert!(start < end, "cannot sample empty range");
                    (rng.next_u64() % span as u64) as $u
                };
                (start as $u).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_int_sample_uniform! {
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
}

impl SampleUniform for f64 {
    fn sample_range(start: f64, end: f64, _inclusive: bool, rng: &mut dyn RngCore) -> f64 {
        assert!(start < end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        start + unit * (end - start)
    }
}

/// A range that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (start, end) = self.into_inner();
        T::sample_range(start, end, true, rng)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014) — passes BigCrush as a
            // 64-bit mixer, one add + three xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-1000..1000);
            assert!((-1000..1000).contains(&x));
            let y: u64 = rng.gen_range(0..4);
            assert!(y < 4);
            let z: i32 = rng.gen_range(-20..=20);
            assert!((-20..=20).contains(&z));
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_range_varies() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<u64> = (0..32).map(|_| rng.gen_range(0..1_000_000)).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }
}
