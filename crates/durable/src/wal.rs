//! The injectable log-file surface: [`WalFile`], its production
//! implementation [`FsWal`], the fault-injecting [`ChaosWal`] used by the
//! kill-9 crash harness to exercise the window *between* write and fsync,
//! and the [`FailpointWal`] wrapper routing every log syscall through named
//! [`mc_chaos::failpoints`] sites.

use mc_chaos::{BufInjection, Failpoints};
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Error type for durable-counter operations, classified by recoverability:
/// [`is_transient`](Self::is_transient) tells the retry layer which failures
/// are worth retrying (an interrupted syscall, a disk-full blip an operator
/// may clear) and which are terminal.
#[derive(Debug)]
pub enum WalError {
    /// The disk is out of space (`ENOSPC`). Transient: operators free space
    /// and the counter self-heals, so the retry/degrade machinery treats
    /// this as recoverable rather than terminal.
    DiskFull(io::Error),
    /// An I/O operation was interrupted (`EINTR`). Transient by definition —
    /// the operation can simply be reissued.
    Interrupted(io::Error),
    /// Any other I/O failure on the log, snapshot, or directory.
    Io(io::Error),
    /// The snapshot file exists but fails verification. Unlike a torn log
    /// tail (recoverable by truncation), a corrupt snapshot means the
    /// baseline state is unreadable, so recovery refuses to guess.
    CorruptSnapshot(String),
}

impl WalError {
    /// Whether a retry (or a degraded-mode resync probe) can plausibly
    /// succeed: `true` for [`DiskFull`](Self::DiskFull),
    /// [`Interrupted`](Self::Interrupted), and `Io` errors whose kind is
    /// `WouldBlock`/`TimedOut`; `false` for everything else — in particular
    /// [`CorruptSnapshot`](Self::CorruptSnapshot), where retrying re-reads
    /// the same bad bytes.
    pub fn is_transient(&self) -> bool {
        match self {
            WalError::DiskFull(_) | WalError::Interrupted(_) => true,
            WalError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            WalError::CorruptSnapshot(_) => false,
        }
    }

    /// The underlying [`io::ErrorKind`], when the error wraps an I/O
    /// failure. Lets callers match `ENOSPC` vs `EINTR` without re-parsing
    /// the display string.
    pub fn io_kind(&self) -> Option<io::ErrorKind> {
        match self {
            WalError::DiskFull(e) | WalError::Interrupted(e) | WalError::Io(e) => Some(e.kind()),
            WalError::CorruptSnapshot(_) => None,
        }
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::DiskFull(e) => write!(f, "wal disk full [{:?}]: {e}", e.kind()),
            WalError::Interrupted(e) => write!(f, "wal io interrupted [{:?}]: {e}", e.kind()),
            WalError::Io(e) => write!(f, "wal io error [{:?}]: {e}", e.kind()),
            WalError::CorruptSnapshot(why) => write!(f, "corrupt snapshot: {why}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::DiskFull(e) | WalError::Interrupted(e) | WalError::Io(e) => Some(e),
            WalError::CorruptSnapshot(_) => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::StorageFull => WalError::DiskFull(e),
            io::ErrorKind::Interrupted => WalError::Interrupted(e),
            _ => WalError::Io(e),
        }
    }
}

/// The append-only log file surface the durability layer writes through.
///
/// Injectable so the crash harness can substitute [`ChaosWal`], which holds
/// appended bytes in user memory until `sync` — a SIGKILL between `append`
/// and `sync` then drops exactly the tail bytes a power loss between a
/// kernel write and an fsync would, forcing recovery down the torn-tail
/// path.
pub trait WalFile: Send {
    /// Appends `buf` at the end of the log.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Makes every previously appended byte durable before returning.
    fn sync(&mut self) -> io::Result<()>;
    /// Discards the entire log (used after a snapshot supersedes it).
    fn truncate_all(&mut self) -> io::Result<()>;
    /// Restores the log to exactly the state it had at the last successful
    /// [`sync`](Self::sync) (or open/truncate) that left it `len` bytes
    /// long, discarding any partial bytes a failed append or sync left
    /// behind. The flusher calls this before re-appending on retry: without
    /// it, a `write_all` torn mid-frame followed by a retried batch would
    /// leave a corrupt frame mid-log, and recovery truncates everything
    /// after the first corrupt frame — losing records acknowledged durable
    /// by the successful retry.
    fn rewind_to(&mut self, len: u64) -> io::Result<()>;
}

/// Production [`WalFile`]: a real file, `write_all` + `sync_data`.
pub struct FsWal {
    file: File,
}

impl FsWal {
    /// Opens (creating if absent) the log at `path` for appending.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FsWal { file })
    }
}

impl WalFile for FsWal {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        use io::Write;
        self.file.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate_all(&mut self) -> io::Result<()> {
        self.file.set_len(0)
    }

    fn rewind_to(&mut self, len: u64) -> io::Result<()> {
        // The file is opened in append mode, so the next write lands at the
        // truncated end — no seek needed.
        self.file.set_len(len)
    }
}

/// Fault-injecting [`WalFile`]: appends accumulate in user memory and only
/// reach the file (followed by an fsync) on [`sync`](WalFile::sync).
///
/// Under SIGKILL this reproduces the crash window between a log write and
/// its fsync: bytes appended but not yet synced vanish entirely, so the
/// on-disk log ends wherever the last `sync` left it — including, when the
/// kill lands mid-`write_all`, a torn partial frame.
pub struct ChaosWal {
    file: File,
    buffered: Vec<u8>,
}

impl ChaosWal {
    /// Opens (creating if absent) the log at `path` for buffered appending.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(ChaosWal {
            file,
            buffered: Vec::new(),
        })
    }

    /// Drops every byte appended since the last `sync`, simulating in
    /// process what a SIGKILL would do to the buffer. For in-process
    /// torn-tail tests.
    pub fn lose_unsynced_tail(&mut self) {
        self.buffered.clear();
    }

    /// Bytes currently buffered (appended but not yet durable).
    pub fn unsynced_len(&self) -> usize {
        self.buffered.len()
    }
}

impl WalFile for ChaosWal {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.buffered.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        use io::Write;
        self.file.write_all(&self.buffered)?;
        self.buffered.clear();
        self.file.sync_data()
    }

    fn truncate_all(&mut self) -> io::Result<()> {
        self.buffered.clear();
        self.file.set_len(0)
    }

    fn rewind_to(&mut self, len: u64) -> io::Result<()> {
        // At the last successful sync the buffer was empty and the file was
        // `len` bytes, so restoring that state drops both the in-memory
        // tail and any bytes a torn flush pushed past `len`.
        self.buffered.clear();
        self.file.set_len(len)
    }
}

/// A [`WalFile`] wrapper that routes every log operation through a named
/// [`Failpoints`] site before forwarding to the wrapped file:
///
/// | operation | site |
/// |-----------|------|
/// | [`append`](WalFile::append) | `wal.append.write` |
/// | [`sync`](WalFile::sync) | `wal.flush.fsync` |
/// | [`truncate_all`](WalFile::truncate_all) | `wal.truncate` |
/// | [`rewind_to`](WalFile::rewind_to) | `wal.rewind` |
///
/// The append site is buffer-aware: armed with a `partial` config it writes
/// a deterministic prefix of the batch through to the wrapped file before
/// returning the error, reproducing the torn mid-frame shape a real
/// `write_all` leaves when the disk fills partway through.
///
/// The durability layer wraps whatever the [`WalFactory`] produces in one of
/// these, so fault schedules armed via `MC_CHAOS_FAILPOINTS` (or
/// programmatically) hit production and chaos WALs alike. With no sites
/// armed the overhead is a single relaxed atomic load per operation.
pub struct FailpointWal {
    inner: Box<dyn WalFile>,
    fp: Arc<Failpoints>,
}

/// Failpoint site hit before every WAL append.
pub const SITE_WAL_APPEND: &str = "wal.append.write";
/// Failpoint site hit before every WAL fsync.
pub const SITE_WAL_FSYNC: &str = "wal.flush.fsync";
/// Failpoint site hit before every WAL truncation (post-snapshot reset).
pub const SITE_WAL_TRUNCATE: &str = "wal.truncate";
/// Failpoint site hit when (re-)opening a WAL file through a factory.
pub const SITE_WAL_OPEN: &str = "wal.open";
/// Failpoint site hit before rewinding the log to its last synced length
/// (the pre-retry torn-byte repair).
pub const SITE_WAL_REWIND: &str = "wal.rewind";

impl FailpointWal {
    /// Wraps `inner` so its operations consult `fp` first.
    pub fn new(inner: Box<dyn WalFile>, fp: Arc<Failpoints>) -> Self {
        FailpointWal { inner, fp }
    }
}

impl WalFile for FailpointWal {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.fp.hit_buffered(SITE_WAL_APPEND, buf.len()) {
            BufInjection::Pass => self.inner.append(buf),
            BufInjection::Fail(e) => Err(e),
            BufInjection::Partial { prefix, error } => {
                // Best effort: if even the prefix write fails the log is
                // simply torn earlier, which is the same fault shape.
                let _ = self.inner.append(&buf[..prefix]);
                Err(error)
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.fp.hit(SITE_WAL_FSYNC)?;
        self.inner.sync()
    }

    fn truncate_all(&mut self) -> io::Result<()> {
        self.fp.hit(SITE_WAL_TRUNCATE)?;
        self.inner.truncate_all()
    }

    fn rewind_to(&mut self, len: u64) -> io::Result<()> {
        self.fp.hit(SITE_WAL_REWIND)?;
        self.inner.rewind_to(len)
    }
}

/// How log files are opened — lets tests and the crash harness inject
/// [`ChaosWal`] without changing call sites.
pub type WalFactory = dyn Fn(&Path) -> io::Result<Box<dyn WalFile>> + Send + Sync;

/// The environment variable that, when set to `1`, makes
/// [`wal_factory_from_env`] produce [`ChaosWal`] instead of [`FsWal`].
pub const CHAOS_WAL_ENV: &str = "MC_CHAOS_WAL";

/// The default factory: [`FsWal`], or [`ChaosWal`] when [`CHAOS_WAL_ENV`]
/// is `1` (how the crash harness arms torn-tail injection in a child
/// process it re-executes).
pub fn wal_factory_from_env() -> Box<WalFactory> {
    if std::env::var(CHAOS_WAL_ENV).as_deref() == Ok("1") {
        Box::new(|path| Ok(Box::new(ChaosWal::open(path)?) as Box<dyn WalFile>))
    } else {
        Box::new(|path| Ok(Box::new(FsWal::open(path)?) as Box<dyn WalFile>))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_wal_drops_unsynced_tail() {
        let dir = crate::test_dir("chaos-wal");
        let path = dir.join("wal.log");
        let mut wal = ChaosWal::open(&path).unwrap();
        wal.append(b"synced").unwrap();
        wal.sync().unwrap();
        wal.append(b" lost").unwrap();
        assert_eq!(wal.unsynced_len(), 5);
        wal.lose_unsynced_tail();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(std::fs::read(&path).unwrap(), b"synced");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_wal_rewind_discards_torn_bytes_and_appends_at_boundary() {
        let dir = crate::test_dir("fswal-rewind");
        let path = dir.join("wal.log");
        let mut wal = FsWal::open(&path).unwrap();
        wal.append(b"good").unwrap();
        wal.sync().unwrap();
        // A failed attempt left torn bytes; rewinding to the synced length
        // must drop them, and the retried append must land right after the
        // verified prefix (O_APPEND writes at the truncated EOF).
        wal.append(b"to").unwrap();
        wal.rewind_to(4).unwrap();
        wal.append(b"retry").unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(std::fs::read(&path).unwrap(), b"goodretry");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_wal_rewind_drops_buffer_and_torn_file_bytes() {
        let dir = crate::test_dir("chaos-wal-rewind");
        let path = dir.join("wal.log");
        let mut wal = ChaosWal::open(&path).unwrap();
        wal.append(b"good").unwrap();
        wal.sync().unwrap();
        // Simulate a torn flush: bytes past the synced length on disk plus
        // a stale buffer. Rewind restores exactly the last synced state.
        std::fs::write(&path, b"goodTORN").unwrap();
        wal.append(b"stale").unwrap();
        wal.rewind_to(4).unwrap();
        assert_eq!(wal.unsynced_len(), 0);
        wal.append(b"retry").unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(std::fs::read(&path).unwrap(), b"goodretry");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failpoint_partial_append_writes_a_strict_prefix() {
        use mc_chaos::FailConfig;
        let dir = crate::test_dir("fp-partial-append");
        let path = dir.join("wal.log");
        let fp = Arc::new(Failpoints::new(9));
        fp.arm(
            SITE_WAL_APPEND,
            FailConfig::once_at(1, io::ErrorKind::StorageFull).partial(),
        );
        let mut wal = FailpointWal::new(Box::new(FsWal::open(&path).unwrap()), fp);
        let frame = b"0123456789abcdef";
        let err = wal.append(frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        wal.sync().unwrap();
        let torn = std::fs::read(&path).unwrap();
        assert!(
            !torn.is_empty() && torn.len() < frame.len(),
            "partial append must leave a strict prefix, got {} bytes",
            torn.len()
        );
        assert_eq!(&frame[..torn.len()], &torn[..]);
        // The disarmed site lets the retry through after a rewind.
        wal.rewind_to(0).unwrap();
        wal.append(frame).unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(std::fs::read(&path).unwrap(), frame);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_error_classifies_io_kinds() {
        // ENOSPC → DiskFull, transient; EINTR → Interrupted, transient.
        let enospc: WalError = io::Error::from_raw_os_error(28).into();
        assert!(matches!(enospc, WalError::DiskFull(_)));
        assert!(enospc.is_transient());
        assert_eq!(enospc.io_kind(), Some(io::ErrorKind::StorageFull));
        assert!(enospc.to_string().contains("StorageFull"));

        let eintr: WalError = io::Error::from(io::ErrorKind::Interrupted).into();
        assert!(matches!(eintr, WalError::Interrupted(_)));
        assert!(eintr.is_transient());

        let hard: WalError = io::Error::from(io::ErrorKind::PermissionDenied).into();
        assert!(matches!(hard, WalError::Io(_)));
        assert!(!hard.is_transient());
        assert!(hard.to_string().contains("PermissionDenied"));

        let soft: WalError = io::Error::from(io::ErrorKind::WouldBlock).into();
        assert!(soft.is_transient());

        let corrupt = WalError::CorruptSnapshot("bad crc".into());
        assert!(!corrupt.is_transient());
        assert_eq!(corrupt.io_kind(), None);
    }

    #[test]
    fn failpoint_wal_injects_per_site() {
        use mc_chaos::FailConfig;
        let dir = crate::test_dir("failpoint-wal");
        let path = dir.join("wal.log");
        let fp = Arc::new(Failpoints::new(7));
        let mut wal = FailpointWal::new(
            Box::new(FsWal::open(&path).unwrap()) as Box<dyn WalFile>,
            Arc::clone(&fp),
        );
        // Nothing armed: all operations pass through.
        wal.append(b"ok").unwrap();
        wal.sync().unwrap();
        // Arm fsync with a one-shot ENOSPC: append still works, one sync
        // fails with StorageFull, the next succeeds.
        fp.arm(
            SITE_WAL_FSYNC,
            FailConfig::always(io::ErrorKind::StorageFull).oneshot(),
        );
        wal.append(b"more").unwrap();
        let err = wal.sync().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        wal.sync().unwrap();
        assert_eq!(fp.injected(SITE_WAL_FSYNC), 1);
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_wal_appends_and_truncates() {
        let dir = crate::test_dir("fs-wal");
        let path = dir.join("wal.log");
        let mut wal = FsWal::open(&path).unwrap();
        wal.append(b"abc").unwrap();
        wal.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        wal.truncate_all().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"");
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
