//! The injectable log-file surface: [`WalFile`], its production
//! implementation [`FsWal`], and the fault-injecting [`ChaosWal`] used by
//! the kill-9 crash harness to exercise the window *between* write and
//! fsync.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

/// Error type for durable-counter operations.
#[derive(Debug)]
pub enum WalError {
    /// An I/O operation on the log, snapshot, or directory failed.
    Io(io::Error),
    /// The snapshot file exists but fails verification. Unlike a torn log
    /// tail (recoverable by truncation), a corrupt snapshot means the
    /// baseline state is unreadable, so recovery refuses to guess.
    CorruptSnapshot(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::CorruptSnapshot(why) => write!(f, "corrupt snapshot: {why}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::CorruptSnapshot(_) => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// The append-only log file surface the durability layer writes through.
///
/// Injectable so the crash harness can substitute [`ChaosWal`], which holds
/// appended bytes in user memory until `sync` — a SIGKILL between `append`
/// and `sync` then drops exactly the tail bytes a power loss between a
/// kernel write and an fsync would, forcing recovery down the torn-tail
/// path.
pub trait WalFile: Send {
    /// Appends `buf` at the end of the log.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Makes every previously appended byte durable before returning.
    fn sync(&mut self) -> io::Result<()>;
    /// Discards the entire log (used after a snapshot supersedes it).
    fn truncate_all(&mut self) -> io::Result<()>;
}

/// Production [`WalFile`]: a real file, `write_all` + `sync_data`.
pub struct FsWal {
    file: File,
}

impl FsWal {
    /// Opens (creating if absent) the log at `path` for appending.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FsWal { file })
    }
}

impl WalFile for FsWal {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        use io::Write;
        self.file.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate_all(&mut self) -> io::Result<()> {
        self.file.set_len(0)
    }
}

/// Fault-injecting [`WalFile`]: appends accumulate in user memory and only
/// reach the file (followed by an fsync) on [`sync`](WalFile::sync).
///
/// Under SIGKILL this reproduces the crash window between a log write and
/// its fsync: bytes appended but not yet synced vanish entirely, so the
/// on-disk log ends wherever the last `sync` left it — including, when the
/// kill lands mid-`write_all`, a torn partial frame.
pub struct ChaosWal {
    file: File,
    buffered: Vec<u8>,
}

impl ChaosWal {
    /// Opens (creating if absent) the log at `path` for buffered appending.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(ChaosWal {
            file,
            buffered: Vec::new(),
        })
    }

    /// Drops every byte appended since the last `sync`, simulating in
    /// process what a SIGKILL would do to the buffer. For in-process
    /// torn-tail tests.
    pub fn lose_unsynced_tail(&mut self) {
        self.buffered.clear();
    }

    /// Bytes currently buffered (appended but not yet durable).
    pub fn unsynced_len(&self) -> usize {
        self.buffered.len()
    }
}

impl WalFile for ChaosWal {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.buffered.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        use io::Write;
        self.file.write_all(&self.buffered)?;
        self.buffered.clear();
        self.file.sync_data()
    }

    fn truncate_all(&mut self) -> io::Result<()> {
        self.buffered.clear();
        self.file.set_len(0)
    }
}

/// How log files are opened — lets tests and the crash harness inject
/// [`ChaosWal`] without changing call sites.
pub type WalFactory = dyn Fn(&Path) -> io::Result<Box<dyn WalFile>> + Send + Sync;

/// The environment variable that, when set to `1`, makes
/// [`wal_factory_from_env`] produce [`ChaosWal`] instead of [`FsWal`].
pub const CHAOS_WAL_ENV: &str = "MC_CHAOS_WAL";

/// The default factory: [`FsWal`], or [`ChaosWal`] when [`CHAOS_WAL_ENV`]
/// is `1` (how the crash harness arms torn-tail injection in a child
/// process it re-executes).
pub fn wal_factory_from_env() -> Box<WalFactory> {
    if std::env::var(CHAOS_WAL_ENV).as_deref() == Ok("1") {
        Box::new(|path| Ok(Box::new(ChaosWal::open(path)?) as Box<dyn WalFile>))
    } else {
        Box::new(|path| Ok(Box::new(FsWal::open(path)?) as Box<dyn WalFile>))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_wal_drops_unsynced_tail() {
        let dir = crate::test_dir("chaos-wal");
        let path = dir.join("wal.log");
        let mut wal = ChaosWal::open(&path).unwrap();
        wal.append(b"synced").unwrap();
        wal.sync().unwrap();
        wal.append(b" lost").unwrap();
        assert_eq!(wal.unsynced_len(), 5);
        wal.lose_unsynced_tail();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(std::fs::read(&path).unwrap(), b"synced");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_wal_appends_and_truncates() {
        let dir = crate::test_dir("fs-wal");
        let path = dir.join("wal.log");
        let mut wal = FsWal::open(&path).unwrap();
        wal.append(b"abc").unwrap();
        wal.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        wal.truncate_all().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"");
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
