//! # Crash-durable monotonic counters
//!
//! A durability layer over any [`MonotonicCounter`](mc_counter::MonotonicCounter):
//! [`DurableCounter`] logs increments and poison events to a CRC32-framed,
//! length-prefixed append-only write-ahead log before acknowledging them,
//! batches concurrent increments into one fsync (group commit, coordinated
//! by monotonic counters themselves), periodically snapshots and truncates
//! the log, and recovers value *and* poison state after a crash —
//! truncating a torn tail at the first bad frame.
//!
//! The design leans on the paper's central invariant. Because a counter's
//! value only ever increases:
//!
//! * log records can carry **absolute** values, so replay is the running
//!   maximum over the verified prefix — idempotent by construction, immune
//!   to double-replay after a crash between snapshot and log truncation;
//! * recovering *any* durably recorded value is safe — a synchronization
//!   decision enabled before the crash can only have been enabled by a
//!   value the log had already reached or passed;
//! * in [batched mode](DurabilityMode::Batched) the flusher can read the
//!   live counter value directly: every snapshot of a monotone value is a
//!   valid durable point, so an increment costs the in-memory fast path
//!   plus one atomic load.
//!
//! ## Quickstart
//!
//! ```
//! use mc_durable::{DurableCounter, DurableOptions};
//! use mc_counter::{Counter, MonotonicCounter, CounterDiagnostics};
//!
//! let dir = std::env::temp_dir().join(format!("mc-doc-{}", std::process::id()));
//! let (counter, recovery) = DurableCounter::<Counter>::open(&dir).unwrap();
//! assert_eq!(recovery.value, 0); // fresh directory
//! counter.increment(3);          // fsync-durable before returning (strict mode)
//! drop(counter);
//!
//! // "Crash" and recover: the acked increments are still there.
//! let (counter, recovery) = DurableCounter::<Counter>::open(&dir).unwrap();
//! assert_eq!(recovery.value, 3);
//! assert_eq!(counter.debug_value(), 3);
//! # drop(counter);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
pub mod frame;
mod recover;
mod retry;
mod wal;

pub use counter::{DurabilityMode, DurableCounter, DurableOptions, WalStats};
pub use frame::{
    crc32, read_frame, write_frame, FrameRead, WalRecord, FRAME_HEADER, MAX_FRAME_LEN,
};
pub use recover::{
    SITE_RECOVER_READ_SNAPSHOT, SITE_RECOVER_READ_WAL, SITE_RECOVER_TRUNCATE, SITE_SNAPSHOT_CREATE,
    SITE_SNAPSHOT_DIRSYNC, SITE_SNAPSHOT_FSYNC, SITE_SNAPSHOT_RENAME, SITE_SNAPSHOT_WRITE,
    SNAPSHOT_FILE, WAL_FILE,
};
pub use retry::RetryPolicy;
pub use wal::{
    wal_factory_from_env, ChaosWal, FailpointWal, FsWal, WalError, WalFactory, WalFile,
    CHAOS_WAL_ENV, SITE_WAL_APPEND, SITE_WAL_FSYNC, SITE_WAL_OPEN, SITE_WAL_REWIND,
    SITE_WAL_TRUNCATE,
};

/// A unique per-test scratch directory under the system temp dir (unit
/// tests only; integration tests carry their own helper).
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mc-durable-{}-{}", tag, std::process::id()));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_counter::{
        Counter, CounterDiagnostics, FailureInfo, MonotonicCounter, NaiveCounter, Supervisor,
    };

    #[test]
    fn strict_increments_survive_reopen() {
        let dir = test_dir("strict-reopen");
        {
            let (c, rec) = DurableCounter::<Counter>::open(&dir).unwrap();
            assert_eq!(rec.value, 0);
            for _ in 0..10 {
                c.increment(2);
            }
            assert_eq!(c.debug_value(), 20);
            assert!(c.wal_stats().fsyncs > 0);
        }
        let (c, rec) = DurableCounter::<Counter>::open(&dir).unwrap();
        assert_eq!(rec.value, 20);
        assert_eq!(c.debug_value(), 20);
        c.check(20);
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_mode_drains_on_drop() {
        let dir = test_dir("batched-drop");
        {
            let (c, _) = DurableCounter::<Counter>::open_with(
                &dir,
                DurableOptions {
                    mode: DurabilityMode::Batched,
                    ..DurableOptions::default()
                },
            )
            .unwrap();
            for _ in 0..1000 {
                c.increment(1);
            }
            // Clean shutdown drains the last round.
        }
        let (c, rec) = DurableCounter::<Counter>::open(&dir).unwrap();
        assert_eq!(rec.value, 1000);
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_sync_is_an_explicit_durability_point() {
        let dir = test_dir("batched-sync");
        let (c, _) = DurableCounter::<Counter>::open_with(
            &dir,
            DurableOptions {
                mode: DurabilityMode::Batched,
                ..DurableOptions::default()
            },
        )
        .unwrap();
        c.increment(7);
        c.sync().unwrap();
        // Read what a concurrent crash would recover: the synced value.
        let on_disk = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let mut value = 0;
        let mut offset = 0;
        while let FrameRead::Frame { payload, next } = read_frame(&on_disk, offset) {
            if let Some(WalRecord::Advance { value: v, .. }) = WalRecord::decode(payload) {
                value = value.max(v);
            }
            offset = next;
        }
        assert_eq!(value, 7);
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_amortizes_fsyncs_across_threads() {
        let dir = test_dir("group-commit");
        let (c, _) = DurableCounter::<Counter>::open(&dir).unwrap();
        let c = std::sync::Arc::new(c);
        let threads = 8;
        let per_thread = 50;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..per_thread {
                    c.increment(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.debug_value(), threads * per_thread);
        let stats = c.wal_stats();
        assert!(
            stats.fsyncs < threads * per_thread,
            "group commit must batch: {} fsyncs for {} strict increments",
            stats.fsyncs,
            threads * per_thread
        );
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_log_and_survives_reopen() {
        let dir = test_dir("snapshot");
        {
            let (c, _) = DurableCounter::<Counter>::open_with(
                &dir,
                DurableOptions {
                    mode: DurabilityMode::Strict,
                    snapshot_every: 5,
                    ..DurableOptions::default()
                },
            )
            .unwrap();
            for _ in 0..40 {
                c.increment(1);
            }
            let stats = c.wal_stats();
            assert!(stats.snapshots > 0, "snapshot_every=5 must trigger");
        }
        assert!(dir.join(SNAPSHOT_FILE).exists());
        let (c, rec) = DurableCounter::<Counter>::open(&dir).unwrap();
        assert_eq!(rec.value, 40);
        assert_eq!(c.debug_value(), 40);
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poison_survives_reopen_in_batched_mode() {
        let dir = test_dir("poison-reopen");
        {
            let (c, _) = DurableCounter::<Counter>::open_with(
                &dir,
                DurableOptions {
                    mode: DurabilityMode::Batched,
                    ..DurableOptions::default()
                },
            )
            .unwrap();
            c.increment(4);
            c.poison(FailureInfo::new("producer crashed").with_level(6));
            assert!(c.poison_info().is_some());
        }
        let (c, rec) = DurableCounter::<Counter>::open(&dir).unwrap();
        assert!(rec.poison_restored);
        let info = c.poison_info().expect("poison restored");
        assert_eq!(info.message(), "producer crashed");
        assert_eq!(info.level(), Some(6));
        assert_eq!(c.debug_value(), 4);
        // Poisoned but satisfied levels still succeed; blocking waits fail.
        assert!(c.wait(4).is_ok());
        assert!(c.wait(5).is_err());
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn works_over_any_resumable_impl() {
        let dir = test_dir("naive-impl");
        {
            let (c, _) = DurableCounter::<NaiveCounter>::open(&dir).unwrap();
            c.increment(5);
            assert_eq!(c.impl_name(), "durable");
        }
        let (c, rec) = DurableCounter::<NaiveCounter>::open(&dir).unwrap();
        assert_eq!(rec.value, 5);
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_supervised_reports_recovery() {
        let dir = test_dir("supervised");
        {
            let (c, _) = DurableCounter::<Counter>::open(&dir).unwrap();
            c.increment(9);
        }
        let sup = Supervisor::new();
        let (c, _) = DurableCounter::<Counter>::open_supervised(
            &dir,
            DurableOptions::default(),
            &sup,
            "jobs",
        )
        .unwrap();
        let report = sup.recovery_report();
        assert_eq!(report.counters_recovered(), 1);
        assert_eq!(report.counters[0].name, "jobs");
        assert_eq!(report.counters[0].recovery.value, 9);
        // And it is registered for stall diagnostics like any counter.
        assert_eq!(sup.diagnose().counters[0].value, 9);
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_reported_and_discarded() {
        let dir = test_dir("torn");
        {
            let (c, _) = DurableCounter::<Counter>::open(&dir).unwrap();
            c.increment(6);
        }
        // Tear the log: append garbage that is not a valid frame.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(f);
        let (c, rec) = DurableCounter::<Counter>::open(&dir).unwrap();
        assert_eq!(rec.value, 6);
        assert_eq!(rec.tail_bytes_discarded, 3);
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
