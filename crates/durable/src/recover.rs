//! Snapshot encoding and directory recovery: replay the verified log
//! prefix over the snapshot baseline, truncate the torn tail, restore
//! value and poison state.

use crate::frame::{read_frame, write_frame, FrameRead, WalRecord};
use crate::wal::WalError;
use mc_counter::{FailureInfo, Value};
use std::fs;
use std::io::Write;
use std::path::Path;

/// File name of the append-only log inside a durable counter's directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the snapshot inside a durable counter's directory.
pub const SNAPSHOT_FILE: &str = "snapshot";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
const SNAPSHOT_MAGIC: &[u8; 4] = b"MCSN";

/// The state recovered from a durable counter's directory.
#[derive(Debug, Clone, Default)]
pub(crate) struct RecoveredState {
    /// The recovered counter value (max over snapshot and verified log).
    pub value: Value,
    /// The sequence number the next log record must use.
    pub next_seq: u64,
    /// The restored poison cause, if the counter was poisoned before the
    /// crash (first poison wins, exactly as in-process).
    pub poison: Option<FailureInfo>,
    /// Intact log records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Torn-tail bytes discarded (and physically truncated) from the log.
    pub tail_bytes_discarded: u64,
}

/// The persisted poison fields of a snapshot or a replayed record.
fn poison_from_parts(thread: &str, message: &str, level: Option<Value>) -> FailureInfo {
    let info = FailureInfo::new(message).with_thread(thread);
    match level {
        Some(l) => info.with_level(l),
        None => info,
    }
}

/// Snapshot payload: magic, last covered sequence number, value, optional
/// poison (same field encoding as a poison record).
pub(crate) fn encode_snapshot(seq: u64, value: Value, poison: Option<&FailureInfo>) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.extend_from_slice(SNAPSHOT_MAGIC);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&value.to_le_bytes());
    match poison {
        None => payload.push(0),
        Some(info) => {
            payload.push(1);
            match info.level() {
                Some(l) => {
                    payload.push(1);
                    payload.extend_from_slice(&l.to_le_bytes());
                }
                None => payload.push(0),
            }
            let thread = info.thread().as_bytes();
            payload.extend_from_slice(&(thread.len() as u32).to_le_bytes());
            payload.extend_from_slice(thread);
            let message = info.message().as_bytes();
            payload.extend_from_slice(&(message.len() as u32).to_le_bytes());
            payload.extend_from_slice(message);
        }
    }
    let mut framed = Vec::with_capacity(payload.len() + crate::frame::FRAME_HEADER);
    write_frame(&mut framed, &payload);
    framed
}

fn decode_snapshot(bytes: &[u8]) -> Result<(u64, Value, Option<FailureInfo>), WalError> {
    let corrupt = |why: &str| WalError::CorruptSnapshot(why.to_string());
    let FrameRead::Frame { payload, next } = read_frame(bytes, 0) else {
        return Err(corrupt("unreadable frame"));
    };
    if next != bytes.len() {
        return Err(corrupt("trailing bytes after snapshot frame"));
    }
    if payload.get(..4) != Some(SNAPSHOT_MAGIC.as_slice()) {
        return Err(corrupt("bad magic"));
    }
    let seq = u64::from_le_bytes(payload[4..12].try_into().map_err(|_| corrupt("short"))?);
    let value = u64::from_le_bytes(payload[12..20].try_into().map_err(|_| corrupt("short"))?);
    let rest = payload.get(20..).ok_or_else(|| corrupt("short"))?;
    let poison = match rest.first() {
        Some(0) if rest.len() == 1 => None,
        Some(1) => {
            let rest = &rest[1..];
            let (level, rest) = match rest.first() {
                Some(0) => (None, rest.get(1..).ok_or_else(|| corrupt("short"))?),
                Some(1) => {
                    let l = rest
                        .get(1..9)
                        .ok_or_else(|| corrupt("short"))?
                        .try_into()
                        .map_err(|_| corrupt("short"))?;
                    (
                        Some(u64::from_le_bytes(l)),
                        rest.get(9..).ok_or_else(|| corrupt("short"))?,
                    )
                }
                _ => return Err(corrupt("bad poison level tag")),
            };
            let read_str = |rest: &[u8]| -> Result<(String, usize), WalError> {
                let len = u32::from_le_bytes(
                    rest.get(..4)
                        .ok_or_else(|| corrupt("short"))?
                        .try_into()
                        .map_err(|_| corrupt("short"))?,
                ) as usize;
                let s = std::str::from_utf8(rest.get(4..4 + len).ok_or_else(|| corrupt("short"))?)
                    .map_err(|_| corrupt("bad utf-8"))?;
                Ok((s.to_string(), 4 + len))
            };
            let (thread, used) = read_str(rest)?;
            let (message, used2) = read_str(&rest[used..])?;
            if used + used2 != rest.len() {
                return Err(corrupt("trailing bytes in poison"));
            }
            Some(poison_from_parts(&thread, &message, level))
        }
        _ => return Err(corrupt("bad poison tag")),
    };
    Ok((seq, value, poison))
}

/// Durably writes a snapshot: temp file, fsync, atomic rename, directory
/// fsync. A crash at any point leaves either the old or the new snapshot
/// intact, never a torn one.
pub(crate) fn write_snapshot(
    dir: &Path,
    seq: u64,
    value: Value,
    poison: Option<&FailureInfo>,
) -> std::io::Result<()> {
    let tmp = dir.join(SNAPSHOT_TMP);
    let framed = encode_snapshot(seq, value, poison);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&framed)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    // Make the rename itself durable. Directory fsync can be unsupported on
    // exotic filesystems; the rename is still atomic, so degrade gracefully.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Recovers a durable counter's directory: loads the snapshot (if any),
/// replays every verified log record, truncates the torn tail at the first
/// bad frame, and returns the reconstructed state.
///
/// Replay is the running **maximum** over absolute-value records, so it is
/// idempotent: records covered by both the snapshot and the log (a crash
/// between snapshot rename and log truncation) cannot inflate the value.
pub(crate) fn recover_dir(dir: &Path) -> Result<RecoveredState, WalError> {
    fs::create_dir_all(dir)?;
    // A leftover temp snapshot is an aborted snapshot write: discard.
    let _ = fs::remove_file(dir.join(SNAPSHOT_TMP));

    let mut state = RecoveredState::default();
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    match fs::read(&snapshot_path) {
        Ok(bytes) => {
            let (seq, value, poison) = decode_snapshot(&bytes)?;
            state.value = value;
            state.next_seq = seq + 1;
            state.poison = poison;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }

    let wal_path = dir.join(WAL_FILE);
    let bytes = match fs::read(&wal_path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(state),
        Err(e) => return Err(e.into()),
    };
    let mut offset = 0usize;
    loop {
        match read_frame(&bytes, offset) {
            FrameRead::End => break,
            FrameRead::Corrupt => break,
            FrameRead::Frame { payload, next } => {
                // A CRC-verified frame with an undecodable payload is treated
                // exactly like a corrupt frame: the verified prefix ends here.
                let Some(record) = WalRecord::decode(payload) else {
                    break;
                };
                match record {
                    WalRecord::Advance { seq, value } => {
                        state.value = state.value.max(value);
                        state.next_seq = state.next_seq.max(seq + 1);
                    }
                    WalRecord::Poison {
                        seq,
                        thread,
                        message,
                        level,
                    } => {
                        if state.poison.is_none() {
                            state.poison = Some(poison_from_parts(&thread, &message, level));
                        }
                        state.next_seq = state.next_seq.max(seq + 1);
                    }
                }
                state.records_replayed += 1;
                offset = next;
            }
        }
    }
    state.tail_bytes_discarded = (bytes.len() - offset) as u64;
    if state.tail_bytes_discarded > 0 {
        // Physically truncate the torn tail so the next appended frame
        // starts at a verified boundary.
        let f = fs::OpenOptions::new().write(true).open(&wal_path)?;
        f.set_len(offset as u64)?;
        f.sync_all()?;
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dir_recovers_to_zero() {
        let dir = crate::test_dir("recover-empty");
        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.value, 0);
        assert_eq!(state.next_seq, 0);
        assert!(state.poison.is_none());
        assert_eq!(state.records_replayed, 0);
        assert_eq!(state.tail_bytes_discarded, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_replay_is_running_max_and_truncates_torn_tail() {
        let dir = crate::test_dir("recover-replay");
        fs::create_dir_all(&dir).unwrap();
        let mut log = Vec::new();
        for (seq, value) in [(0u64, 3u64), (1, 7), (2, 7), (3, 12)] {
            log.extend_from_slice(&WalRecord::Advance { seq, value }.encode_framed());
        }
        let clean_len = log.len();
        // Torn tail: half a frame.
        let torn = &WalRecord::Advance { seq: 4, value: 99 }.encode_framed();
        log.extend_from_slice(&torn[..torn.len() / 2]);
        fs::write(dir.join(WAL_FILE), &log).unwrap();

        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.value, 12, "torn record must not contribute");
        assert_eq!(state.next_seq, 4);
        assert_eq!(state.records_replayed, 4);
        assert_eq!(state.tail_bytes_discarded as usize, log.len() - clean_len);
        // The tail is physically gone: recovering again is clean.
        let again = recover_dir(&dir).unwrap();
        assert_eq!(again.tail_bytes_discarded, 0);
        assert_eq!(again.value, 12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_stale_log_records_do_not_inflate() {
        let dir = crate::test_dir("recover-snap");
        fs::create_dir_all(&dir).unwrap();
        write_snapshot(&dir, 5, 40, None).unwrap();
        // Crash-between-rename-and-truncate: the log still holds records the
        // snapshot already covers, plus one newer record.
        let mut log = Vec::new();
        log.extend_from_slice(&WalRecord::Advance { seq: 4, value: 30 }.encode_framed());
        log.extend_from_slice(&WalRecord::Advance { seq: 6, value: 41 }.encode_framed());
        fs::write(dir.join(WAL_FILE), &log).unwrap();
        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.value, 41);
        assert_eq!(state.next_seq, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poison_round_trips_through_snapshot_and_log() {
        let dir = crate::test_dir("recover-poison");
        fs::create_dir_all(&dir).unwrap();
        let info = FailureInfo::new("producer died")
            .with_thread("worker-7")
            .with_level(9);
        write_snapshot(&dir, 2, 10, Some(&info)).unwrap();
        let state = recover_dir(&dir).unwrap();
        let restored = state.poison.expect("poison restored");
        assert_eq!(restored.thread(), "worker-7");
        assert_eq!(restored.message(), "producer died");
        assert_eq!(restored.level(), Some(9));

        // A later log poison must NOT override the snapshot's (first wins).
        let rec = WalRecord::Poison {
            seq: 3,
            thread: "other".into(),
            message: "second".into(),
            level: None,
        };
        fs::write(dir.join(WAL_FILE), rec.encode_framed()).unwrap();
        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.poison.unwrap().message(), "producer died");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = crate::test_dir("recover-corrupt-snap");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(SNAPSHOT_FILE), b"garbage").unwrap();
        match recover_dir(&dir) {
            Err(WalError::CorruptSnapshot(_)) => {}
            other => panic!("expected CorruptSnapshot, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
