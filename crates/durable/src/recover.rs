//! Snapshot encoding and directory recovery: replay the verified log
//! prefix over the snapshot baseline, truncate the torn tail, restore
//! value and poison state.

use crate::frame::{read_frame, write_frame, FrameRead, WalRecord};
use crate::wal::WalError;
use mc_chaos::Failpoints;
use mc_counter::{FailureInfo, Value};
use std::fs;
use std::io::Write;
use std::path::Path;

/// File name of the append-only log inside a durable counter's directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the snapshot inside a durable counter's directory.
pub const SNAPSHOT_FILE: &str = "snapshot";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
const SNAPSHOT_MAGIC: &[u8; 4] = b"MCSN";

/// Failpoint site hit before creating the snapshot temp file.
pub const SITE_SNAPSHOT_CREATE: &str = "snapshot.create";
/// Failpoint site hit before writing the snapshot payload.
pub const SITE_SNAPSHOT_WRITE: &str = "snapshot.write";
/// Failpoint site hit before fsyncing the snapshot temp file.
pub const SITE_SNAPSHOT_FSYNC: &str = "snapshot.fsync";
/// Failpoint site hit before the atomic rename into place.
pub const SITE_SNAPSHOT_RENAME: &str = "snapshot.rename";
/// Failpoint site hit before the directory fsync sealing the rename.
pub const SITE_SNAPSHOT_DIRSYNC: &str = "snapshot.dirsync";
/// Failpoint site hit before reading the snapshot during recovery.
pub const SITE_RECOVER_READ_SNAPSHOT: &str = "recover.read.snapshot";
/// Failpoint site hit before reading the log during recovery.
pub const SITE_RECOVER_READ_WAL: &str = "recover.read.wal";
/// Failpoint site hit before physically truncating a torn log tail.
pub const SITE_RECOVER_TRUNCATE: &str = "recover.truncate";

/// The state recovered from a durable counter's directory.
#[derive(Debug, Clone, Default)]
pub(crate) struct RecoveredState {
    /// The recovered counter value (max over snapshot and verified log).
    pub value: Value,
    /// The sequence number the next log record must use.
    pub next_seq: u64,
    /// The restored poison cause, if the counter was poisoned before the
    /// crash (first poison wins, exactly as in-process).
    pub poison: Option<FailureInfo>,
    /// Intact log records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Torn-tail bytes discarded (and physically truncated) from the log.
    pub tail_bytes_discarded: u64,
    /// Byte length of the verified log after recovery (the truncation
    /// point). Seeds the flusher's synced-length watermark, which the
    /// append-retry path rewinds to before re-appending.
    pub log_len: u64,
}

/// The persisted poison fields of a snapshot or a replayed record.
fn poison_from_parts(thread: &str, message: &str, level: Option<Value>) -> FailureInfo {
    let info = FailureInfo::new(message).with_thread(thread);
    match level {
        Some(l) => info.with_level(l),
        None => info,
    }
}

/// Snapshot payload: magic, last covered sequence number, value, optional
/// poison (same field encoding as a poison record).
pub(crate) fn encode_snapshot(seq: u64, value: Value, poison: Option<&FailureInfo>) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.extend_from_slice(SNAPSHOT_MAGIC);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&value.to_le_bytes());
    match poison {
        None => payload.push(0),
        Some(info) => {
            payload.push(1);
            match info.level() {
                Some(l) => {
                    payload.push(1);
                    payload.extend_from_slice(&l.to_le_bytes());
                }
                None => payload.push(0),
            }
            let thread = info.thread().as_bytes();
            payload.extend_from_slice(&(thread.len() as u32).to_le_bytes());
            payload.extend_from_slice(thread);
            let message = info.message().as_bytes();
            payload.extend_from_slice(&(message.len() as u32).to_le_bytes());
            payload.extend_from_slice(message);
        }
    }
    let mut framed = Vec::with_capacity(payload.len() + crate::frame::FRAME_HEADER);
    write_frame(&mut framed, &payload);
    framed
}

fn decode_snapshot(bytes: &[u8]) -> Result<(u64, Value, Option<FailureInfo>), WalError> {
    let corrupt = |why: &str| WalError::CorruptSnapshot(why.to_string());
    let FrameRead::Frame { payload, next } = read_frame(bytes, 0) else {
        return Err(corrupt("unreadable frame"));
    };
    if next != bytes.len() {
        return Err(corrupt("trailing bytes after snapshot frame"));
    }
    if payload.get(..4) != Some(SNAPSHOT_MAGIC.as_slice()) {
        return Err(corrupt("bad magic"));
    }
    let seq = u64::from_le_bytes(payload[4..12].try_into().map_err(|_| corrupt("short"))?);
    let value = u64::from_le_bytes(payload[12..20].try_into().map_err(|_| corrupt("short"))?);
    let rest = payload.get(20..).ok_or_else(|| corrupt("short"))?;
    let poison = match rest.first() {
        Some(0) if rest.len() == 1 => None,
        Some(1) => {
            let rest = &rest[1..];
            let (level, rest) = match rest.first() {
                Some(0) => (None, rest.get(1..).ok_or_else(|| corrupt("short"))?),
                Some(1) => {
                    let l = rest
                        .get(1..9)
                        .ok_or_else(|| corrupt("short"))?
                        .try_into()
                        .map_err(|_| corrupt("short"))?;
                    (
                        Some(u64::from_le_bytes(l)),
                        rest.get(9..).ok_or_else(|| corrupt("short"))?,
                    )
                }
                _ => return Err(corrupt("bad poison level tag")),
            };
            let read_str = |rest: &[u8]| -> Result<(String, usize), WalError> {
                let len = u32::from_le_bytes(
                    rest.get(..4)
                        .ok_or_else(|| corrupt("short"))?
                        .try_into()
                        .map_err(|_| corrupt("short"))?,
                ) as usize;
                let s = std::str::from_utf8(rest.get(4..4 + len).ok_or_else(|| corrupt("short"))?)
                    .map_err(|_| corrupt("bad utf-8"))?;
                Ok((s.to_string(), 4 + len))
            };
            let (thread, used) = read_str(rest)?;
            let (message, used2) = read_str(&rest[used..])?;
            if used + used2 != rest.len() {
                return Err(corrupt("trailing bytes in poison"));
            }
            Some(poison_from_parts(&thread, &message, level))
        }
        _ => return Err(corrupt("bad poison tag")),
    };
    Ok((seq, value, poison))
}

/// Durably writes a snapshot: temp file, fsync, atomic rename, directory
/// fsync. A crash at any point leaves either the old or the new snapshot
/// intact, never a torn one.
pub(crate) fn write_snapshot(
    dir: &Path,
    seq: u64,
    value: Value,
    poison: Option<&FailureInfo>,
    fp: &Failpoints,
) -> std::io::Result<()> {
    let tmp = dir.join(SNAPSHOT_TMP);
    let framed = encode_snapshot(seq, value, poison);
    {
        fp.hit(SITE_SNAPSHOT_CREATE)?;
        let mut f = fs::File::create(&tmp)?;
        fp.hit(SITE_SNAPSHOT_WRITE)?;
        f.write_all(&framed)?;
        fp.hit(SITE_SNAPSHOT_FSYNC)?;
        f.sync_all()?;
    }
    fp.hit(SITE_SNAPSHOT_RENAME)?;
    fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    // Make the rename itself durable. The injectable site fails hard (a
    // chaos schedule must be able to observe a dirsync fault), but the real
    // directory fsync can be unsupported on exotic filesystems; the rename
    // is still atomic there, so the genuine syscall degrades gracefully.
    fp.hit(SITE_SNAPSHOT_DIRSYNC)?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Recovers a durable counter's directory: loads the snapshot (if any),
/// replays every verified log record, truncates the torn tail at the first
/// bad frame, and returns the reconstructed state.
///
/// Replay is the running **maximum** over absolute-value records, so it is
/// idempotent: records covered by both the snapshot and the log (a crash
/// between snapshot rename and log truncation) cannot inflate the value.
pub(crate) fn recover_dir(dir: &Path, fp: &Failpoints) -> Result<RecoveredState, WalError> {
    fs::create_dir_all(dir)?;
    // A leftover temp snapshot is an aborted snapshot write: discard.
    let _ = fs::remove_file(dir.join(SNAPSHOT_TMP));

    let mut state = RecoveredState::default();
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    fp.hit(SITE_RECOVER_READ_SNAPSHOT)?;
    match fs::read(&snapshot_path) {
        Ok(bytes) => {
            let (seq, value, poison) = decode_snapshot(&bytes)?;
            state.value = value;
            state.next_seq = seq + 1;
            state.poison = poison;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }

    let wal_path = dir.join(WAL_FILE);
    fp.hit(SITE_RECOVER_READ_WAL)?;
    let bytes = match fs::read(&wal_path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(state),
        Err(e) => return Err(e.into()),
    };
    let mut offset = 0usize;
    loop {
        match read_frame(&bytes, offset) {
            FrameRead::End => break,
            FrameRead::Corrupt => break,
            FrameRead::Frame { payload, next } => {
                // A CRC-verified frame with an undecodable payload is treated
                // exactly like a corrupt frame: the verified prefix ends here.
                let Some(record) = WalRecord::decode(payload) else {
                    break;
                };
                match record {
                    WalRecord::Advance { seq, value } => {
                        state.value = state.value.max(value);
                        state.next_seq = state.next_seq.max(seq + 1);
                    }
                    WalRecord::Poison {
                        seq,
                        thread,
                        message,
                        level,
                    } => {
                        if state.poison.is_none() {
                            state.poison = Some(poison_from_parts(&thread, &message, level));
                        }
                        state.next_seq = state.next_seq.max(seq + 1);
                    }
                }
                state.records_replayed += 1;
                offset = next;
            }
        }
    }
    state.tail_bytes_discarded = (bytes.len() - offset) as u64;
    state.log_len = offset as u64;
    if state.tail_bytes_discarded > 0 {
        // Physically truncate the torn tail so the next appended frame
        // starts at a verified boundary.
        fp.hit(SITE_RECOVER_TRUNCATE)?;
        let f = fs::OpenOptions::new().write(true).open(&wal_path)?;
        f.set_len(offset as u64)?;
        f.sync_all()?;
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failpoints with nothing armed — recovery behaves as in production.
    fn fp() -> Failpoints {
        Failpoints::new(0)
    }

    #[test]
    fn snapshot_failpoints_surface_and_leave_old_snapshot_intact() {
        use mc_chaos::FailConfig;
        let dir = crate::test_dir("recover-snap-fp");
        fs::create_dir_all(&dir).unwrap();
        let fp = fp();
        write_snapshot(&dir, 1, 10, None, &fp).unwrap();

        // Every snapshot site, injected one at a time, must fail the write
        // while leaving the previous snapshot readable (crash atomicity).
        for site in [
            SITE_SNAPSHOT_CREATE,
            SITE_SNAPSHOT_WRITE,
            SITE_SNAPSHOT_FSYNC,
            SITE_SNAPSHOT_RENAME,
            SITE_SNAPSHOT_DIRSYNC,
        ] {
            fp.arm(
                site,
                FailConfig::always(std::io::ErrorKind::StorageFull).oneshot(),
            );
            let err = write_snapshot(&dir, 2, 20, None, &fp).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::StorageFull, "{site}");
            let state = recover_dir(&dir, &fp).unwrap();
            // dirsync fires after the rename lands, so the new value is
            // durable from that site onward; earlier sites keep the old one.
            assert!(
                state.value == 10 || site == SITE_SNAPSHOT_DIRSYNC,
                "{site}: recovered {}",
                state.value
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_recovers_to_zero() {
        let dir = crate::test_dir("recover-empty");
        let state = recover_dir(&dir, &fp()).unwrap();
        assert_eq!(state.value, 0);
        assert_eq!(state.next_seq, 0);
        assert!(state.poison.is_none());
        assert_eq!(state.records_replayed, 0);
        assert_eq!(state.tail_bytes_discarded, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_replay_is_running_max_and_truncates_torn_tail() {
        let dir = crate::test_dir("recover-replay");
        fs::create_dir_all(&dir).unwrap();
        let mut log = Vec::new();
        for (seq, value) in [(0u64, 3u64), (1, 7), (2, 7), (3, 12)] {
            log.extend_from_slice(&WalRecord::Advance { seq, value }.encode_framed());
        }
        let clean_len = log.len();
        // Torn tail: half a frame.
        let torn = &WalRecord::Advance { seq: 4, value: 99 }.encode_framed();
        log.extend_from_slice(&torn[..torn.len() / 2]);
        fs::write(dir.join(WAL_FILE), &log).unwrap();

        let state = recover_dir(&dir, &fp()).unwrap();
        assert_eq!(state.value, 12, "torn record must not contribute");
        assert_eq!(state.next_seq, 4);
        assert_eq!(state.records_replayed, 4);
        assert_eq!(state.tail_bytes_discarded as usize, log.len() - clean_len);
        // The tail is physically gone: recovering again is clean.
        let again = recover_dir(&dir, &fp()).unwrap();
        assert_eq!(again.tail_bytes_discarded, 0);
        assert_eq!(again.value, 12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_stale_log_records_do_not_inflate() {
        let dir = crate::test_dir("recover-snap");
        fs::create_dir_all(&dir).unwrap();
        write_snapshot(&dir, 5, 40, None, &fp()).unwrap();
        // Crash-between-rename-and-truncate: the log still holds records the
        // snapshot already covers, plus one newer record.
        let mut log = Vec::new();
        log.extend_from_slice(&WalRecord::Advance { seq: 4, value: 30 }.encode_framed());
        log.extend_from_slice(&WalRecord::Advance { seq: 6, value: 41 }.encode_framed());
        fs::write(dir.join(WAL_FILE), &log).unwrap();
        let state = recover_dir(&dir, &fp()).unwrap();
        assert_eq!(state.value, 41);
        assert_eq!(state.next_seq, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poison_round_trips_through_snapshot_and_log() {
        let dir = crate::test_dir("recover-poison");
        fs::create_dir_all(&dir).unwrap();
        let info = FailureInfo::new("producer died")
            .with_thread("worker-7")
            .with_level(9);
        write_snapshot(&dir, 2, 10, Some(&info), &fp()).unwrap();
        let state = recover_dir(&dir, &fp()).unwrap();
        let restored = state.poison.expect("poison restored");
        assert_eq!(restored.thread(), "worker-7");
        assert_eq!(restored.message(), "producer died");
        assert_eq!(restored.level(), Some(9));

        // A later log poison must NOT override the snapshot's (first wins).
        let rec = WalRecord::Poison {
            seq: 3,
            thread: "other".into(),
            message: "second".into(),
            level: None,
        };
        fs::write(dir.join(WAL_FILE), rec.encode_framed()).unwrap();
        let state = recover_dir(&dir, &fp()).unwrap();
        assert_eq!(state.poison.unwrap().message(), "producer died");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = crate::test_dir("recover-corrupt-snap");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(SNAPSHOT_FILE), b"garbage").unwrap();
        match recover_dir(&dir, &fp()) {
            Err(WalError::CorruptSnapshot(_)) => {}
            other => panic!("expected CorruptSnapshot, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
