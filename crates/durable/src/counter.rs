//! [`DurableCounter`]: a crash-durable wrapper over any
//! [`MonotonicCounter`], logging increments and poison events to a
//! CRC32-framed write-ahead log with group-commit batching, periodic
//! snapshots, torn-tail recovery, bounded I/O retry, and degraded-mode
//! self-healing.
//!
//! # Group commit, guarded by monotonic counters
//!
//! The flusher is a dedicated thread; writers never touch the file. The
//! coordination is the paper's own primitive, dogfooded:
//!
//! * `rounds` — writers bump it (at most once per flush round, via a dirty
//!   flag) to signal work; the flusher `wait`s on it for the next round.
//! * `durable` — advanced by the flusher to the last acknowledged-durable
//!   value; a strict-mode writer `wait`s on it for its target value, so one
//!   fsync acknowledges every increment that enqueued before it (group
//!   commit).
//! * `poisons_synced` — advanced per persisted poison event, so `poison`
//!   returns only after its cause is durable in **both** modes.
//!
//! Monotonicity does the heavy lifting: log records carry *absolute* values
//! (replay = running max, idempotent), and in batched mode the flusher can
//! read the inner counter's value directly — any snapshot of a monotone
//! value is a correct durable point, which is why a batched increment costs
//! only the in-memory increment plus one atomic load.
//!
//! # Fault tolerance
//!
//! Three layers stand between an I/O error and a poisoned counter:
//!
//! 1. **Retry** — transient failures (`ENOSPC`, `EINTR`, `EWOULDBLOCK`,
//!    timeouts; see [`WalError::is_transient`]) are retried under
//!    [`RetryPolicy`] with jittered exponential backoff. Retries are
//!    counted in [`StatsSnapshot::io_retries`] and [`WalStats::retries`].
//!    Retrying a whole append+fsync batch is safe because records carry
//!    absolute values (a duplicated record replays as a no-op running max)
//!    and every retry first rewinds the log to its last synced length, so
//!    a partial write torn mid-frame by the failed attempt can never sit
//!    ahead of the retried frames as mid-log corruption.
//! 2. **Degraded mode** — with [`PoisonPolicy::Degrade`], exhausting the
//!    retry budget parks the log instead of poisoning: increments keep
//!    serving from the in-memory fast path, acknowledgements come from a
//!    *replay-budget*-bounded memory watermark, and
//!    [`health`](DurableCounter::health) reports
//!    [`HealthStatus::Degraded`]. Because a monotone counter's unsynced
//!    state collapses to one absolute value (plus queued poison causes),
//!    the replay buffer is O(1) regardless of how long the outage lasts.
//! 3. **Self-healing** — while degraded the flusher probes the directory
//!    every `resync_interval`: full [`recover_dir`] (which also repairs any
//!    torn tail the failed write left — appending after a torn frame would
//!    strand the new records behind it), reopen through the factory, append
//!    one collapsed advance plus the queued poisons, fsync, and the counter
//!    returns to [`HealthStatus::Healthy`]. Every fault site in this path
//!    is failpoint-instrumented, so chaos schedules can crash a counter
//!    *during* resync.
//!
//! Under the default [`PoisonPolicy::Propagate`] (and `Ignore`, which only
//! concerns explicit in-memory poisoning), a post-retry failure poisons the
//! counter with the cause — the pre-degraded-mode semantics.

use crate::frame::WalRecord;
use crate::recover::{recover_dir, write_snapshot, WAL_FILE};
use crate::retry::{with_retry, JitterRng};
use crate::wal::{
    wal_factory_from_env, FailpointWal, WalError, WalFactory, WalFile, SITE_WAL_OPEN,
};
use crate::RetryPolicy;
use mc_chaos::Failpoints;
use mc_counter::{
    CheckError, Counter, CounterDiagnostics, CounterOverflowError, CounterRecovery, FailureInfo,
    HealthStatus, MetricsSink, MonotonicCounter, PoisonPolicy, ResumableCounter, StatsSnapshot,
    Supervisor, Value, WaitingLevel,
};
use mc_metrics::{Event, Histogram};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
// lint:allow(raw-sync): WAL-core plumbing (flusher handoff queues), not protocol synchronization
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When a durable counter acknowledges an increment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// `increment` returns only after the increment is fsync-durable, and
    /// the in-memory value (what waiters observe) is applied *after*
    /// durability — an acked level can never outrun the log. Concurrent
    /// increments share one fsync (group commit).
    Strict,
    /// `increment` applies in memory and returns immediately; the flusher
    /// continuously coalesces the current value into the log. Increments
    /// since the last completed flush round can be lost to a crash (never
    /// reordered or inflated — recovery is still a verified monotone
    /// prefix). Poison events remain strict even in this mode.
    Batched,
}

/// Configuration for [`DurableCounter::open`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// When increments are acknowledged. Default: [`DurabilityMode::Strict`].
    pub mode: DurabilityMode,
    /// Write a snapshot (and truncate the log) after this many log records.
    /// `0` disables snapshotting. Default: 1024.
    pub snapshot_every: u64,
    /// Retry policy for transient WAL I/O failures. Default:
    /// [`RetryPolicy::default`] (4 retries, 1ms..50ms backoff);
    /// [`RetryPolicy::none`] surfaces every error on first occurrence.
    pub retry: RetryPolicy,
    /// What a post-retry WAL failure does. [`PoisonPolicy::Degrade`] enters
    /// degraded mode (see the module docs); anything else poisons the
    /// counter with the cause. Default: [`PoisonPolicy::Propagate`].
    pub poison_policy: PoisonPolicy,
    /// The failpoint registry instrumenting this counter's I/O. `None`
    /// (default) uses the process-global registry armed from
    /// `MC_CHAOS_FAILPOINTS`; tests pass a private registry so schedules
    /// don't leak between counters.
    pub failpoints: Option<Arc<Failpoints>>,
    /// Degraded mode: how far (in counter value) memory acknowledgements
    /// may run ahead of the last truly-durable value before strict writers
    /// block awaiting resync. Default: 4096.
    pub replay_budget: u64,
    /// Degraded mode: how often the flusher probes for recovery.
    /// Default: 50ms.
    pub resync_interval: Duration,
    /// Publish WAL metrics (`<prefix>.wal.*` events plus `fsync_ns` and
    /// `batch_records` histograms) to a registry. `None` (default) keeps
    /// the flusher free of any metrics work.
    pub metrics: Option<MetricsSink>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            mode: DurabilityMode::Strict,
            snapshot_every: 1024,
            retry: RetryPolicy::default(),
            poison_policy: PoisonPolicy::Propagate,
            failpoints: None,
            replay_budget: 4096,
            resync_interval: Duration::from_millis(50),
            metrics: None,
        }
    }
}

/// Registry handles the flusher publishes to, plus the last [`WalStats`]
/// it already exported: the flusher bumps its [`Shared`] atomics at the
/// fault sites (inside retry loops, from static contexts) and this mirrors
/// them into the registry as deltas once per flush round, so the events
/// stay exact without threading registry handles through the WAL core.
struct DurableMetrics {
    fsyncs: Arc<Event>,
    records_logged: Arc<Event>,
    snapshots: Arc<Event>,
    retries: Arc<Event>,
    degraded_entries: Arc<Event>,
    resyncs: Arc<Event>,
    /// Latency of one append+fsync round (the group-commit critical path).
    fsync_ns: Arc<Histogram>,
    /// Records coalesced into each non-empty flush batch.
    batch_records: Arc<Histogram>,
    last: WalStats,
}

impl DurableMetrics {
    fn attach(sink: &MetricsSink) -> Self {
        DurableMetrics {
            fsyncs: sink.event("wal.fsyncs"),
            records_logged: sink.event("wal.records_logged"),
            snapshots: sink.event("wal.snapshots"),
            retries: sink.event("wal.retries"),
            degraded_entries: sink.event("wal.degraded_entries"),
            resyncs: sink.event("wal.resyncs"),
            fsync_ns: sink.histogram("wal.fsync_ns"),
            batch_records: sink.histogram("wal.batch_records"),
            last: WalStats::default(),
        }
    }

    /// Publishes everything the [`Shared`] atomics gained since the last
    /// call.
    fn sync_from(&mut self, shared: &Shared) {
        let now = WalStats {
            fsyncs: shared.fsyncs.load(SeqCst),
            records_logged: shared.records_logged.load(SeqCst),
            snapshots: shared.snapshots.load(SeqCst),
            retries: shared.io_retries.load(SeqCst),
            degraded_entries: shared.degraded_entries.load(SeqCst),
            resyncs: shared.resyncs.load(SeqCst),
        };
        self.fsyncs.add(now.fsyncs - self.last.fsyncs);
        self.records_logged
            .add(now.records_logged - self.last.records_logged);
        self.snapshots.add(now.snapshots - self.last.snapshots);
        self.retries.add(now.retries - self.last.retries);
        self.degraded_entries
            .add(now.degraded_entries - self.last.degraded_entries);
        self.resyncs.add(now.resyncs - self.last.resyncs);
        self.last = now;
    }
}

/// Durability-layer statistics (see [`DurableCounter::wal_stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Completed fsync rounds.
    pub fsyncs: u64,
    /// Records appended to the log (advances + poisons).
    pub records_logged: u64,
    /// Snapshots written (each truncates the log).
    pub snapshots: u64,
    /// Transient I/O errors absorbed by retry (also in
    /// [`StatsSnapshot::io_retries`]).
    pub retries: u64,
    /// Times the counter entered degraded mode.
    pub degraded_entries: u64,
    /// Successful resyncs (degraded → healthy transitions).
    pub resyncs: u64,
}

/// Recovers a mutex whose holder panicked: the protected data (a queue of
/// poison requests, a join handle) stays structurally valid across a
/// panicking `push`, so the guard is safe to reuse — but the *event* must
/// not be silently swallowed. Call sites that drain the queue pair this
/// with [`Shared::note_queue_poison`] so a panicking writer surfaces as a
/// counter poison instead of a propagated `PoisonError` panic.
// lint:allow(raw-sync): poison-recovery shim for the sanctioned WAL-core mutexes
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

struct Shared {
    mode: DurabilityMode,
    policy: PoisonPolicy,
    /// Strict mode: the requested durable value (sum of all enqueued
    /// increments / advance targets). The flusher logs up to this.
    enqueued: AtomicU64,
    /// Set by writers after enqueueing, cleared by the flusher before it
    /// reads the target: guarantees at most one `rounds` bump per flush
    /// round without a lock on the hot path.
    dirty: AtomicBool,
    /// Flush-round signal: writers bump, the flusher waits.
    rounds: Counter,
    /// The last *acknowledged*-durable value; strict writers wait on it.
    /// Healthy: equals the fsynced value. Degraded: may run up to
    /// `replay_budget` ahead of [`Self::disk_durable`].
    durable: Counter,
    /// The last truly-fsynced value — the crash-survivable watermark.
    /// Written by the flusher *before* it advances `durable`, so any value
    /// acknowledged through the disk path is already covered here.
    disk_durable: AtomicU64,
    /// Poison events requested but not yet drained by the flusher.
    poison_requests: Mutex<Vec<FailureInfo>>, // lint:allow(raw-sync): flusher handoff queue
    poisons_enqueued: AtomicU64,
    /// Count of drained-and-acknowledged poison events; `poison` waits on
    /// it. Degraded mode acknowledges from memory before persistence.
    poisons_synced: Counter,
    /// Memory-acknowledged poison causes awaiting persistence (degraded).
    queued_poisons: AtomicU64,
    /// `Some(entry time)` while degraded. Taken by the flusher, read by
    /// [`DurableCounter::health`].
    degraded_since: Mutex<Option<Instant>>, // lint:allow(raw-sync): health-probe cell
    /// Set once if the poison-request mutex is ever found poisoned, so the
    /// synthesized failure is reported exactly once.
    queue_poison_reported: AtomicBool,
    stop: AtomicBool,
    io_retries: AtomicU64,
    fsyncs: AtomicU64,
    records_logged: AtomicU64,
    snapshots: AtomicU64,
    degraded_entries: AtomicU64,
    resyncs: AtomicU64,
}

impl Shared {
    /// Signals the flusher that new work is enqueued, bumping `rounds` at
    /// most once per flush round. All operations are `SeqCst`: the flusher
    /// clears `dirty` *before* reading the target, so in the seq-cst total
    /// order every writer either lands before the read (covered by this
    /// round) or observes `dirty == false` and opens the next round.
    fn signal(&self) {
        if !self.dirty.load(SeqCst) && !self.dirty.swap(true, SeqCst) {
            self.rounds.increment(1);
        }
    }

    /// Adds `amount` to the strict-mode target, rejecting overflow.
    fn enqueue(&self, amount: Value) -> Result<Value, CounterOverflowError> {
        let mut cur = self.enqueued.load(SeqCst);
        loop {
            let Some(next) = cur.checked_add(amount) else {
                return Err(CounterOverflowError { value: cur, amount });
            };
            match self
                .enqueued
                .compare_exchange_weak(cur, next, SeqCst, SeqCst)
            {
                Ok(_) => return Ok(next),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Raises the strict-mode target to at least `target`; returns the
    /// effective target.
    fn enqueue_to(&self, target: Value) -> Value {
        let prev = self.enqueued.fetch_max(target, SeqCst);
        prev.max(target)
    }

    /// The value the flusher should make durable right now.
    fn flush_target(&self, inner: &dyn CounterDiagnostics) -> Value {
        match self.mode {
            DurabilityMode::Strict => self.enqueued.load(SeqCst),
            DurabilityMode::Batched => inner.debug_value(),
        }
    }

    /// Records (once) that the poison-request mutex was poisoned by a
    /// panicking holder, returning the synthesized failure to enqueue.
    fn note_queue_poison(&self) -> Option<FailureInfo> {
        if self.queue_poison_reported.swap(true, SeqCst) {
            None
        } else {
            Some(FailureInfo::new(
                "durable poison queue mutex poisoned by a panicking holder",
            ))
        }
    }
}

/// A crash-durable wrapper around a [`MonotonicCounter`] implementation
/// `C`: increments (and poison events) are logged to a CRC32-framed
/// append-only WAL in the counter's directory before being acknowledged
/// (see [`DurabilityMode`]), and [`open`](Self::open) recovers value and
/// poison state after a crash. Transient I/O errors are retried, and with
/// [`PoisonPolicy::Degrade`] a persistent outage degrades (and later
/// self-heals) instead of poisoning — see the module docs.
///
/// Dropping the counter stops the flusher after a final drain: a clean
/// shutdown loses nothing, in either mode. A counter dropped while
/// degraded makes one last resync attempt on the way out.
pub struct DurableCounter<C: MonotonicCounter> {
    inner: Arc<C>,
    shared: Arc<Shared>,
    flusher: Mutex<Option<JoinHandle<()>>>, // lint:allow(raw-sync): join-handle slot
}

struct Flusher<C> {
    inner: Arc<C>,
    shared: Arc<Shared>,
    /// `Some` while healthy; `None` while degraded (the handle to a failed
    /// log is useless — resync reopens through the factory).
    wal: Option<Box<dyn WalFile>>,
    factory: Box<WalFactory>,
    fp: Arc<Failpoints>,
    retry: RetryPolicy,
    jitter: JitterRng,
    resync_interval: Duration,
    replay_budget: u64,
    dir: PathBuf,
    next_seq: u64,
    /// The last value written to the log (== the durable value once synced).
    logged_value: Value,
    /// Byte length of the log at the last known-good point (open, resync,
    /// successful sync, or truncation). Append retries rewind to this
    /// watermark first, so a torn partial write from the failed attempt can
    /// never precede the retried records as a corrupt frame mid-log.
    synced_len: u64,
    /// The persisted poison cause, if any (survives into snapshots).
    poison: Option<FailureInfo>,
    /// Drained poison requests not yet persisted. Entries survive a failed
    /// flush here, so no accepted poison cause can be dropped.
    pending_poisons: Vec<FailureInfo>,
    /// How many of `pending_poisons` were already memory-acknowledged
    /// while degraded (their `poisons_synced` bump must not repeat).
    acked_pending: usize,
    records_since_snapshot: u64,
    snapshot_every: u64,
    /// `Some` when [`DurableOptions::metrics`] was set; see
    /// [`DurableMetrics`] for the publication protocol.
    metrics: Option<DurableMetrics>,
}

impl<C: MonotonicCounter + CounterDiagnostics> Flusher<C> {
    fn run(mut self) {
        let mut round: Value = 0;
        loop {
            let mut stopping = self.shared.stop.load(SeqCst);
            if !stopping {
                round += 1;
                if self.wal.is_some() {
                    let _ = self.shared.rounds.wait(round);
                } else if let Err(CheckError::Timeout(_)) =
                    self.shared.rounds.wait_timeout(round, self.resync_interval)
                {
                    // Resync tick, not a work signal: the round was not
                    // consumed.
                    round -= 1;
                }
                stopping = self.shared.stop.load(SeqCst);
            }

            if self.wal.is_none() {
                self.serve_from_memory();
                self.try_resync();
                self.publish_metrics();
                if stopping {
                    return;
                }
                continue;
            }

            if let Err(e) = self.flush_once() {
                if !self.enter_degraded(e) {
                    self.publish_metrics();
                    return; // poisoned under Propagate: the thread is done
                }
                self.serve_from_memory();
                self.publish_metrics();
                if stopping {
                    self.try_resync();
                    self.publish_metrics();
                    return;
                }
                continue;
            }
            self.publish_metrics();
            if stopping {
                return;
            }
            // Batched mode reads the inner value outside any writer-side
            // fence; re-run immediately if it moved during the flush so the
            // unsynced window stays one round wide.
            if self.shared.mode == DurabilityMode::Batched
                && self.inner.debug_value() > self.logged_value
            {
                self.shared.signal();
            }
        }
    }

    /// Moves requested poison events into the pending buffer. A poisoned
    /// request mutex is recovered and surfaced as a synthesized poison —
    /// the panicking holder translates to counter poison, never to a
    /// propagated `PoisonError` panic on the flusher.
    fn drain_requests(&mut self) {
        let drained = match self.shared.poison_requests.lock() {
            Ok(mut g) => std::mem::take(&mut *g),
            Err(p) => {
                let mut g = p.into_inner();
                let mut v = std::mem::take(&mut *g);
                if let Some(info) = self.shared.note_queue_poison() {
                    // No caller is waiting on this synthesized event, so
                    // apply the in-memory poison here too.
                    self.inner.poison(info.clone());
                    v.push(info);
                }
                v
            }
        };
        self.pending_poisons.extend(drained);
        if self.poison.is_none() {
            self.poison = self.pending_poisons.first().cloned();
        }
    }

    /// Mirrors the [`Shared`] stat atomics into the attached registry (a
    /// no-op without one). Called once per flusher round and on every exit
    /// path, so dropping the counter leaves the registry exact.
    fn publish_metrics(&mut self) {
        if let Some(m) = self.metrics.as_mut() {
            m.sync_from(&self.shared);
        }
    }

    /// One group-commit round: clear the dirty flag, read the target,
    /// append + fsync (with retry), then publish durability to the waiting
    /// counters.
    fn flush_once(&mut self) -> Result<(), WalError> {
        self.shared.dirty.store(false, SeqCst);
        let target = self.shared.flush_target(&*self.inner);
        self.drain_requests();

        let mut batch = Vec::new();
        let mut seq = self.next_seq;
        let mut records = 0u64;
        if target > self.logged_value {
            batch.extend_from_slice(&WalRecord::Advance { seq, value: target }.encode_framed());
            seq += 1;
            records += 1;
        }
        for info in &self.pending_poisons {
            batch.extend_from_slice(
                &WalRecord::Poison {
                    seq,
                    thread: info.thread().to_string(),
                    message: info.message().to_string(),
                    level: info.level(),
                }
                .encode_framed(),
            );
            seq += 1;
            records += 1;
        }

        if !batch.is_empty() {
            let wal = self.wal.as_mut().expect("flush_once requires a live wal");
            // Records are absolute, so a duplicated batch replays as a
            // running-max no-op — but a failed attempt may have left a torn
            // partial frame (a `write_all` stopped short by ENOSPC), and
            // appending the retry after it would strand everything behind a
            // corrupt frame at recovery. Rewind to the last synced length
            // first so every attempt starts at a verified frame boundary.
            let good_len = self.synced_len;
            let mut first_attempt = true;
            let started = self.metrics.as_ref().map(|_| Instant::now());
            with_retry(
                &self.retry,
                &mut self.jitter,
                &self.shared.io_retries,
                || {
                    if !first_attempt {
                        wal.rewind_to(good_len)?;
                    }
                    first_attempt = false;
                    wal.append(&batch)?;
                    wal.sync()?;
                    Ok(())
                },
            )?;
            if let (Some(m), Some(t0)) = (self.metrics.as_ref(), started) {
                m.fsync_ns.record_duration(t0.elapsed());
                m.batch_records.record(records);
            }
            self.synced_len = good_len + batch.len() as u64;
            self.next_seq = seq;
            self.records_since_snapshot += records;
            self.shared.fsyncs.fetch_add(1, SeqCst);
            self.shared.records_logged.fetch_add(records, SeqCst);
            self.logged_value = self.logged_value.max(target);
        }

        self.publish_durable();

        if self.snapshot_every > 0 && self.records_since_snapshot >= self.snapshot_every {
            let (dir, fp, retry) = (&self.dir, &self.fp, &self.retry);
            let (seq, value, poison) = (
                self.next_seq.saturating_sub(1),
                self.logged_value,
                self.poison.as_ref(),
            );
            with_retry(retry, &mut self.jitter, &self.shared.io_retries, || {
                write_snapshot(dir, seq, value, poison, fp)?;
                Ok(())
            })?;
            // A truncate failure after a successful snapshot leaves
            // records the snapshot already covers — harmless (replay is a
            // running max) but still worth the degrade/resync cycle so the
            // log handle is known-good.
            let wal = self.wal.as_mut().expect("flush_once requires a live wal");
            with_retry(retry, &mut self.jitter, &self.shared.io_retries, || {
                wal.truncate_all()?;
                Ok(())
            })?;
            self.synced_len = 0;
            self.records_since_snapshot = 0;
            self.shared.snapshots.fetch_add(1, SeqCst);
        }
        Ok(())
    }

    /// Publishes full durability after a successful append+fsync: the disk
    /// watermark first (so [`DurableCounter::sync`]'s post-wait check is
    /// never falsely degraded), then the acknowledgement counter, then the
    /// poison acknowledgements.
    fn publish_durable(&mut self) {
        self.shared
            .disk_durable
            .fetch_max(self.logged_value, SeqCst);
        self.shared.durable.advance_to(self.logged_value);
        let newly_acked = self.pending_poisons.len() - self.acked_pending;
        if newly_acked > 0 {
            self.shared.poisons_synced.increment(newly_acked as u64);
        }
        self.pending_poisons.clear();
        self.acked_pending = 0;
        self.shared.queued_poisons.store(0, SeqCst);
    }

    /// Switches to degraded mode (dropping the dead log handle) under
    /// [`PoisonPolicy::Degrade`]; otherwise poisons everything with the
    /// cause and reports `false` (the flusher must exit).
    fn enter_degraded(&mut self, e: WalError) -> bool {
        if self.shared.policy == PoisonPolicy::Degrade {
            self.wal = None;
            let mut since = lock_recover(&self.shared.degraded_since);
            if since.is_none() {
                *since = Some(Instant::now());
                self.shared.degraded_entries.fetch_add(1, SeqCst);
            }
            true
        } else {
            let info = FailureInfo::new(format!("durable counter wal failure: {e}"));
            // Wake strict waiters and fail future operations with the
            // cause instead of hanging them on durability that will never
            // come.
            self.shared.durable.poison(info.clone());
            self.shared.poisons_synced.poison(info.clone());
            self.inner.poison(info);
            false
        }
    }

    /// Degraded-mode service tick: acknowledge what the replay budget
    /// allows from memory so the in-memory fast path keeps moving while
    /// the log is down.
    fn serve_from_memory(&mut self) {
        self.shared.dirty.store(false, SeqCst);
        self.drain_requests();
        let unacked = self.pending_poisons.len() - self.acked_pending;
        if unacked > 0 {
            let first = self.pending_poisons[self.acked_pending].clone();
            self.shared.queued_poisons.fetch_add(unacked as u64, SeqCst);
            // Memory-acknowledge: the poison() caller unblocks now and
            // applies the in-memory poison; persistence happens at resync.
            self.shared.poisons_synced.increment(unacked as u64);
            self.acked_pending = self.pending_poisons.len();
            // A poisoned counter is permanently failed, so strict writers
            // blocked past the replay budget must fail with the cause
            // rather than wait for a durability acknowledgement that no
            // longer means anything.
            self.shared.durable.poison(first);
        }
        // Memory acknowledgement, bounded by the replay budget past the
        // last truly-durable value: beyond it, strict writers block until
        // resync catches the log up (backpressure instead of unbounded
        // acked-but-volatile state).
        let target = self.shared.flush_target(&*self.inner);
        let disk = self.shared.disk_durable.load(SeqCst);
        let capped = target.min(disk.saturating_add(self.replay_budget));
        self.shared.durable.advance_to(capped);
    }

    /// One self-healing probe: recover the directory (repairing any torn
    /// tail the failed write left — appending after a torn frame would
    /// strand everything behind it), reopen the log, persist the collapsed
    /// degraded backlog, and return to healthy. Failure leaves the counter
    /// degraded for the next tick.
    fn try_resync(&mut self) {
        if self.wal.is_some() {
            return;
        }
        if let Ok(()) = self.resync() {
            *lock_recover(&self.shared.degraded_since) = None;
            self.shared.resyncs.fetch_add(1, SeqCst);
        }
    }

    fn resync(&mut self) -> Result<(), WalError> {
        self.fp.hit(SITE_WAL_OPEN)?;
        let recovered = recover_dir(&self.dir, &self.fp)?;
        let mut wal: Box<dyn WalFile> = Box::new(FailpointWal::new(
            (self.factory)(&self.dir.join(WAL_FILE))?,
            Arc::clone(&self.fp),
        ));
        // Rebuild the log view from what recovery actually found on disk,
        // then persist the entire degraded backlog: monotonicity collapses
        // every memory-served increment into ONE absolute advance record.
        let target = self.shared.flush_target(&*self.inner);
        let mut seq = recovered.next_seq;
        let logged = recovered.value;
        let mut batch = Vec::new();
        let mut records = 0u64;
        if target > logged {
            batch.extend_from_slice(&WalRecord::Advance { seq, value: target }.encode_framed());
            seq += 1;
            records += 1;
        }
        for info in &self.pending_poisons {
            batch.extend_from_slice(
                &WalRecord::Poison {
                    seq,
                    thread: info.thread().to_string(),
                    message: info.message().to_string(),
                    level: info.level(),
                }
                .encode_framed(),
            );
            seq += 1;
            records += 1;
        }
        if !batch.is_empty() {
            wal.append(&batch)?;
        }
        // Sync unconditionally, even with nothing new to append: the
        // recovered log may contain frames the failed handle appended but
        // never fsynced (an append that succeeded before the fsync fault),
        // and returning to Healthy must never claim page-cache-only bytes
        // as crash-durable.
        let started = self.metrics.as_ref().map(|_| Instant::now());
        wal.sync()?;
        if let (Some(m), Some(t0)) = (self.metrics.as_ref(), started) {
            m.fsync_ns.record_duration(t0.elapsed());
            if records > 0 {
                m.batch_records.record(records);
            }
        }
        self.shared.fsyncs.fetch_add(1, SeqCst);
        if records > 0 {
            self.shared.records_logged.fetch_add(records, SeqCst);
        }
        // Committed: swap the live handle back in and publish.
        self.next_seq = seq;
        self.logged_value = logged.max(target);
        self.synced_len = recovered.log_len + batch.len() as u64;
        self.records_since_snapshot += records;
        self.wal = Some(wal);
        self.publish_durable();
        Ok(())
    }
}

impl<C> DurableCounter<C>
where
    C: ResumableCounter + CounterDiagnostics + Send + Sync + 'static,
{
    /// Opens (or creates) the durable counter stored in `dir` with default
    /// options, recovering any persisted state: replays the verified log
    /// prefix over the snapshot, truncates a torn tail at the first bad
    /// frame, and restores value and poison state.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Self, CounterRecovery), WalError> {
        Self::open_with(dir, DurableOptions::default())
    }

    /// [`open`](Self::open) with explicit options. The log file is opened
    /// through [`wal_factory_from_env`]: setting `MC_CHAOS_WAL=1` injects
    /// the torn-tail [`ChaosWal`](crate::ChaosWal) (used by the crash
    /// harness).
    pub fn open_with(
        dir: impl AsRef<Path>,
        options: DurableOptions,
    ) -> Result<(Self, CounterRecovery), WalError> {
        Self::open_with_wal(dir, options, wal_factory_from_env())
    }

    /// [`open_with`](Self::open_with) using an explicit [`WalFactory`] for
    /// fault injection. The factory is retained: degraded-mode resync
    /// reopens the log through it.
    pub fn open_with_wal(
        dir: impl AsRef<Path>,
        options: DurableOptions,
        factory: Box<WalFactory>,
    ) -> Result<(Self, CounterRecovery), WalError> {
        let dir = dir.as_ref().to_path_buf();
        let fp = options
            .failpoints
            .clone()
            .unwrap_or_else(|| Arc::clone(mc_chaos::failpoints::global()));
        fp.hit(SITE_WAL_OPEN)?;
        let recovered = recover_dir(&dir, &fp)?;
        let recovery = CounterRecovery {
            value: recovered.value,
            records_replayed: recovered.records_replayed,
            tail_bytes_discarded: recovered.tail_bytes_discarded,
            poison_restored: recovered.poison.is_some(),
        };

        let inner = Arc::new(C::resume_from(recovered.value));
        if let Some(info) = recovered.poison.clone() {
            inner.poison(info);
        }
        let shared = Arc::new(Shared {
            mode: options.mode,
            policy: options.poison_policy,
            enqueued: AtomicU64::new(recovered.value),
            dirty: AtomicBool::new(false),
            rounds: Counter::default(),
            durable: Counter::builder().initial(recovered.value).build(),
            disk_durable: AtomicU64::new(recovered.value),
            poison_requests: Mutex::new(Vec::new()), // lint:allow(raw-sync): flusher handoff queue
            poisons_enqueued: AtomicU64::new(0),
            poisons_synced: Counter::default(),
            queued_poisons: AtomicU64::new(0),
            degraded_since: Mutex::new(None), // lint:allow(raw-sync): health-probe cell
            queue_poison_reported: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            io_retries: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            records_logged: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            degraded_entries: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
        });
        let wal: Box<dyn WalFile> = Box::new(FailpointWal::new(
            factory(&dir.join(WAL_FILE))?,
            Arc::clone(&fp),
        ));
        let jitter = JitterRng::new(fp.seed() ^ 0xD1CE_D00D_5EED_0B0Fu64);
        let flusher = Flusher {
            inner: Arc::clone(&inner),
            shared: Arc::clone(&shared),
            wal: Some(wal),
            factory,
            fp,
            retry: options.retry,
            jitter,
            resync_interval: options.resync_interval.max(Duration::from_millis(1)),
            replay_budget: options.replay_budget,
            dir,
            next_seq: recovered.next_seq,
            logged_value: recovered.value,
            synced_len: recovered.log_len,
            poison: recovered.poison,
            pending_poisons: Vec::new(),
            acked_pending: 0,
            records_since_snapshot: 0,
            snapshot_every: options.snapshot_every,
            metrics: options.metrics.as_ref().map(DurableMetrics::attach),
        };
        let handle = std::thread::Builder::new()
            .name("mc-durable-flusher".into())
            .spawn(move || flusher.run())
            .map_err(WalError::Io)?;
        Ok((
            DurableCounter {
                inner,
                shared,
                flusher: Mutex::new(Some(handle)), // lint:allow(raw-sync): join-handle slot
            },
            recovery,
        ))
    }

    /// [`open_with`](Self::open_with), plus supervisor integration: the
    /// recovered counter is registered under `name` and its
    /// [`CounterRecovery`] reported via [`Supervisor::note_recovery`], so it
    /// shows up in [`Supervisor::recovery_report`].
    pub fn open_supervised(
        dir: impl AsRef<Path>,
        options: DurableOptions,
        supervisor: &Supervisor,
        name: &str,
    ) -> Result<(Arc<Self>, CounterRecovery), WalError> {
        let (counter, recovery) = Self::open_with(dir, options)?;
        let counter = Arc::new(counter);
        supervisor.register(name, &counter);
        supervisor.note_recovery(name, recovery.clone());
        Ok((counter, recovery))
    }
}

impl<C: MonotonicCounter + CounterDiagnostics> DurableCounter<C> {
    /// The wrapped in-memory counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Durability-layer statistics: fsync rounds, records logged,
    /// snapshots, retries, degraded-mode entries and resyncs.
    pub fn wal_stats(&self) -> WalStats {
        WalStats {
            fsyncs: self.shared.fsyncs.load(SeqCst),
            records_logged: self.shared.records_logged.load(SeqCst),
            snapshots: self.shared.snapshots.load(SeqCst),
            retries: self.shared.io_retries.load(SeqCst),
            degraded_entries: self.shared.degraded_entries.load(SeqCst),
            resyncs: self.shared.resyncs.load(SeqCst),
        }
    }

    /// The last value known to be fsync-durable — what a crash right now
    /// is guaranteed to recover. While degraded this lags the in-memory
    /// value; healthy strict operation keeps it at the acked value.
    pub fn durable_value(&self) -> Value {
        self.shared.disk_durable.load(SeqCst)
    }

    /// The counter's durability health: [`HealthStatus::Poisoned`] if the
    /// counter is poisoned (which wins over degradation),
    /// [`HealthStatus::Degraded`] while serving from memory with the log
    /// down, else [`HealthStatus::Healthy`].
    pub fn health(&self) -> HealthStatus {
        if self.inner.poison_info().is_some() {
            return HealthStatus::Poisoned;
        }
        let since = *lock_recover(&self.shared.degraded_since);
        match since {
            Some(since) => {
                // The unsynced backlog collapses to one absolute advance
                // (monotonicity) plus the queued poison causes.
                let gap =
                    self.shared.flush_target(&*self.inner) > self.shared.disk_durable.load(SeqCst);
                HealthStatus::Degraded {
                    since,
                    queued: u64::from(gap) + self.shared.queued_poisons.load(SeqCst),
                }
            }
            None => HealthStatus::Healthy,
        }
    }

    /// Blocks until everything enqueued so far is *fsync*-durable. A no-op
    /// in healthy strict mode (increments are already acked durable); in
    /// batched mode this is the explicit persistence point.
    ///
    /// # Errors
    ///
    /// Returns the poisoning cause if the WAL failed terminally, or a
    /// degradation notice if the acknowledgement came from the in-memory
    /// watermark while the log is down (the data is *not* yet
    /// crash-survivable — callers needing hard durability should retry
    /// after [`health`](Self::health) returns healthy).
    pub fn sync(&self) -> Result<(), FailureInfo> {
        let target = self.shared.flush_target(&*self.inner);
        self.shared.signal();
        match self.shared.durable.wait(target) {
            Ok(()) => {
                if self.shared.disk_durable.load(SeqCst) >= target {
                    Ok(())
                } else {
                    Err(FailureInfo::new(format!(
                        "durable counter degraded: value {target} acknowledged from memory, \
                         disk watermark at {}",
                        self.shared.disk_durable.load(SeqCst)
                    )))
                }
            }
            Err(CheckError::Poisoned(info)) => Err(info),
            Err(CheckError::Timeout(_)) => unreachable!("untimed wait cannot time out"),
        }
    }

    fn ack_durable(&self, target: Value) {
        if let Err(CheckError::Poisoned(info)) = self.shared.durable.wait(target) {
            // The WAL is wedged (or the counter was poisoned while its
            // backlog was still memory-only): make the failure visible on
            // the counter itself, then surface it to the caller.
            self.inner.poison(info.clone());
            panic!("durable increment could not be persisted: {info}");
        }
    }
}

impl<C: MonotonicCounter + CounterDiagnostics> MonotonicCounter for DurableCounter<C> {
    fn increment(&self, amount: Value) {
        if amount == 0 {
            return;
        }
        match self.shared.mode {
            DurabilityMode::Strict => {
                let target = match self.shared.enqueue(amount) {
                    Ok(t) => t,
                    Err(e) => panic!("monotonic counter overflow: {e}"),
                };
                self.shared.signal();
                self.ack_durable(target);
                // Applied only after durability: a level observed satisfied
                // can never be lost to a crash.
                self.inner.increment(amount);
            }
            DurabilityMode::Batched => {
                self.inner.increment(amount);
                self.shared.signal();
            }
        }
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        if amount == 0 {
            return Ok(());
        }
        match self.shared.mode {
            DurabilityMode::Strict => {
                let target = self.shared.enqueue(amount)?;
                self.shared.signal();
                self.ack_durable(target);
                self.inner.increment(amount);
                Ok(())
            }
            DurabilityMode::Batched => {
                self.inner.try_increment(amount)?;
                self.shared.signal();
                Ok(())
            }
        }
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        self.inner.wait(level)
    }

    fn wait_timeout(&self, level: Value, timeout: std::time::Duration) -> Result<(), CheckError> {
        self.inner.wait_timeout(level, timeout)
    }

    fn poison(&self, info: FailureInfo) {
        // Persist the cause before poisoning in memory, in both modes:
        // poison must survive restart. (Degraded mode memory-acknowledges
        // the event and persists it at resync.)
        let n = {
            let mut reqs = match self.shared.poison_requests.lock() {
                Ok(g) => g,
                Err(p) => {
                    // A holder panicked mid-operation; the queue itself is
                    // still valid. Surface the event as its own poison.
                    let mut g = p.into_inner();
                    if let Some(extra) = self.shared.note_queue_poison() {
                        g.push(extra);
                        self.shared.poisons_enqueued.fetch_add(1, SeqCst);
                    }
                    g
                }
            };
            reqs.push(info.clone());
            self.shared.poisons_enqueued.fetch_add(1, SeqCst) + 1
        };
        self.shared.signal();
        // If the WAL itself failed terminally, the flusher poisons
        // `poisons_synced`; either way the in-memory poison proceeds.
        let _ = self.shared.poisons_synced.wait(n);
        self.inner.poison(info);
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        self.inner.poison_info()
    }

    fn advance_to(&self, target: Value) {
        match self.shared.mode {
            DurabilityMode::Strict => {
                let target = self.shared.enqueue_to(target);
                self.shared.signal();
                self.ack_durable(target);
                self.inner.advance_to(target);
            }
            DurabilityMode::Batched => {
                self.inner.advance_to(target);
                self.shared.signal();
            }
        }
    }
}

impl<C: MonotonicCounter + CounterDiagnostics> CounterDiagnostics for DurableCounter<C> {
    fn debug_value(&self) -> Value {
        self.inner.debug_value()
    }

    fn stats(&self) -> StatsSnapshot {
        let mut stats = self.inner.stats();
        stats.io_retries = self.shared.io_retries.load(SeqCst);
        stats
    }

    fn impl_name(&self) -> &'static str {
        "durable"
    }

    fn waiters(&self) -> Vec<WaitingLevel> {
        self.inner.waiters()
    }

    fn health(&self) -> HealthStatus {
        DurableCounter::health(self)
    }

    fn durable_watermark(&self) -> Option<Value> {
        Some(self.durable_value())
    }
}

impl<C: MonotonicCounter> Drop for DurableCounter<C> {
    fn drop(&mut self) {
        self.shared.stop.store(true, SeqCst);
        // Unconditional bump: wake the flusher even if the dirty flag is
        // already set (its owner may have signalled before our stop store).
        self.shared.rounds.increment(1);
        if let Some(h) = lock_recover(&self.flusher).take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use mc_chaos::FailConfig;
    use std::io;

    fn wait_for(what: &str, mut pred: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(20);
        while !pred() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn degrade_options(fp: &Arc<Failpoints>) -> DurableOptions {
        DurableOptions {
            poison_policy: PoisonPolicy::Degrade,
            failpoints: Some(Arc::clone(fp)),
            retry: RetryPolicy::none(),
            resync_interval: Duration::from_millis(5),
            ..DurableOptions::default()
        }
    }

    #[test]
    fn attached_metrics_mirror_wal_stats() {
        let dir = test_dir("metrics-export");
        let registry = Arc::new(mc_metrics::Registry::new());
        let options = DurableOptions {
            metrics: Some(MetricsSink::new(Arc::clone(&registry), "dur")),
            ..DurableOptions::default()
        };
        let (c, _) = DurableCounter::<Counter>::open_with(&dir, options).unwrap();
        for _ in 0..10 {
            c.increment(1);
        }
        c.sync().unwrap();
        let stats = c.wal_stats();
        assert!(stats.fsyncs >= 1);
        drop(c); // joins the flusher: the final delta publish lands

        assert_eq!(registry.event("dur.wal.fsyncs").get(), stats.fsyncs);
        assert_eq!(
            registry.event("dur.wal.records_logged").get(),
            stats.records_logged
        );
        assert_eq!(registry.event("dur.wal.degraded_entries").get(), 0);
        let fsync_ns = registry.histogram("dur.wal.fsync_ns").snapshot();
        assert!(fsync_ns.count() >= 1, "fsync latency must be recorded");
        let batches = registry.histogram("dur.wal.batch_records").snapshot();
        assert!(batches.count() >= 1, "batch sizes must be recorded");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degraded_cycle_reaches_the_registry() {
        let dir = test_dir("metrics-degrade");
        let fp = Arc::new(Failpoints::new(42));
        let registry = Arc::new(mc_metrics::Registry::new());
        let options = DurableOptions {
            metrics: Some(MetricsSink::new(Arc::clone(&registry), "dur")),
            ..degrade_options(&fp)
        };
        let (c, _) = DurableCounter::<Counter>::open_with(&dir, options).unwrap();
        c.increment(1);
        fp.arm(
            crate::SITE_WAL_FSYNC,
            FailConfig::always(io::ErrorKind::StorageFull),
        );
        c.increment(1);
        wait_for("degraded health", || c.health().is_degraded());
        fp.disarm(crate::SITE_WAL_FSYNC);
        wait_for("healthy health", || c.health().is_healthy());
        drop(c);

        assert_eq!(registry.event("dur.wal.degraded_entries").get(), 1);
        assert!(registry.event("dur.wal.resyncs").get() >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degrade_then_self_heal() {
        let dir = test_dir("degrade-heal");
        let fp = Arc::new(Failpoints::new(42));
        let (c, _) = DurableCounter::<Counter>::open_with(&dir, degrade_options(&fp)).unwrap();
        c.increment(1);
        assert!(c.health().is_healthy());
        assert_eq!(c.durable_value(), 1);

        // Kill the fsync path persistently: the next flush degrades.
        fp.arm(
            crate::SITE_WAL_FSYNC,
            FailConfig::always(io::ErrorKind::StorageFull),
        );
        c.increment(1); // acked from the in-memory watermark
        wait_for("degraded health", || c.health().is_degraded());
        assert_eq!(c.debug_value(), 2);
        assert_eq!(c.durable_value(), 1, "disk watermark must not move");
        match c.health() {
            HealthStatus::Degraded { queued, .. } => assert!(queued >= 1),
            other => panic!("expected degraded, got {other:?}"),
        }
        // sync() must refuse to report memory-only state as durable.
        let err = c.sync().expect_err("sync while degraded");
        assert!(err.message().contains("degraded"), "{err}");

        // Fault clears: the resync probe heals the counter.
        fp.disarm(crate::SITE_WAL_FSYNC);
        wait_for("healthy health", || c.health().is_healthy());
        assert_eq!(c.durable_value(), 2);
        assert!(c.sync().is_ok());
        let stats = c.wal_stats();
        assert_eq!(stats.degraded_entries, 1);
        assert!(stats.resyncs >= 1);
        drop(c);

        let (c, recovery) = DurableCounter::<Counter>::open(&dir).unwrap();
        assert_eq!(recovery.value, 2, "healed state survives restart");
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_budget_blocks_strict_writers_until_resync() {
        let dir = test_dir("degrade-budget");
        let fp = Arc::new(Failpoints::new(7));
        let opts = DurableOptions {
            replay_budget: 2,
            ..degrade_options(&fp)
        };
        // Armed before the first increment: the log never accepts a byte.
        fp.arm(
            crate::SITE_WAL_APPEND,
            FailConfig::always(io::ErrorKind::StorageFull),
        );
        let (c, _) = DurableCounter::<Counter>::open_with(&dir, opts).unwrap();
        let c = Arc::new(c);
        c.increment(1);
        c.increment(1); // both memory-acked: within the budget of 2
        wait_for("degraded health", || c.health().is_degraded());

        let writer = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || c.increment(1)) // beyond the budget
        };
        std::thread::sleep(Duration::from_millis(60));
        assert!(
            !writer.is_finished(),
            "writer past the replay budget must block until resync"
        );

        fp.disarm(crate::SITE_WAL_APPEND);
        writer.join().expect("writer completes after resync");
        wait_for("healthy health", || c.health().is_healthy());
        assert_eq!(c.debug_value(), 3);
        assert!(c.durable_value() >= 3);
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poison_during_degraded_mode_persists_at_resync() {
        let dir = test_dir("degrade-poison");
        let fp = Arc::new(Failpoints::new(3));
        let (c, _) = DurableCounter::<Counter>::open_with(&dir, degrade_options(&fp)).unwrap();
        c.increment(1);
        fp.arm(
            crate::SITE_WAL_FSYNC,
            FailConfig::always(io::ErrorKind::TimedOut),
        );
        c.increment(1);
        wait_for("degraded health", || c.health().is_degraded());

        // Poison while the log is down: acknowledged from memory (the call
        // must not hang), then persisted by the resync.
        c.poison(FailureInfo::new("worker died mid-phase"));
        assert!(c.health().is_poisoned(), "poison outranks degraded");

        fp.disarm(crate::SITE_WAL_FSYNC);
        wait_for("resync", || c.wal_stats().resyncs >= 1);
        drop(c);

        let (c, recovery) = DurableCounter::<Counter>::open(&dir).unwrap();
        assert!(recovery.poison_restored, "poison cause survived the outage");
        assert_eq!(recovery.value, 2);
        assert_eq!(
            c.poison_info().expect("restored").message(),
            "worker died mid-phase"
        );
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retry_absorbs_transient_faults_without_degrading() {
        let dir = test_dir("retry-transient");
        let fp = Arc::new(Failpoints::new(11));
        let opts = DurableOptions {
            retry: RetryPolicy {
                max_retries: 4,
                base_delay: Duration::from_micros(50),
                max_delay: Duration::from_millis(1),
            },
            ..degrade_options(&fp)
        };
        let (c, _) = DurableCounter::<Counter>::open_with(&dir, opts).unwrap();
        // One EINTR on the first fsync, one ENOSPC blip on the second: both
        // inside the retry budget, so the counter never leaves healthy.
        fp.arm(
            crate::SITE_WAL_FSYNC,
            FailConfig::once_at(1, io::ErrorKind::Interrupted),
        );
        c.increment(5);
        assert!(c.health().is_healthy());
        assert_eq!(c.durable_value(), 5);
        fp.arm(
            crate::SITE_WAL_APPEND,
            FailConfig::once_at(1, io::ErrorKind::StorageFull),
        );
        c.increment(5);
        assert!(c.health().is_healthy());
        assert_eq!(c.durable_value(), 10);
        let stats = c.wal_stats();
        assert!(stats.retries >= 2, "retries: {}", stats.retries);
        assert_eq!(stats.degraded_entries, 0);
        assert_eq!(c.stats().io_retries, stats.retries);
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_watermark_surfaces_through_diagnostics() {
        let dir = test_dir("watermark-diag");
        let (c, _) = DurableCounter::<Counter>::open(&dir).unwrap();
        assert_eq!(c.durable_watermark(), Some(0));
        c.increment(3);
        // Strict mode: increment returns only once the record is on disk,
        // so the erased diagnostics view sees the same watermark the typed
        // accessor reports — this is what a supervision tree snapshots into
        // a restarted child's ResumeCtx.
        assert_eq!(c.durable_watermark(), Some(c.durable_value()));
        assert_eq!(c.durable_watermark(), Some(3));
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn propagate_policy_still_poisons_on_wal_failure() {
        let dir = test_dir("propagate-poison");
        let fp = Arc::new(Failpoints::new(5));
        let opts = DurableOptions {
            mode: DurabilityMode::Batched,
            poison_policy: PoisonPolicy::Propagate,
            failpoints: Some(Arc::clone(&fp)),
            retry: RetryPolicy::none(),
            ..DurableOptions::default()
        };
        let (c, _) = DurableCounter::<Counter>::open_with(&dir, opts).unwrap();
        fp.arm(
            crate::SITE_WAL_FSYNC,
            FailConfig::always(io::ErrorKind::StorageFull),
        );
        c.increment(1);
        let err = c.sync().expect_err("wal failure must poison");
        assert!(err.message().contains("wal failure"), "{err}");
        wait_for("poisoned counter", || c.poison_info().is_some());
        assert!(c.health().is_poisoned());
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_faults_degrade_and_heal_too() {
        let dir = test_dir("degrade-snapshot");
        let fp = Arc::new(Failpoints::new(17));
        let opts = DurableOptions {
            snapshot_every: 1,
            ..degrade_options(&fp)
        };
        let (c, _) = DurableCounter::<Counter>::open_with(&dir, opts).unwrap();
        c.increment(1); // snapshot after every record: one exists now
        fp.arm(
            crate::SITE_SNAPSHOT_RENAME,
            FailConfig::always(io::ErrorKind::StorageFull),
        );
        c.increment(1);
        wait_for("degraded health", || c.health().is_degraded());
        fp.disarm(crate::SITE_SNAPSHOT_RENAME);
        wait_for("healthy health", || c.health().is_healthy());
        // Nothing acked may be lost across the outage-and-heal cycle.
        drop(c);
        let (c, recovery) = DurableCounter::<Counter>::open(&dir).unwrap();
        assert_eq!(recovery.value, 2);
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_request_mutex_becomes_counter_poison() {
        let dir = test_dir("queue-mutex-poison");
        let (c, _) = DurableCounter::<Counter>::open(&dir).unwrap();
        // Poison the request mutex the way production would: a holder
        // panicking mid-critical-section.
        {
            let shared = Arc::clone(&c.shared);
            let orig = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {})); // keep the log quiet
            let _ = std::thread::spawn(move || {
                let _guard = shared.poison_requests.lock().unwrap();
                panic!("holder dies");
            })
            .join();
            std::panic::set_hook(orig);
        }
        // The next flusher pass recovers the mutex and translates the
        // event into a counter poison — no PoisonError propagates.
        c.increment(1);
        wait_for("synthesized poison", || c.poison_info().is_some());
        let info = c.poison_info().unwrap();
        assert!(info.message().contains("poison queue mutex"), "{info}");
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
