//! [`DurableCounter`]: a crash-durable wrapper over any
//! [`MonotonicCounter`], logging increments and poison events to a
//! CRC32-framed write-ahead log with group-commit batching, periodic
//! snapshots, and torn-tail recovery.
//!
//! # Group commit, guarded by monotonic counters
//!
//! The flusher is a dedicated thread; writers never touch the file. The
//! coordination is the paper's own primitive, dogfooded:
//!
//! * `rounds` — writers bump it (at most once per flush round, via a dirty
//!   flag) to signal work; the flusher `wait`s on it for the next round.
//! * `durable` — advanced by the flusher to the last fsynced value; a
//!   strict-mode writer `wait`s on it for its target value, so one fsync
//!   acknowledges every increment that enqueued before it (group commit).
//! * `poisons_synced` — advanced per persisted poison event, so `poison`
//!   returns only after its cause is durable in **both** modes.
//!
//! Monotonicity does the heavy lifting: log records carry *absolute* values
//! (replay = running max, idempotent), and in batched mode the flusher can
//! read the inner counter's value directly — any snapshot of a monotone
//! value is a correct durable point, which is why a batched increment costs
//! only the in-memory increment plus one atomic load.

use crate::frame::WalRecord;
use crate::recover::{recover_dir, write_snapshot, WAL_FILE};
use crate::wal::{wal_factory_from_env, WalError, WalFactory, WalFile};
use mc_counter::{
    CheckError, Counter, CounterDiagnostics, CounterOverflowError, CounterRecovery, FailureInfo,
    MonotonicCounter, ResumableCounter, StatsSnapshot, Supervisor, Value, WaitingLevel,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// When a durable counter acknowledges an increment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// `increment` returns only after the increment is fsync-durable, and
    /// the in-memory value (what waiters observe) is applied *after*
    /// durability — an acked level can never outrun the log. Concurrent
    /// increments share one fsync (group commit).
    Strict,
    /// `increment` applies in memory and returns immediately; the flusher
    /// continuously coalesces the current value into the log. Increments
    /// since the last completed flush round can be lost to a crash (never
    /// reordered or inflated — recovery is still a verified monotone
    /// prefix). Poison events remain strict even in this mode.
    Batched,
}

/// Configuration for [`DurableCounter::open`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// When increments are acknowledged. Default: [`DurabilityMode::Strict`].
    pub mode: DurabilityMode,
    /// Write a snapshot (and truncate the log) after this many log records.
    /// `0` disables snapshotting. Default: 1024.
    pub snapshot_every: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            mode: DurabilityMode::Strict,
            snapshot_every: 1024,
        }
    }
}

/// Durability-layer statistics (see [`DurableCounter::wal_stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Completed fsync rounds.
    pub fsyncs: u64,
    /// Records appended to the log (advances + poisons).
    pub records_logged: u64,
    /// Snapshots written (each truncates the log).
    pub snapshots: u64,
}

struct Shared {
    mode: DurabilityMode,
    /// Strict mode: the requested durable value (sum of all enqueued
    /// increments / advance targets). The flusher logs up to this.
    enqueued: AtomicU64,
    /// Set by writers after enqueueing, cleared by the flusher before it
    /// reads the target: guarantees at most one `rounds` bump per flush
    /// round without a lock on the hot path.
    dirty: AtomicBool,
    /// Flush-round signal: writers bump, the flusher waits.
    rounds: Counter,
    /// The last fsync-durable value; strict writers wait on it.
    durable: Counter,
    /// Poison events requested but not yet persisted.
    poison_requests: Mutex<Vec<FailureInfo>>,
    poisons_enqueued: AtomicU64,
    /// Count of persisted poison events; `poison` waits on it.
    poisons_synced: Counter,
    stop: AtomicBool,
    fsyncs: AtomicU64,
    records_logged: AtomicU64,
    snapshots: AtomicU64,
}

impl Shared {
    /// Signals the flusher that new work is enqueued, bumping `rounds` at
    /// most once per flush round. All operations are `SeqCst`: the flusher
    /// clears `dirty` *before* reading the target, so in the seq-cst total
    /// order every writer either lands before the read (covered by this
    /// round) or observes `dirty == false` and opens the next round.
    fn signal(&self) {
        if !self.dirty.load(SeqCst) && !self.dirty.swap(true, SeqCst) {
            self.rounds.increment(1);
        }
    }

    /// Adds `amount` to the strict-mode target, rejecting overflow.
    fn enqueue(&self, amount: Value) -> Result<Value, CounterOverflowError> {
        let mut cur = self.enqueued.load(SeqCst);
        loop {
            let Some(next) = cur.checked_add(amount) else {
                return Err(CounterOverflowError { value: cur, amount });
            };
            match self
                .enqueued
                .compare_exchange_weak(cur, next, SeqCst, SeqCst)
            {
                Ok(_) => return Ok(next),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Raises the strict-mode target to at least `target`; returns the
    /// effective target.
    fn enqueue_to(&self, target: Value) -> Value {
        let prev = self.enqueued.fetch_max(target, SeqCst);
        prev.max(target)
    }
}

/// A crash-durable wrapper around a [`MonotonicCounter`] implementation
/// `C`: increments (and poison events) are logged to a CRC32-framed
/// append-only WAL in the counter's directory before being acknowledged
/// (see [`DurabilityMode`]), and [`open`](Self::open) recovers value and
/// poison state after a crash.
///
/// Dropping the counter stops the flusher after a final drain: a clean
/// shutdown loses nothing, in either mode.
pub struct DurableCounter<C: MonotonicCounter> {
    inner: Arc<C>,
    shared: Arc<Shared>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

struct Flusher<C> {
    inner: Arc<C>,
    shared: Arc<Shared>,
    wal: Box<dyn WalFile>,
    dir: PathBuf,
    next_seq: u64,
    /// The last value written to the log (== the durable value once synced).
    logged_value: Value,
    /// The persisted poison cause, if any (survives into snapshots).
    poison: Option<FailureInfo>,
    records_since_snapshot: u64,
    snapshot_every: u64,
}

impl<C: MonotonicCounter + CounterDiagnostics> Flusher<C> {
    fn run(mut self) {
        let mut round: Value = 0;
        loop {
            let mut stopping = self.shared.stop.load(SeqCst);
            if !stopping {
                round += 1;
                let _ = self.shared.rounds.wait(round);
                stopping = self.shared.stop.load(SeqCst);
            }
            if let Err(e) = self.flush_once() {
                let info = FailureInfo::new(format!("durable counter wal failure: {e}"));
                // Wake strict waiters and fail future operations with the
                // cause instead of hanging them on durability that will
                // never come.
                self.shared.durable.poison(info.clone());
                self.shared.poisons_synced.poison(info.clone());
                self.inner.poison(info);
                return;
            }
            if stopping {
                return;
            }
            // Batched mode reads the inner value outside any writer-side
            // fence; re-run immediately if it moved during the flush so the
            // unsynced window stays one round wide.
            if self.shared.mode == DurabilityMode::Batched
                && self.inner.debug_value() > self.logged_value
            {
                self.shared.signal();
            }
        }
    }

    /// One group-commit round: clear the dirty flag, read the target,
    /// append + fsync, then publish durability to the waiting counters.
    fn flush_once(&mut self) -> std::io::Result<()> {
        self.shared.dirty.store(false, SeqCst);
        let target = match self.shared.mode {
            DurabilityMode::Strict => self.shared.enqueued.load(SeqCst),
            DurabilityMode::Batched => self.inner.debug_value(),
        };
        let poisons: Vec<FailureInfo> = {
            let mut reqs = self.shared.poison_requests.lock().expect("poison queue");
            std::mem::take(&mut *reqs)
        };

        let mut batch = Vec::new();
        let mut records = 0u64;
        if target > self.logged_value {
            batch.extend_from_slice(
                &WalRecord::Advance {
                    seq: self.next_seq,
                    value: target,
                }
                .encode_framed(),
            );
            self.next_seq += 1;
            self.records_since_snapshot += 1;
            records += 1;
        }
        for info in &poisons {
            batch.extend_from_slice(
                &WalRecord::Poison {
                    seq: self.next_seq,
                    thread: info.thread().to_string(),
                    message: info.message().to_string(),
                    level: info.level(),
                }
                .encode_framed(),
            );
            self.next_seq += 1;
            self.records_since_snapshot += 1;
            records += 1;
            if self.poison.is_none() {
                self.poison = Some(info.clone());
            }
        }

        if !batch.is_empty() {
            self.wal.append(&batch)?;
            self.wal.sync()?;
            self.shared.fsyncs.fetch_add(1, SeqCst);
            self.shared.records_logged.fetch_add(records, SeqCst);
            self.logged_value = self.logged_value.max(target);
        }

        // Publish durability: one advance acknowledges every writer whose
        // target the fsync covered (group commit).
        self.shared.durable.advance_to(self.logged_value);
        if !poisons.is_empty() {
            self.shared.poisons_synced.increment(poisons.len() as u64);
        }

        if self.snapshot_every > 0 && self.records_since_snapshot >= self.snapshot_every {
            write_snapshot(
                &self.dir,
                self.next_seq.saturating_sub(1),
                self.logged_value,
                self.poison.as_ref(),
            )?;
            self.wal.truncate_all()?;
            self.records_since_snapshot = 0;
            self.shared.snapshots.fetch_add(1, SeqCst);
        }
        Ok(())
    }
}

impl<C> DurableCounter<C>
where
    C: ResumableCounter + CounterDiagnostics + Send + Sync + 'static,
{
    /// Opens (or creates) the durable counter stored in `dir` with default
    /// options, recovering any persisted state: replays the verified log
    /// prefix over the snapshot, truncates a torn tail at the first bad
    /// frame, and restores value and poison state.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Self, CounterRecovery), WalError> {
        Self::open_with(dir, DurableOptions::default())
    }

    /// [`open`](Self::open) with explicit options. The log file is opened
    /// through [`wal_factory_from_env`]: setting `MC_CHAOS_WAL=1` injects
    /// the torn-tail [`ChaosWal`](crate::ChaosWal) (used by the crash
    /// harness).
    pub fn open_with(
        dir: impl AsRef<Path>,
        options: DurableOptions,
    ) -> Result<(Self, CounterRecovery), WalError> {
        Self::open_with_wal(dir, options, &*wal_factory_from_env())
    }

    /// [`open_with`](Self::open_with) using an explicit [`WalFactory`] for
    /// fault injection.
    pub fn open_with_wal(
        dir: impl AsRef<Path>,
        options: DurableOptions,
        factory: &WalFactory,
    ) -> Result<(Self, CounterRecovery), WalError> {
        let dir = dir.as_ref().to_path_buf();
        let recovered = recover_dir(&dir)?;
        let recovery = CounterRecovery {
            value: recovered.value,
            records_replayed: recovered.records_replayed,
            tail_bytes_discarded: recovered.tail_bytes_discarded,
            poison_restored: recovered.poison.is_some(),
        };

        let inner = Arc::new(C::resume_from(recovered.value));
        if let Some(info) = recovered.poison.clone() {
            inner.poison(info);
        }
        let shared = Arc::new(Shared {
            mode: options.mode,
            enqueued: AtomicU64::new(recovered.value),
            dirty: AtomicBool::new(false),
            rounds: Counter::default(),
            durable: Counter::builder().initial(recovered.value).build(),
            poison_requests: Mutex::new(Vec::new()),
            poisons_enqueued: AtomicU64::new(0),
            poisons_synced: Counter::default(),
            stop: AtomicBool::new(false),
            fsyncs: AtomicU64::new(0),
            records_logged: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
        });
        let wal = factory(&dir.join(WAL_FILE))?;
        let flusher = Flusher {
            inner: Arc::clone(&inner),
            shared: Arc::clone(&shared),
            wal,
            dir,
            next_seq: recovered.next_seq,
            logged_value: recovered.value,
            poison: recovered.poison,
            records_since_snapshot: 0,
            snapshot_every: options.snapshot_every,
        };
        let handle = std::thread::Builder::new()
            .name("mc-durable-flusher".into())
            .spawn(move || flusher.run())
            .map_err(WalError::Io)?;
        Ok((
            DurableCounter {
                inner,
                shared,
                flusher: Mutex::new(Some(handle)),
            },
            recovery,
        ))
    }

    /// [`open_with`](Self::open_with), plus supervisor integration: the
    /// recovered counter is registered under `name` and its
    /// [`CounterRecovery`] reported via [`Supervisor::note_recovery`], so it
    /// shows up in [`Supervisor::recovery_report`].
    pub fn open_supervised(
        dir: impl AsRef<Path>,
        options: DurableOptions,
        supervisor: &Supervisor,
        name: &str,
    ) -> Result<(Arc<Self>, CounterRecovery), WalError> {
        let (counter, recovery) = Self::open_with(dir, options)?;
        let counter = Arc::new(counter);
        supervisor.register(name, &counter);
        supervisor.note_recovery(name, recovery.clone());
        Ok((counter, recovery))
    }
}

impl<C: MonotonicCounter + CounterDiagnostics> DurableCounter<C> {
    /// The wrapped in-memory counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Durability-layer statistics: fsync rounds, records logged, snapshots.
    pub fn wal_stats(&self) -> WalStats {
        WalStats {
            fsyncs: self.shared.fsyncs.load(SeqCst),
            records_logged: self.shared.records_logged.load(SeqCst),
            snapshots: self.shared.snapshots.load(SeqCst),
        }
    }

    /// Blocks until everything enqueued so far is fsync-durable. A no-op in
    /// strict mode (increments are already acked durable); in batched mode
    /// this is the explicit persistence point.
    ///
    /// # Errors
    ///
    /// Returns the poisoning cause if the WAL failed.
    pub fn sync(&self) -> Result<(), FailureInfo> {
        let target = match self.shared.mode {
            DurabilityMode::Strict => self.shared.enqueued.load(SeqCst),
            DurabilityMode::Batched => self.inner.debug_value(),
        };
        self.shared.signal();
        match self.shared.durable.wait(target) {
            Ok(()) => Ok(()),
            Err(CheckError::Poisoned(info)) => Err(info),
            Err(CheckError::Timeout(_)) => unreachable!("untimed wait cannot time out"),
        }
    }

    fn ack_durable(&self, target: Value) {
        if let Err(CheckError::Poisoned(info)) = self.shared.durable.wait(target) {
            // The WAL is wedged: make the failure visible on the counter
            // itself, then surface it to the caller.
            self.inner.poison(info.clone());
            panic!("durable increment could not be persisted: {info}");
        }
    }
}

impl<C: MonotonicCounter + CounterDiagnostics> MonotonicCounter for DurableCounter<C> {
    fn increment(&self, amount: Value) {
        if amount == 0 {
            return;
        }
        match self.shared.mode {
            DurabilityMode::Strict => {
                let target = match self.shared.enqueue(amount) {
                    Ok(t) => t,
                    Err(e) => panic!("monotonic counter overflow: {e}"),
                };
                self.shared.signal();
                self.ack_durable(target);
                // Applied only after durability: a level observed satisfied
                // can never be lost to a crash.
                self.inner.increment(amount);
            }
            DurabilityMode::Batched => {
                self.inner.increment(amount);
                self.shared.signal();
            }
        }
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        if amount == 0 {
            return Ok(());
        }
        match self.shared.mode {
            DurabilityMode::Strict => {
                let target = self.shared.enqueue(amount)?;
                self.shared.signal();
                self.ack_durable(target);
                self.inner.increment(amount);
                Ok(())
            }
            DurabilityMode::Batched => {
                self.inner.try_increment(amount)?;
                self.shared.signal();
                Ok(())
            }
        }
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        self.inner.wait(level)
    }

    fn wait_timeout(&self, level: Value, timeout: std::time::Duration) -> Result<(), CheckError> {
        self.inner.wait_timeout(level, timeout)
    }

    fn poison(&self, info: FailureInfo) {
        // Persist the cause before poisoning in memory, in both modes:
        // poison must survive restart.
        let n = {
            let mut reqs = self.shared.poison_requests.lock().expect("poison queue");
            reqs.push(info.clone());
            self.shared.poisons_enqueued.fetch_add(1, SeqCst) + 1
        };
        self.shared.signal();
        // If the WAL itself failed, the flusher poisons `poisons_synced`;
        // either way the in-memory poison proceeds.
        let _ = self.shared.poisons_synced.wait(n);
        self.inner.poison(info);
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        self.inner.poison_info()
    }

    fn advance_to(&self, target: Value) {
        match self.shared.mode {
            DurabilityMode::Strict => {
                let target = self.shared.enqueue_to(target);
                self.shared.signal();
                self.ack_durable(target);
                self.inner.advance_to(target);
            }
            DurabilityMode::Batched => {
                self.inner.advance_to(target);
                self.shared.signal();
            }
        }
    }
}

impl<C: MonotonicCounter + CounterDiagnostics> CounterDiagnostics for DurableCounter<C> {
    fn debug_value(&self) -> Value {
        self.inner.debug_value()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn impl_name(&self) -> &'static str {
        "durable"
    }

    fn waiters(&self) -> Vec<WaitingLevel> {
        self.inner.waiters()
    }
}

impl<C: MonotonicCounter> Drop for DurableCounter<C> {
    fn drop(&mut self) {
        self.shared.stop.store(true, SeqCst);
        // Unconditional bump: wake the flusher even if the dirty flag is
        // already set (its owner may have signalled before our stop store).
        self.shared.rounds.increment(1);
        if let Some(h) = self.flusher.lock().expect("flusher handle").take() {
            let _ = h.join();
        }
    }
}
