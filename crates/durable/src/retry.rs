//! Bounded retry with exponential backoff for transient WAL I/O failures.
//!
//! The durability layer's flusher thread sits between acked increments and
//! the disk; a single `EINTR` or momentary `ENOSPC` should not poison the
//! counter. [`RetryPolicy`] bounds how hard the flusher tries before giving
//! up and handing the error to the degrade machinery: attempts are capped,
//! each backoff doubles up to a ceiling, and jitter comes from a
//! deterministic SplitMix64 stream so chaos runs replay bit-identically
//! under `MC_CHAOS_SEED`.

use crate::wal::WalError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How (and whether) transient WAL I/O errors are retried.
///
/// Only errors classified transient by [`WalError::is_transient`] are
/// retried; permanent errors surface immediately. The total added latency is
/// bounded by `max_retries * max_delay` (4 * 50ms = 200ms at the defaults),
/// keeping a stuck disk from stalling [`sync`](crate::DurableCounter::sync)
/// callers indefinitely before degraded mode takes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (default 4; 0 disables retry).
    pub max_retries: u32,
    /// Backoff before the first retry (default 1ms); doubles each retry.
    pub base_delay: Duration,
    /// Backoff ceiling (default 50ms).
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries at all: every error surfaces on first occurrence.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The backoff before retry `attempt` (0-based), without jitter:
    /// `min(max_delay, base_delay << attempt)`.
    fn backoff(&self, attempt: u32) -> Duration {
        let shifted = self
            .base_delay
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.max_delay);
        shifted.min(self.max_delay)
    }
}

/// Deterministic jitter source for retry backoff — SplitMix64, same
/// generator family the failpoint streams use, so a given seed reproduces
/// the exact same sleep schedule.
#[derive(Debug)]
pub(crate) struct JitterRng {
    state: u64,
}

impl JitterRng {
    pub(crate) fn new(seed: u64) -> Self {
        JitterRng { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A jittered delay in `[delay/2, delay]` — half the backoff is kept
    /// deterministic floor, the rest is scaled by the stream.
    fn jitter(&mut self, delay: Duration) -> Duration {
        if delay.is_zero() {
            return delay;
        }
        let half = delay / 2;
        let frac = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        half + Duration::from_secs_f64(half.as_secs_f64() * frac)
    }
}

/// Runs `op` under `policy`, retrying transient failures with jittered
/// exponential backoff. Every retry increments `retries` (the counter behind
/// `StatsSnapshot::io_retries`). Returns the first permanent error, or the
/// last transient error once the retry budget is exhausted.
pub(crate) fn with_retry<T>(
    policy: &RetryPolicy,
    rng: &mut JitterRng,
    retries: &AtomicU64,
    mut op: impl FnMut() -> Result<T, WalError>,
) -> Result<T, WalError> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                retries.fetch_add(1, Ordering::Relaxed);
                let delay = rng.jitter(policy.backoff(attempt));
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    fn transient() -> WalError {
        io::Error::from(io::ErrorKind::Interrupted).into()
    }

    fn permanent() -> WalError {
        io::Error::from(io::ErrorKind::PermissionDenied).into()
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(40),
        }
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let retries = AtomicU64::new(0);
        let mut rng = JitterRng::new(1);
        let mut left = 2;
        let out = with_retry(&fast_policy(), &mut rng, &retries, || {
            if left > 0 {
                left -= 1;
                Err(transient())
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(retries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn permanent_errors_surface_immediately() {
        let retries = AtomicU64::new(0);
        let mut rng = JitterRng::new(1);
        let mut calls = 0;
        let out: Result<(), _> = with_retry(&fast_policy(), &mut rng, &retries, || {
            calls += 1;
            Err(permanent())
        });
        assert!(!out.unwrap_err().is_transient());
        assert_eq!(calls, 1);
        assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn budget_exhaustion_returns_last_transient_error() {
        let retries = AtomicU64::new(0);
        let mut rng = JitterRng::new(1);
        let mut calls = 0;
        let out: Result<(), _> = with_retry(&fast_policy(), &mut rng, &retries, || {
            calls += 1;
            Err(transient())
        });
        assert!(out.unwrap_err().is_transient());
        // 1 initial attempt + 3 retries.
        assert_eq!(calls, 4);
        assert_eq!(retries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn none_policy_never_retries() {
        let retries = AtomicU64::new(0);
        let mut rng = JitterRng::new(1);
        let mut calls = 0;
        let out: Result<(), _> = with_retry(&RetryPolicy::none(), &mut rng, &retries, || {
            calls += 1;
            Err(transient())
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_caps_at_max_delay_and_jitter_is_deterministic() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), Duration::from_millis(1));
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(10), Duration::from_millis(50));
        assert_eq!(p.backoff(63), Duration::from_millis(50));

        let d = Duration::from_millis(10);
        let a: Vec<Duration> = {
            let mut r = JitterRng::new(99);
            (0..4).map(|_| r.jitter(d)).collect()
        };
        let b: Vec<Duration> = {
            let mut r = JitterRng::new(99);
            (0..4).map(|_| r.jitter(d)).collect()
        };
        assert_eq!(a, b);
        for j in &a {
            assert!(*j >= d / 2 && *j <= d, "jitter {j:?} outside [d/2, d]");
        }
    }
}
