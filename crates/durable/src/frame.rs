//! CRC32-framed, length-prefixed record encoding for the write-ahead log
//! and the pipeline checkpoint files.
//!
//! Every frame on disk is:
//!
//! ```text
//! +----------------+----------------+=====================+
//! | len: u32 LE    | crc: u32 LE    | payload (len bytes) |
//! +----------------+----------------+=====================+
//! ```
//!
//! `crc` is the IEEE CRC32 of the payload bytes. A reader accepts a frame
//! only when the full header and `len` payload bytes are present *and* the
//! checksum matches; anything else is a torn or corrupt tail and reading
//! stops at the last verified frame. Because counter records carry absolute
//! values (see [`WalRecord::Advance`]) and counters are monotonic, replaying
//! any verified prefix yields a correct — merely possibly earlier — state.

use mc_counter::Value;

/// Bytes of frame header preceding every payload: `u32` length + `u32` CRC.
pub const FRAME_HEADER: usize = 8;

/// Frames larger than this are rejected as corrupt rather than allocated.
/// No legitimate record comes anywhere near it; a flipped bit in the length
/// field must not turn into a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC32 checksum of `bytes` (the polynomial used by zip/png/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Appends one framed payload (`header + payload`) to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The result of attempting to read one frame at `offset` in `bytes`.
pub enum FrameRead<'a> {
    /// A verified frame: its payload and the offset of the next frame.
    Frame {
        /// The CRC-verified payload bytes.
        payload: &'a [u8],
        /// Offset of the byte after this frame (where the next one starts).
        next: usize,
    },
    /// Clean end of input: `offset` is exactly the end of the buffer.
    End,
    /// Torn or corrupt data at `offset` — a partial header, a partial
    /// payload, an oversized length, or a checksum mismatch. Everything
    /// from `offset` on must be discarded.
    Corrupt,
}

/// Reads the frame starting at `offset`, verifying length and checksum.
pub fn read_frame(bytes: &[u8], offset: usize) -> FrameRead<'_> {
    if offset == bytes.len() {
        return FrameRead::End;
    }
    let Some(header) = bytes.get(offset..offset + FRAME_HEADER) else {
        return FrameRead::Corrupt;
    };
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return FrameRead::Corrupt;
    }
    let start = offset + FRAME_HEADER;
    let Some(payload) = bytes.get(start..start + len as usize) else {
        return FrameRead::Corrupt;
    };
    if crc32(payload) != crc {
        return FrameRead::Corrupt;
    }
    FrameRead::Frame {
        payload,
        next: start + len as usize,
    }
}

const TAG_ADVANCE: u8 = 1;
const TAG_POISON: u8 = 2;

/// One durable event in a counter's write-ahead log.
///
/// `Advance` records carry the **absolute** value rather than a delta:
/// combined with monotonicity, that makes replay idempotent by construction
/// — recovery is simply the running maximum over the verified prefix, so
/// replaying a record twice (e.g. a record both covered by a snapshot and
/// still present in the log after a crash mid-truncation) cannot inflate
/// the value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// The counter's durable value reached `value`.
    Advance {
        /// Monotonically increasing record sequence number.
        seq: u64,
        /// The absolute counter value as of this record.
        value: Value,
    },
    /// The counter was poisoned.
    Poison {
        /// Monotonically increasing record sequence number.
        seq: u64,
        /// Name of the thread that failed.
        thread: String,
        /// The failure description.
        message: String,
        /// Optional level context attached to the failure.
        level: Option<Value>,
    },
}

impl WalRecord {
    /// This record's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Advance { seq, .. } | WalRecord::Poison { seq, .. } => *seq,
        }
    }

    /// Encodes the record payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Advance { seq, value } => {
                let mut out = Vec::with_capacity(17);
                out.push(TAG_ADVANCE);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
                out
            }
            WalRecord::Poison {
                seq,
                thread,
                message,
                level,
            } => {
                let mut out = Vec::with_capacity(26 + thread.len() + message.len());
                out.push(TAG_POISON);
                out.extend_from_slice(&seq.to_le_bytes());
                match level {
                    Some(l) => {
                        out.push(1);
                        out.extend_from_slice(&l.to_le_bytes());
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&(thread.len() as u32).to_le_bytes());
                out.extend_from_slice(thread.as_bytes());
                out.extend_from_slice(&(message.len() as u32).to_le_bytes());
                out.extend_from_slice(message.as_bytes());
                out
            }
        }
    }

    /// Encodes the record as a complete frame (header + payload).
    pub fn encode_framed(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
        write_frame(&mut out, &payload);
        out
    }

    /// Decodes a record payload produced by [`encode`](Self::encode).
    ///
    /// Returns `None` for any malformed payload (unknown tag, short buffer,
    /// trailing garbage, invalid UTF-8) — never panics. The caller treats a
    /// malformed record inside a CRC-verified frame the same as a corrupt
    /// frame: the verified prefix ends there.
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, rest) = payload.split_first()?;
        match tag {
            TAG_ADVANCE => {
                if rest.len() != 16 {
                    return None;
                }
                let seq = u64::from_le_bytes(rest[..8].try_into().ok()?);
                let value = u64::from_le_bytes(rest[8..].try_into().ok()?);
                Some(WalRecord::Advance { seq, value })
            }
            TAG_POISON => {
                let seq = u64::from_le_bytes(rest.get(..8)?.try_into().ok()?);
                let mut at = 8;
                let level = match *rest.get(at)? {
                    0 => {
                        at += 1;
                        None
                    }
                    1 => {
                        let l = u64::from_le_bytes(rest.get(at + 1..at + 9)?.try_into().ok()?);
                        at += 9;
                        Some(l)
                    }
                    _ => return None,
                };
                let tlen = u32::from_le_bytes(rest.get(at..at + 4)?.try_into().ok()?) as usize;
                at += 4;
                let thread = std::str::from_utf8(rest.get(at..at + tlen)?).ok()?;
                at += tlen;
                let mlen = u32::from_le_bytes(rest.get(at..at + 4)?.try_into().ok()?) as usize;
                at += 4;
                let message = std::str::from_utf8(rest.get(at..at + mlen)?).ok()?;
                at += mlen;
                if at != rest.len() {
                    return None;
                }
                Some(WalRecord::Poison {
                    seq,
                    thread: thread.to_string(),
                    message: message.to_string(),
                    level,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, b"world!");
        let FrameRead::Frame { payload, next } = read_frame(&buf, 0) else {
            panic!("first frame unreadable");
        };
        assert_eq!(payload, b"hello");
        let FrameRead::Frame { payload, next } = read_frame(&buf, next) else {
            panic!("second frame unreadable");
        };
        assert_eq!(payload, b"");
        let FrameRead::Frame { payload, next } = read_frame(&buf, next) else {
            panic!("third frame unreadable");
        };
        assert_eq!(payload, b"world!");
        assert!(matches!(read_frame(&buf, next), FrameRead::End));
    }

    #[test]
    fn truncated_and_corrupt_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload");
        // Torn header.
        assert!(matches!(read_frame(&buf[..4], 0), FrameRead::Corrupt));
        // Torn payload.
        assert!(matches!(
            read_frame(&buf[..buf.len() - 1], 0),
            FrameRead::Corrupt
        ));
        // Flipped payload bit.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(read_frame(&bad, 0), FrameRead::Corrupt));
        // Absurd length field.
        let mut huge = buf;
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_frame(&huge, 0), FrameRead::Corrupt));
    }

    #[test]
    fn record_round_trip() {
        let records = [
            WalRecord::Advance { seq: 0, value: 0 },
            WalRecord::Advance {
                seq: 7,
                value: u64::MAX,
            },
            WalRecord::Poison {
                seq: 8,
                thread: "worker-3".into(),
                message: "producer died mid-protocol".into(),
                level: Some(42),
            },
            WalRecord::Poison {
                seq: 9,
                thread: String::new(),
                message: String::new(),
                level: None,
            },
        ];
        for r in &records {
            assert_eq!(WalRecord::decode(&r.encode()).as_ref(), Some(r));
        }
    }

    #[test]
    fn malformed_payloads_decode_to_none() {
        assert!(WalRecord::decode(&[]).is_none());
        assert!(WalRecord::decode(&[99, 0, 0]).is_none());
        assert!(WalRecord::decode(&[TAG_ADVANCE, 1, 2]).is_none());
        let mut ok = WalRecord::Advance { seq: 1, value: 2 }.encode();
        ok.push(0); // trailing garbage
        assert!(WalRecord::decode(&ok).is_none());
    }
}
