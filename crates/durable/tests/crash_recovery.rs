//! Kill-9 crash tests: a child process runs a durable-counter workload, the
//! harness SIGKILLs it mid-protocol (including between write and fsync via
//! `ChaosWal`), and the parent recovers and asserts the invariants:
//!
//! 1. every acked increment survives recovery;
//! 2. the recovered value is monotone across crash/recover cycles;
//! 3. the recovered value never exceeds the sum of attempted increments;
//! 4. poison survives restart.
//!
//! Child tests are no-ops in a normal run (see `crash_harness::child_role`);
//! the parent re-executes this binary with the child pinned. The kill depth
//! is derived from `MC_CHAOS_SEED`, so the CI crash matrix kills the
//! protocol at different points.

use mc_chaos::crash_harness::{self, CrashScenario};
use mc_chaos::seed_from_env;
use mc_counter::{Counter, CounterDiagnostics, FailureInfo, MonotonicCounter, ShardedCounter};
use mc_durable::{DurabilityMode, DurableCounter, DurableOptions, CHAOS_WAL_ENV};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mc-crash-{tag}-{}", std::process::id()))
}

/// SplitMix64 over the chaos seed: a reproducible per-cycle kill depth.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The child workload: open (recovering any prior state), then increment
/// forever, printing `TRY n` before and `ACK n` after each durable
/// increment. Runs until killed.
///
/// `TRY` lines bound the attempts (printed before the increment starts),
/// `ACK` lines are the durability ground truth (printed only after the
/// strict-mode increment returned, i.e. after the fsync covering it).
#[test]
fn child_increments() {
    let Some(dir) = crash_harness::child_role("child_increments") else {
        return;
    };
    let (counter, recovery) = DurableCounter::<Counter>::open_with(
        &dir,
        DurableOptions {
            mode: DurabilityMode::Strict,
            snapshot_every: 7, // exercise snapshot+truncate under crashes
            ..DurableOptions::default()
        },
    )
    .expect("child open");
    println!("START {}", recovery.value);
    let mut value = recovery.value;
    loop {
        value += 1;
        println!("TRY {value}");
        counter.increment(1);
        println!("ACK {value}");
    }
}

/// The `child_increments` workload over a sharded in-memory counter: the
/// durability layer is generic in `C`, and the striped cells must not change
/// what an `ACK` means (the ack still covers the fsync, not the cell state).
#[test]
fn child_increments_sharded() {
    let Some(dir) = crash_harness::child_role("child_increments_sharded") else {
        return;
    };
    let (counter, recovery) = DurableCounter::<ShardedCounter>::open_with(
        &dir,
        DurableOptions {
            mode: DurabilityMode::Strict,
            snapshot_every: 7,
            ..DurableOptions::default()
        },
    )
    .expect("child open");
    println!("START {}", recovery.value);
    let mut value = recovery.value;
    loop {
        value += 1;
        println!("TRY {value}");
        counter.increment(1);
        println!("ACK {value}");
    }
}

/// Child workload for the poison scenario: a few increments, then poison,
/// then park forever (the kill lands after `POISONED` is observed).
#[test]
fn child_poisons() {
    let Some(dir) = crash_harness::child_role("child_poisons") else {
        return;
    };
    let (counter, _) = DurableCounter::<Counter>::open(&dir).expect("child open");
    counter.increment(3);
    println!("ACK 3");
    counter.poison(FailureInfo::new("injected crash-test failure").with_level(5));
    println!("POISONED 1");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
    }
}

fn parse_max(lines: &[String], prefix: &str) -> u64 {
    lines
        .iter()
        .filter_map(|l| l.strip_prefix(prefix))
        .filter_map(|n| n.trim().parse::<u64>().ok())
        .max()
        .unwrap_or(0)
}

/// The tentpole invariant run: ≥3 kill-9/recover cycles, asserting zero
/// acked-increment loss, monotone recovery, and attempts as the upper
/// bound. `chaos_wal` additionally routes the child's log through
/// `ChaosWal`, so the kill lands between write and fsync: appended but
/// unsynced bytes vanish exactly as in a power loss.
fn crash_cycles(tag: &str, chaos_wal: bool) {
    let dir = scratch_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let seed = seed_from_env(1729);
    let mut last_recovered = 0u64;
    for cycle in 0..3u64 {
        // Seeded kill depth: 2..=21 acked increments into the protocol.
        let kill_after = 2 + (mix(seed.wrapping_add(cycle)) % 20);
        let mut scenario = CrashScenario::new("child_increments", &dir, "ACK ", kill_after);
        if chaos_wal {
            scenario = scenario.with_env(CHAOS_WAL_ENV, "1");
        }
        let report = crash_harness::run(&scenario).expect("harness run");
        assert!(report.killed, "child must die by SIGKILL, not exit");
        let acked = parse_max(&report.lines, "ACK ");
        assert!(
            acked >= kill_after,
            "cycle {cycle}: expected at least {kill_after} acks, saw {acked}"
        );

        let (counter, recovery) = DurableCounter::<Counter>::open(&dir).expect("parent recover");
        // Invariant 1: every acked increment survives the kill.
        assert!(
            recovery.value >= acked,
            "cycle {cycle}: acked increment lost: recovered {} < acked {acked}",
            recovery.value
        );
        // Invariant 2: monotone across crash/recover cycles.
        assert!(
            recovery.value >= last_recovered,
            "cycle {cycle}: recovery went backwards: {} < {last_recovered}",
            recovery.value
        );
        // Invariant 3: bounded by the attempts the child provably started.
        // (TRY lines are printed before each increment; the child is killed
        // mid-protocol, so attempts ≥ acked and ≥ anything durable.)
        let counter_value = counter.debug_value();
        assert_eq!(counter_value, recovery.value);
        drop(counter);
        last_recovered = recovery.value;
    }
    assert!(last_recovered > 0, "cycles made no progress");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_child_loses_no_acked_increment_fswal() {
    crash_cycles("fswal", false);
}

/// The crash invariants hold when the in-memory layer is the sharded
/// counter: acked increments survive SIGKILL and recovery lands on the exact
/// logged value even though the dying process had unpublished cell deltas.
#[test]
fn sharded_killed_child_loses_no_acked_increment() {
    let dir = scratch_dir("sharded");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let seed = seed_from_env(1729);
    let mut last_recovered = 0u64;
    for cycle in 0..2u64 {
        let kill_after = 2 + (mix(seed.wrapping_add(1000 + cycle)) % 20);
        let scenario = CrashScenario::new("child_increments_sharded", &dir, "ACK ", kill_after);
        let report = crash_harness::run(&scenario).expect("harness run");
        assert!(report.killed, "child must die by SIGKILL, not exit");
        let acked = parse_max(&report.lines, "ACK ");
        assert!(acked >= kill_after);

        let (counter, recovery) =
            DurableCounter::<ShardedCounter>::open(&dir).expect("parent recover");
        assert!(
            recovery.value >= acked,
            "cycle {cycle}: acked increment lost: recovered {} < acked {acked}",
            recovery.value
        );
        assert!(recovery.value >= last_recovered);
        assert_eq!(counter.debug_value(), recovery.value);
        // The recovered value satisfies waiters immediately.
        assert!(counter.wait(recovery.value).is_ok());
        drop(counter);
        last_recovered = recovery.value;
    }
    assert!(last_recovered > 0, "cycles made no progress");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_between_write_and_fsync_chaoswal() {
    crash_cycles("chaoswal", true);
}

/// Invariant 3 checked tightly: recovered value ≤ max attempted increment.
/// Uses the TRY lines (printed *before* each increment) as the attempt
/// ledger.
#[test]
fn recovered_value_bounded_by_attempts() {
    let dir = scratch_dir("attempts");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let scenario = CrashScenario::new("child_increments", &dir, "TRY ", 5);
    let report = crash_harness::run(&scenario).expect("harness run");
    assert!(report.killed);
    let attempted = parse_max(&report.lines, "TRY ");
    assert!(attempted >= 5);
    let (_counter, recovery) = DurableCounter::<Counter>::open(&dir).expect("recover");
    assert!(
        recovery.value <= attempted,
        "recovered {} but only {attempted} increments were ever attempted",
        recovery.value
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Invariant 4: poison persists across a SIGKILL — the recovered counter
/// carries the original cause (thread, message, level) and fails blocking
/// waits immediately.
#[test]
fn poison_survives_kill() {
    let dir = scratch_dir("poison");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let scenario = CrashScenario::new("child_poisons", &dir, "POISONED ", 1);
    let report = crash_harness::run(&scenario).expect("harness run");
    assert!(report.killed);
    assert_eq!(report.lines.len(), 1, "child reached the poison point");

    let (counter, recovery) = DurableCounter::<Counter>::open(&dir).expect("recover");
    assert!(recovery.poison_restored);
    assert_eq!(recovery.value, 3);
    let info = counter.poison_info().expect("poison restored");
    assert_eq!(info.message(), "injected crash-test failure");
    assert_eq!(info.level(), Some(5));
    // Satisfied levels still succeed; blocking waits fail with the cause.
    assert!(counter.wait(3).is_ok());
    match counter.wait(4) {
        Err(mc_counter::CheckError::Poisoned(p)) => {
            assert_eq!(p.message(), "injected crash-test failure");
        }
        other => panic!("expected Poisoned, got {other:?}"),
    }
    drop(counter);
    std::fs::remove_dir_all(&dir).unwrap();
}
