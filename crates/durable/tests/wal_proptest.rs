//! Property battery for the WAL frame codec and recovery: arbitrary record
//! sequences round-trip exactly; arbitrary truncation and arbitrary
//! single-byte corruption recover a verified prefix (or a typed error for
//! the snapshot), and **never** panic or inflate the value.

use mc_counter::{Counter, CounterDiagnostics};
use mc_durable::{read_frame, DurableCounter, FrameRead, WalRecord, WAL_FILE};
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh scratch directory per case (proptest reruns each property many
/// times in one process).
fn case_dir(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mc-wal-prop-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create case dir");
    dir
}

fn record_strategy() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (0u64..1000).prop_map(|x| WalRecord::Advance {
            seq: x,
            value: x.wrapping_mul(31) % 5000,
        }),
        (0u64..1000).prop_map(|x| WalRecord::Poison {
            seq: x,
            thread: format!("worker-{}", x % 7),
            message: format!("failure #{x}"),
            level: if x % 3 == 0 { Some(x) } else { None },
        }),
    ]
}

/// The log bytes for a record sequence, plus the max value any `Advance`
/// carries (the inflation bound for every assertion below).
fn build_log(records: &[WalRecord]) -> (Vec<u8>, u64) {
    let mut bytes = Vec::new();
    let mut max_value = 0;
    for r in records {
        bytes.extend_from_slice(&r.encode_framed());
        if let WalRecord::Advance { value, .. } = r {
            max_value = max_value.max(*value);
        }
    }
    (bytes, max_value)
}

/// Decodes every verified frame from `bytes` (what recovery replays).
fn verified_records(bytes: &[u8]) -> Vec<WalRecord> {
    let mut out = Vec::new();
    let mut offset = 0;
    while let FrameRead::Frame { payload, next } = read_frame(bytes, offset) {
        let Some(record) = WalRecord::decode(payload) else {
            break;
        };
        out.push(record);
        offset = next;
    }
    out
}

fn recover(dir: &PathBuf) -> mc_counter::CounterRecovery {
    let (counter, recovery) =
        DurableCounter::<Counter>::open(dir).expect("recovery must not error on log damage");
    assert_eq!(counter.debug_value(), recovery.value);
    drop(counter);
    recovery
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode → decode round-trips every record sequence exactly.
    fn round_trip_exact(records in vec(record_strategy(), 0..40)) {
        let (bytes, _) = build_log(&records);
        prop_assert_eq!(verified_records(&bytes), records);
    }

    /// An intact log recovers to exactly the max advance value, with every
    /// record replayed and nothing discarded.
    fn intact_log_recovers_fully(records in vec(record_strategy(), 0..40)) {
        let (bytes, max_value) = build_log(&records);
        let dir = case_dir("intact");
        std::fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        let recovery = recover(&dir);
        prop_assert_eq!(recovery.value, max_value);
        prop_assert_eq!(recovery.records_replayed, records.len() as u64);
        prop_assert_eq!(recovery.tail_bytes_discarded, 0);
        let any_poison = records.iter().any(|r| matches!(r, WalRecord::Poison { .. }));
        prop_assert_eq!(recovery.poison_restored, any_poison);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Truncating the log at ANY byte offset recovers the verified prefix:
    /// never a panic, never an error, never a value above the intact max —
    /// and exactly the max of the frames that survived whole.
    fn arbitrary_truncation_recovers_verified_prefix(
        records in vec(record_strategy(), 1..30),
        cut_frac in 0u64..10_000,
    ) {
        let (bytes, max_value) = build_log(&records);
        let cut = (bytes.len() as u64 * cut_frac / 10_000) as usize;
        let torn = &bytes[..cut];
        let expected = verified_records(torn);
        let expected_value = expected
            .iter()
            .filter_map(|r| match r {
                WalRecord::Advance { value, .. } => Some(*value),
                WalRecord::Poison { .. } => None,
            })
            .max()
            .unwrap_or(0);

        let dir = case_dir("trunc");
        std::fs::write(dir.join(WAL_FILE), torn).unwrap();
        let recovery = recover(&dir);
        prop_assert_eq!(recovery.value, expected_value);
        prop_assert!(recovery.value <= max_value, "truncation inflated the value");
        prop_assert_eq!(recovery.records_replayed, expected.len() as u64);
        prop_assert_eq!(
            recovery.tail_bytes_discarded as usize,
            torn.len()
                - expected
                    .iter()
                    .map(|r| r.encode_framed().len())
                    .sum::<usize>()
        );
        // Recovery physically truncated the tail: a second recovery is clean
        // and agrees (monotone across recover cycles).
        let again = recover(&dir);
        prop_assert_eq!(again.value, expected_value);
        prop_assert_eq!(again.tail_bytes_discarded, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Flipping ANY single byte of the log never panics, never errors, and
    /// never recovers a value above the intact max (no inflation) — the
    /// CRC stops the damaged frame and recovery keeps the prefix before it.
    fn single_byte_corruption_never_inflates(
        records in vec(record_strategy(), 1..30),
        pos_frac in 0u64..10_000,
        flip in 1u8..=255,
    ) {
        let (mut bytes, max_value) = build_log(&records);
        let pos = (bytes.len() as u64 * pos_frac / 10_000) as usize % bytes.len();
        bytes[pos] ^= flip;
        let expected = verified_records(&bytes);
        let expected_value = expected
            .iter()
            .filter_map(|r| match r {
                WalRecord::Advance { value, .. } => Some(*value),
                WalRecord::Poison { .. } => None,
            })
            .max()
            .unwrap_or(0);

        let dir = case_dir("flip");
        std::fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        let recovery = recover(&dir);
        prop_assert_eq!(recovery.value, expected_value);
        prop_assert!(
            recovery.value <= max_value,
            "single-byte corruption inflated the value: {} > {}",
            recovery.value,
            max_value
        );
        prop_assert!(recovery.records_replayed <= records.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Corrupting the snapshot — unlike the log — must produce the typed
/// `WalError::CorruptSnapshot`, not a panic and not silent data loss.
#[test]
fn corrupt_snapshot_yields_typed_error() {
    use mc_durable::{WalError, SNAPSHOT_FILE};
    let dir = case_dir("snap");
    std::fs::write(dir.join(SNAPSHOT_FILE), b"not a snapshot").unwrap();
    match DurableCounter::<Counter>::open(&dir) {
        Err(WalError::CorruptSnapshot(_)) => {}
        Ok(_) => panic!("corrupt snapshot must not open"),
        Err(other) => panic!("expected CorruptSnapshot, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
