//! Torture battery for the failpoint-driven fault-injection stack: seeded
//! randomized fault schedules against concurrent strict writers and
//! waiters, asserting the four robustness invariants:
//!
//! 1. **zero acked-durable loss** — every value the counter ever *claimed*
//!    fsync-durable (via `durable_value`) survives reopen;
//! 2. **monotone recovery** — reopening never goes backwards;
//! 3. **no deadlock** — writers and waiters finish within a bounded
//!    deadline even while faults are armed;
//! 4. **eventual self-heal** — once the fault schedule is cleared, the
//!    counter returns to [`HealthStatus::Healthy`] and `sync()` succeeds.
//!
//! Every run is pinned to one of five seeds and replays from its seed
//! alone (`MC_CHAOS_SEED=<seed>` plus the logged `MC_CHAOS_FAILPOINTS`
//! spec). The kill-9 composition at the bottom layers the crash harness on
//! top, so SIGKILL lands *during* degraded-mode resync.

use mc_chaos::crash_harness::{self, CrashScenario};
use mc_chaos::torture::{arm_plan, fault_plan, plan_to_spec};
use mc_chaos::{FailConfig, Failpoints, FAILPOINTS_ENV};
use mc_counter::{
    Counter, CounterDiagnostics, HealthStatus, MonotonicCounter, PoisonPolicy, Supervisor,
    SupervisorConfig,
};
use mc_durable::{
    DurabilityMode, DurableCounter, DurableOptions, RetryPolicy, SITE_SNAPSHOT_RENAME,
    SITE_WAL_APPEND, SITE_WAL_FSYNC, SITE_WAL_OPEN, SITE_WAL_TRUNCATE,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The CI-pinned seeds. A failure against any of them replays exactly with
/// `MC_CHAOS_SEED=<seed> cargo test -p mc-durable --test torture`.
const SEEDS: [u64; 5] = [1, 7, 42, 1729, 99991];

/// Every instrumented site class the plan draws faults over: append,
/// fsync, snapshot rename, post-snapshot truncate, and (re)open — the last
/// one makes degraded-mode resync itself fail sometimes.
const SITES: [&str; 5] = [
    SITE_WAL_APPEND,
    SITE_WAL_FSYNC,
    SITE_SNAPSHOT_RENAME,
    SITE_WAL_TRUNCATE,
    SITE_WAL_OPEN,
];

const WRITERS: u64 = 4;
const PER_WRITER: u64 = 50;
const TOTAL: u64 = WRITERS * PER_WRITER;

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mc-torture-{tag}-{}", std::process::id()))
}

fn parse_max(lines: &[String], prefix: &str) -> u64 {
    lines
        .iter()
        .filter_map(|l| l.strip_prefix(prefix))
        .filter_map(|n| n.trim().parse::<u64>().ok())
        .max()
        .unwrap_or(0)
}

fn wait_for(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Degrade-policy options tuned for torture: small fast retries, a replay
/// budget large enough that writers never block on a dead disk for long,
/// and a fast resync probe.
fn torture_options(fp: &Arc<Failpoints>) -> DurableOptions {
    DurableOptions {
        mode: DurabilityMode::Strict,
        snapshot_every: 8,
        retry: RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(500),
        },
        poison_policy: PoisonPolicy::Degrade,
        failpoints: Some(Arc::clone(fp)),
        replay_budget: 64,
        resync_interval: Duration::from_millis(2),
        metrics: None,
    }
}

/// One full torture cycle for a seed: arm the derived fault plan, run
/// concurrent strict writers + waiters to completion under a deadline,
/// clear the plan, and assert self-heal plus zero-loss reopen.
fn torture_cycle(seed: u64) {
    let dir = scratch_dir(&format!("seed{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Open *before* arming: the plan includes `wal.open`, which must hammer
    // the resync path, not the initial open.
    let fp = Arc::new(Failpoints::new(seed));
    let (counter, recovery) =
        DurableCounter::<Counter>::open_with(&dir, torture_options(&fp)).expect("initial open");
    assert_eq!(recovery.value, 0);
    let counter = Arc::new(counter);

    let plan = fault_plan(seed, &SITES);
    // Log the replayable spec so a failure reproduces outside this harness:
    // MC_CHAOS_SEED=<seed> MC_CHAOS_FAILPOINTS=<spec>.
    eprintln!("seed {seed}: MC_CHAOS_FAILPOINTS={}", plan_to_spec(&plan));
    arm_plan(&fp, &plan);

    let mut handles = Vec::new();
    for _ in 0..WRITERS {
        let c = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            for _ in 0..PER_WRITER {
                c.increment(1);
            }
        }));
    }
    for _ in 0..2 {
        let c = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            c.wait(TOTAL).expect("waiter must not see poison");
        }));
    }

    // Invariant 3 (no deadlock): everyone finishes under a hard deadline
    // even with the plan armed — degraded mode keeps acking from memory
    // and the resync probe keeps retrying the (sometimes failing) reopen.
    let deadline = Instant::now() + Duration::from_secs(60);
    while handles.iter().any(|h| !h.is_finished()) {
        assert!(
            Instant::now() < deadline,
            "seed {seed}: writers/waiters deadlocked under fault schedule"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    for h in handles {
        h.join().expect("torture thread panicked");
    }
    assert_eq!(counter.debug_value(), TOTAL);
    assert!(
        fp.total_injected() > 0,
        "seed {seed}: plan injected nothing — torture ran fault-free"
    );

    // End the outage. Invariant 4: the counter self-heals and the full
    // backlog becomes fsync-durable.
    fp.clear();
    wait_for(
        &format!("seed {seed}: return to Healthy"),
        Duration::from_secs(30),
        || matches!(counter.health(), HealthStatus::Healthy),
    );
    counter.sync().expect("sync after heal");
    assert!(counter.durable_value() >= TOTAL);
    let stats = counter.wal_stats();
    let watermark = counter.durable_value();
    eprintln!(
        "seed {seed}: injected={} retries={} degraded_entries={} resyncs={}",
        fp.total_injected(),
        stats.retries,
        stats.degraded_entries,
        stats.resyncs
    );
    drop(counter);

    // Invariants 1 + 2: reopen (faults off) recovers at least every value
    // ever claimed durable, and at least the full acked total.
    let quiet = DurableOptions {
        failpoints: Some(Arc::new(Failpoints::new(0))),
        ..DurableOptions::default()
    };
    let (reopened, recovery) =
        DurableCounter::<Counter>::open_with(&dir, quiet).expect("reopen after torture");
    assert!(
        recovery.value >= watermark,
        "seed {seed}: durable claim lost: recovered {} < claimed {watermark}",
        recovery.value
    );
    assert!(
        recovery.value >= TOTAL,
        "seed {seed}: acked increment lost: recovered {} < acked {TOTAL}",
        recovery.value
    );
    assert!(!recovery.poison_restored);
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torture_seed_1() {
    torture_cycle(SEEDS[0]);
}

#[test]
fn torture_seed_7() {
    torture_cycle(SEEDS[1]);
}

#[test]
fn torture_seed_42() {
    torture_cycle(SEEDS[2]);
}

#[test]
fn torture_seed_1729() {
    torture_cycle(SEEDS[3]);
}

#[test]
fn torture_seed_99991() {
    torture_cycle(SEEDS[4]);
}

/// Child workload for the kill-9 composition: a Degrade-policy strict
/// counter under env-armed failpoints (`MC_CHAOS_FAILPOINTS` /
/// `MC_CHAOS_SEED` travel through [`CrashScenario::with_env`]). Prints
/// `DUR <watermark>` after every increment — each line is a *durability
/// claim* the recovery must honor. The initial open retries in a loop
/// because the armed `wal.open` spec can fail it.
#[test]
fn child_degraded_increments() {
    let Some(dir) = crash_harness::child_role("child_degraded_increments") else {
        return;
    };
    let options = || DurableOptions {
        mode: DurabilityMode::Strict,
        snapshot_every: 5,
        retry: RetryPolicy {
            max_retries: 1,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(1),
        },
        poison_policy: PoisonPolicy::Degrade,
        // None => the process-global registry parsed from the environment.
        failpoints: None,
        replay_budget: 3,
        resync_interval: Duration::from_millis(1),
        metrics: None,
    };
    let counter = loop {
        match DurableCounter::<Counter>::open_with(&dir, options()) {
            Ok((counter, recovery)) => {
                println!("START {}", recovery.value);
                break counter;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    };
    loop {
        counter.increment(1);
        println!("DUR {}", counter.durable_value());
    }
}

/// Kill-9 composed with degraded mode: the child runs under a persistent
/// probabilistic fault mix (so it cycles healthy → degraded → resync), and
/// SIGKILL lands at a seeded depth — frequently mid-resync, with a replay
/// backlog in flight. Recovery must honor every printed durability claim
/// and stay monotone across cycles.
#[test]
fn kill9_during_degraded_resync_loses_no_durable_claim() {
    let dir = scratch_dir("kill9");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spec = "wal.append.write=p0.25:enospc,wal.flush.fsync=p0.25:eio";
    let mut last_recovered = 0u64;
    for seed in SEEDS {
        let kill_after = 3 + seed % 9;
        let scenario = CrashScenario::new("child_degraded_increments", &dir, "DUR ", kill_after)
            .with_env(FAILPOINTS_ENV, spec)
            .with_env("MC_CHAOS_SEED", seed.to_string());
        let report = crash_harness::run(&scenario).expect("harness run");
        assert!(report.killed, "seed {seed}: child must die by SIGKILL");
        let claimed = parse_max(&report.lines, "DUR ");

        // Recover with fault injection off; the parent must not inherit
        // the child's env-armed plan.
        let quiet = DurableOptions {
            failpoints: Some(Arc::new(Failpoints::new(0))),
            ..DurableOptions::default()
        };
        let (counter, recovery) =
            DurableCounter::<Counter>::open_with(&dir, quiet).expect("parent recover");
        assert!(
            recovery.value >= claimed,
            "seed {seed}: durable claim lost across SIGKILL: recovered {} < claimed {claimed}",
            recovery.value
        );
        assert!(
            recovery.value >= last_recovered,
            "seed {seed}: recovery went backwards: {} < {last_recovered}",
            recovery.value
        );
        last_recovered = recovery.value;
        drop(counter);
    }
    assert!(last_recovered > 0, "kill-9 cycles made no progress");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression: a transient append fault that tears a frame mid-write (a
/// `write_all` stopped short by ENOSPC) must not corrupt the log when the
/// retry succeeds. Before the pre-retry rewind, the retried batch landed
/// *after* the torn bytes, recovery stopped at the corrupt frame, and every
/// record acked durable by the successful retry was lost on reopen.
#[test]
fn partial_append_fault_retried_without_torn_frame_loss() {
    let dir = scratch_dir("partial-retry");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let fp = Arc::new(Failpoints::new(13));
    let options = DurableOptions {
        mode: DurabilityMode::Strict,
        retry: RetryPolicy::default(),
        // Propagate: any durability claim below must come from the retry
        // path alone, not from degraded-mode memory acks.
        poison_policy: PoisonPolicy::Propagate,
        failpoints: Some(Arc::clone(&fp)),
        ..DurableOptions::default()
    };
    let (counter, _) = DurableCounter::<Counter>::open_with(&dir, options).expect("open");

    counter.increment(1);
    assert_eq!(counter.durable_value(), 1);
    // The next append tears mid-frame, then the disarmed site lets the
    // retry through; strict mode acks only after the retry fsyncs.
    fp.arm(
        SITE_WAL_APPEND,
        FailConfig::once_at(1, std::io::ErrorKind::StorageFull).partial(),
    );
    counter.increment(1);
    assert_eq!(counter.durable_value(), 2);
    assert_eq!(fp.injected(SITE_WAL_APPEND), 1, "the fault must have fired");
    assert!(
        counter.wal_stats().retries > 0,
        "the retry path must absorb it"
    );
    assert!(
        matches!(counter.health(), HealthStatus::Healthy),
        "a retried transient fault must not degrade or poison"
    );
    drop(counter);

    let quiet = DurableOptions {
        failpoints: Some(Arc::new(Failpoints::new(0))),
        ..DurableOptions::default()
    };
    let (reopened, recovery) = DurableCounter::<Counter>::open_with(&dir, quiet).expect("reopen");
    assert_eq!(
        recovery.value, 2,
        "value acked durable through the retried append was lost"
    );
    assert_eq!(
        recovery.tail_bytes_discarded, 0,
        "the pre-retry rewind must leave no torn bytes in the log"
    );
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Supervisor escalation: a counter degraded past
/// [`SupervisorConfig::degrade_deadline`] is force-poisoned by the watch
/// thread — the availability trade is bounded, a disk that never returns
/// becomes a propagated failure.
#[test]
fn supervisor_force_poisons_counter_degraded_past_deadline() {
    let dir = scratch_dir("sup-deadline");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let fp = Arc::new(Failpoints::new(0));
    let sup = Supervisor::with_config(SupervisorConfig {
        interval: Duration::from_millis(10),
        poison_stuck: false,
        degrade_deadline: Some(Duration::from_millis(40)),
    });
    let (counter, _) =
        DurableCounter::<Counter>::open_supervised(&dir, torture_options(&fp), &sup, "outage")
            .expect("open");

    // A disk that never comes back: every fsync and every reopen fails.
    fp.arm(
        SITE_WAL_FSYNC,
        FailConfig::always(std::io::ErrorKind::Other),
    );
    fp.arm(SITE_WAL_OPEN, FailConfig::always(std::io::ErrorKind::Other));
    counter.increment(1);
    wait_for("degraded entry", Duration::from_secs(20), || {
        matches!(counter.health(), HealthStatus::Degraded { .. })
    });

    sup.start();
    wait_for(
        "deadline force-poison by watch thread",
        Duration::from_secs(20),
        || matches!(counter.health(), HealthStatus::Poisoned),
    );
    let info = counter.poison_info().expect("force-poisoned");
    assert!(
        info.message().contains("degraded"),
        "cause should cite degradation: {info}"
    );
    // The poison propagates like any other: waiters fail with the cause.
    assert!(counter.wait(2).is_err());
    // The aggregate view agrees.
    let report = sup.diagnose();
    assert!(report.counters.iter().any(|c| c.poisoned.is_some()));
    sup.stop();
    drop(counter);
    std::fs::remove_dir_all(&dir).unwrap();
}
