//! Concurrent register/unregister/diagnose churn against a live supervisor.
//!
//! The supervisor's registry is shared mutable state hit from arbitrary
//! threads while its watch thread ticks in the background. This stress
//! battery drives all three surfaces at once and asserts the two properties
//! the locking must provide: the run terminates (no deadlock between the
//! registry lock, diagnose's upgrade-under-lock pass, and the watch
//! thread's tick), and no registration is lost or double-removed.

use mc_counter::{Counter, MonotonicCounter, StallVerdict, Supervisor, SupervisorConfig};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

#[test]
fn concurrent_register_unregister_diagnose_churn() {
    const WRITERS: usize = 4;
    const ROUNDS: usize = 200;

    let sup = Supervisor::with_config(SupervisorConfig {
        // Tick fast so the watch thread interleaves with the churn.
        interval: Duration::from_millis(1),
        poison_stuck: false,
        degrade_deadline: None,
    });
    sup.start();

    let stop = Arc::new(AtomicBool::new(false));
    let registered = Arc::new(AtomicUsize::new(0));
    let unregistered = Arc::new(AtomicUsize::new(0));

    thread::scope(|s| {
        // Churn writers: each registers its own namespace of counters, does
        // a little work on them, then unregisters — over and over.
        for w in 0..WRITERS {
            let sup = sup.clone();
            let registered = Arc::clone(&registered);
            let unregistered = Arc::clone(&unregistered);
            s.spawn(move || {
                for round in 0..ROUNDS {
                    let name = format!("w{w}-r{round}");
                    let counter = Arc::new(Counter::default());
                    sup.register(name.clone(), &counter);
                    registered.fetch_add(1, Relaxed);
                    counter.increment(1 + (round as u64 % 3));
                    // Exercise the restart-mark path under churn too.
                    if round % 7 == 0 {
                        sup.note_restarting(name.clone(), 1, Duration::from_millis(5));
                    }
                    if sup.unregister(&name) {
                        unregistered.fetch_add(1, Relaxed);
                    }
                }
            });
        }
        // Diagnose readers: hammer the full-registry snapshot (which
        // upgrades every weak entry under the lock) while entries come and
        // go, asserting the snapshot is always internally consistent.
        for _ in 0..2 {
            let sup = sup.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Relaxed) {
                    let report = sup.diagnose();
                    for c in &report.counters {
                        assert!(
                            !c.name.is_empty(),
                            "diagnose must never surface a torn entry"
                        );
                        // Churn counters are never blocked on, so the only
                        // legal verdicts are Idle and (for the round % 7
                        // marks) Restarting.
                        assert!(
                            matches!(
                                c.verdict,
                                StallVerdict::Idle | StallVerdict::Restarting { .. }
                            ),
                            "unexpected verdict for '{}': {:?}",
                            c.name,
                            c.verdict
                        );
                    }
                }
            });
        }
        // An obligation taker racing the same names the writers cycle
        // through: it must either get an obligation (entry was live) or
        // None (already unregistered) — never panic or deadlock.
        {
            let sup = sup.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Relaxed) {
                    let name = format!("w{}-r{}", i % WRITERS, (i * 13) % ROUNDS);
                    if let Some(ob) = sup.restartable_obligation(&name, 1) {
                        ob.rollback();
                    }
                    i = i.wrapping_add(1);
                }
            });
        }
        // Scoped: the writer threads finish on their own; then release the
        // readers. (A panicking writer would hang the readers forever, so
        // give the whole churn a watchdog.)
        let watchdog = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                for _ in 0..600 {
                    if stop.load(Relaxed) {
                        return;
                    }
                    thread::sleep(Duration::from_millis(100));
                }
                eprintln!("supervisor churn watchdog fired: likely deadlock");
                std::process::exit(3);
            })
        };
        // Writers are the first WRITERS spawned threads; scope joins
        // everything, so just flip stop once the registry settles.
        while registered.load(Relaxed) < WRITERS * ROUNDS {
            thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Relaxed);
        drop(watchdog);
    });

    // No lost registrations: every register was observed and every entry
    // the writers created was removed by exactly its own unregister.
    assert_eq!(registered.load(Relaxed), WRITERS * ROUNDS);
    assert_eq!(
        unregistered.load(Relaxed),
        WRITERS * ROUNDS,
        "every registered entry must be found again by its unregister"
    );
    // The registry drained: nothing the churn created remains.
    assert!(
        sup.diagnose().counters.is_empty(),
        "registry must be empty after symmetric register/unregister churn"
    );
}

#[test]
fn watch_thread_keeps_ticking_through_churn() {
    // A register/unregister storm must not wedge the watch thread: after
    // the storm, a genuine stall is still detected.
    let sup = Supervisor::with_config(SupervisorConfig {
        interval: Duration::from_millis(5),
        poison_stuck: false,
        degrade_deadline: None,
    });
    sup.start();

    thread::scope(|s| {
        for w in 0..4 {
            let sup = sup.clone();
            s.spawn(move || {
                for round in 0..100 {
                    let name = format!("storm-{w}-{round}");
                    let c = Arc::new(Counter::default());
                    sup.register(name.clone(), &c);
                    sup.unregister(&name);
                }
            });
        }
    });

    // Post-storm: an unreachable wait must still produce a stall report.
    let stalled = Arc::new(Counter::default());
    sup.register("stalled", &stalled);
    let s2 = Arc::clone(&stalled);
    let waiter = thread::spawn(move || s2.wait(10));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(report) = sup.last_report() {
            let c = report
                .counters
                .iter()
                .find(|c| c.name == "stalled")
                .expect("stalled counter in report");
            assert_eq!(c.value, 0);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watch thread stopped ticking after churn"
        );
        thread::sleep(Duration::from_millis(5));
    }
    stalled.increment(10);
    waiter.join().unwrap().unwrap();
}
