//! Conformance battery: every `MonotonicCounter` implementation must pass
//! the identical suite of semantic tests. A macro instantiates the battery
//! per implementation so a failure names the offender.

use mc_counter::{
    AtomicCounter, BTreeCounter, Counter, CounterDiagnostics, MonitorCounter, MonotonicCounter,
    NaiveCounter, ParkingCounter, Resettable, SpinCounter, TracingCounter,
};
use std::sync::Arc;
use std::time::Duration;

const SHORT: Duration = Duration::from_millis(40);

/// The full surface a conforming implementation must provide: the
/// synchronization core, the diagnostics used by the battery's assertions,
/// phase reuse, and uniform construction.
trait Conformant: MonotonicCounter + CounterDiagnostics + Resettable + Default {}
impl<C: MonotonicCounter + CounterDiagnostics + Resettable + Default> Conformant for C {}

fn starts_at_zero<C: Conformant>() {
    let c = C::default();
    assert_eq!(c.debug_value(), 0);
    c.check(0); // never suspends
}

fn increment_accumulates<C: Conformant>() {
    let c = C::default();
    c.increment(2);
    c.increment(0);
    c.increment(5);
    assert_eq!(c.debug_value(), 7);
}

fn check_blocks_until_level<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    let c2 = Arc::clone(&c);
    let h = std::thread::spawn(move || c2.check(3));
    c.increment(2);
    std::thread::sleep(SHORT);
    assert!(!h.is_finished(), "woke below level");
    c.increment(1);
    h.join().unwrap();
}

fn one_increment_many_levels<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    let mut handles = Vec::new();
    for level in [1u64, 2, 3, 4] {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || c.check(level)));
    }
    while c.stats().live_waiters < 4 {
        std::thread::yield_now();
    }
    c.increment(4);
    for h in handles {
        h.join().unwrap();
    }
}

fn timeout_err_then_success<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    assert!(c.check_timeout(1, SHORT).is_err());
    let c2 = Arc::clone(&c);
    let h = std::thread::spawn(move || c2.check_timeout(1, Duration::from_secs(10)));
    while c.stats().live_waiters == 0 {
        std::thread::yield_now();
    }
    c.increment(1);
    assert!(h.join().unwrap().is_ok());
}

fn try_increment_overflow<C: Conformant>() {
    let c = C::default();
    c.increment(u64::MAX);
    let err = c.try_increment(1).unwrap_err();
    assert_eq!(err.value, u64::MAX);
    assert_eq!(c.debug_value(), u64::MAX);
}

fn advance_to_is_monotonic_max<C: Conformant>() {
    let c = C::default();
    c.advance_to(5);
    assert_eq!(c.debug_value(), 5);
    c.advance_to(3); // lower: no-op
    assert_eq!(c.debug_value(), 5);
    c.advance_to(5); // equal: no-op
    assert_eq!(c.debug_value(), 5);
    c.advance_to(9);
    assert_eq!(c.debug_value(), 9);
    c.check(9);
}

fn advance_to_wakes_waiters<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    let mut handles = Vec::new();
    for level in [2u64, 7] {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || c.check(level)));
    }
    while c.stats().live_waiters < 2 {
        std::thread::yield_now();
    }
    c.advance_to(7);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.debug_value(), 7);
}

fn concurrent_advance_to_takes_max<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    std::thread::scope(|s| {
        for target in [3u64, 9, 5, 9, 1] {
            let c = Arc::clone(&c);
            s.spawn(move || c.advance_to(target));
        }
    });
    assert_eq!(
        c.debug_value(),
        9,
        "concurrent advances must resolve to the max"
    );
}

fn reset_restores_zero<C: Conformant>() {
    let mut c = C::default();
    c.increment(4);
    c.reset();
    assert_eq!(c.debug_value(), 0);
    c.increment(1);
    c.check(1);
}

fn same_level_waiters_all_wake<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    let mut handles = Vec::new();
    for _ in 0..6 {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || c.check(2)));
    }
    while c.stats().live_waiters < 6 {
        std::thread::yield_now();
    }
    c.increment(2);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.stats().live_waiters, 0);
}

fn impl_name_is_stable<C: Conformant>() {
    let c = C::default();
    assert!(!c.impl_name().is_empty());
    assert_eq!(c.impl_name(), C::default().impl_name());
}

macro_rules! conformance {
    ($module:ident, $ty:ty) => {
        mod $module {
            use super::*;

            #[test]
            fn starts_at_zero() {
                super::starts_at_zero::<$ty>();
            }
            #[test]
            fn increment_accumulates() {
                super::increment_accumulates::<$ty>();
            }
            #[test]
            fn check_blocks_until_level() {
                super::check_blocks_until_level::<$ty>();
            }
            #[test]
            fn one_increment_many_levels() {
                super::one_increment_many_levels::<$ty>();
            }
            #[test]
            fn timeout_err_then_success() {
                super::timeout_err_then_success::<$ty>();
            }
            #[test]
            fn try_increment_overflow() {
                super::try_increment_overflow::<$ty>();
            }
            #[test]
            fn advance_to_is_monotonic_max() {
                super::advance_to_is_monotonic_max::<$ty>();
            }
            #[test]
            fn advance_to_wakes_waiters() {
                super::advance_to_wakes_waiters::<$ty>();
            }
            #[test]
            fn concurrent_advance_to_takes_max() {
                super::concurrent_advance_to_takes_max::<$ty>();
            }
            #[test]
            fn reset_restores_zero() {
                super::reset_restores_zero::<$ty>();
            }
            #[test]
            fn same_level_waiters_all_wake() {
                super::same_level_waiters_all_wake::<$ty>();
            }
            #[test]
            fn impl_name_is_stable() {
                super::impl_name_is_stable::<$ty>();
            }
            // `with_value` is an inherent constructor (uniform across all
            // implementations), so it is exercised here via the macro rather
            // than through a trait bound.
            #[test]
            fn with_value_starts_at_value() {
                let c = <$ty>::with_value(17);
                assert_eq!(c.debug_value(), 17);
                c.check(17); // already satisfied
                c.increment(3);
                assert_eq!(c.debug_value(), 20);
            }
            #[test]
            fn new_equals_default() {
                assert_eq!(<$ty>::new().debug_value(), <$ty>::default().debug_value());
            }
        }
    };
}

conformance!(waitlist, Counter);
conformance!(btree, BTreeCounter);
conformance!(naive, NaiveCounter);
conformance!(parking, ParkingCounter);
conformance!(atomic, AtomicCounter);
conformance!(traced, TracingCounter);
conformance!(spin, SpinCounter);
conformance!(monitor, MonitorCounter);
