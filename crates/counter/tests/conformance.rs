//! Conformance battery: every `MonotonicCounter` implementation must pass
//! the identical suite of semantic tests. A macro instantiates the battery
//! per implementation so a failure names the offender.

use mc_counter::{
    AtomicCounter, BTreeCounter, CheckError, Counter, CounterDiagnostics, FailureInfo,
    MeteredCounter, MonitorCounter, MonotonicCounter, NaiveCounter, ParkingCounter, Resettable,
    ShardedCounter, SpinCounter, TracingCounter,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHORT: Duration = Duration::from_millis(40);

/// The full surface a conforming implementation must provide: the
/// synchronization core, the diagnostics used by the battery's assertions,
/// phase reuse, and uniform construction.
trait Conformant: MonotonicCounter + CounterDiagnostics + Resettable + Default {}
impl<C: MonotonicCounter + CounterDiagnostics + Resettable + Default> Conformant for C {}

fn starts_at_zero<C: Conformant>() {
    let c = C::default();
    assert_eq!(c.debug_value(), 0);
    c.check(0); // never suspends
}

fn increment_accumulates<C: Conformant>() {
    let c = C::default();
    c.increment(2);
    c.increment(0);
    c.increment(5);
    assert_eq!(c.debug_value(), 7);
}

fn check_blocks_until_level<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    let c2 = Arc::clone(&c);
    let h = std::thread::spawn(move || c2.check(3));
    c.increment(2);
    std::thread::sleep(SHORT);
    assert!(!h.is_finished(), "woke below level");
    c.increment(1);
    h.join().unwrap();
}

fn one_increment_many_levels<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    let mut handles = Vec::new();
    for level in [1u64, 2, 3, 4] {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || c.check(level)));
    }
    while c.stats().live_waiters < 4 {
        std::thread::yield_now();
    }
    c.increment(4);
    for h in handles {
        h.join().unwrap();
    }
}

fn timeout_err_then_success<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    assert!(c.check_timeout(1, SHORT).is_err());
    let c2 = Arc::clone(&c);
    let h = std::thread::spawn(move || c2.check_timeout(1, Duration::from_secs(10)));
    while c.stats().live_waiters == 0 {
        std::thread::yield_now();
    }
    c.increment(1);
    assert!(h.join().unwrap().is_ok());
}

fn try_increment_overflow<C: Conformant>() {
    let c = C::default();
    c.increment(u64::MAX);
    let err = c.try_increment(1).unwrap_err();
    assert_eq!(err.value, u64::MAX);
    assert_eq!(c.debug_value(), u64::MAX);
}

fn advance_to_is_monotonic_max<C: Conformant>() {
    let c = C::default();
    c.advance_to(5);
    assert_eq!(c.debug_value(), 5);
    c.advance_to(3); // lower: no-op
    assert_eq!(c.debug_value(), 5);
    c.advance_to(5); // equal: no-op
    assert_eq!(c.debug_value(), 5);
    c.advance_to(9);
    assert_eq!(c.debug_value(), 9);
    c.check(9);
}

fn advance_to_wakes_waiters<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    let mut handles = Vec::new();
    for level in [2u64, 7] {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || c.check(level)));
    }
    while c.stats().live_waiters < 2 {
        std::thread::yield_now();
    }
    c.advance_to(7);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.debug_value(), 7);
}

fn concurrent_advance_to_takes_max<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    std::thread::scope(|s| {
        for target in [3u64, 9, 5, 9, 1] {
            let c = Arc::clone(&c);
            s.spawn(move || c.advance_to(target));
        }
    });
    assert_eq!(
        c.debug_value(),
        9,
        "concurrent advances must resolve to the max"
    );
}

fn reset_restores_zero<C: Conformant>() {
    let mut c = C::default();
    c.increment(4);
    c.reset();
    assert_eq!(c.debug_value(), 0);
    c.increment(1);
    c.check(1);
}

fn same_level_waiters_all_wake<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    let mut handles = Vec::new();
    for _ in 0..6 {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || c.check(2)));
    }
    while c.stats().live_waiters < 6 {
        std::thread::yield_now();
    }
    c.increment(2);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.stats().live_waiters, 0);
}

fn impl_name_is_stable<C: Conformant>() {
    let c = C::default();
    assert!(!c.impl_name().is_empty());
    assert_eq!(c.impl_name(), C::default().impl_name());
}

fn poison_wakes_blocked_waiters<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    let mut handles = Vec::new();
    for level in [5u64, 5, 9] {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || c.wait(level)));
    }
    while c.stats().live_waiters < 3 {
        std::thread::yield_now();
    }
    c.poison(FailureInfo::new("producer failed"));
    for h in handles {
        match h.join().unwrap() {
            Err(CheckError::Poisoned(info)) => {
                assert_eq!(info.message(), "producer failed");
            }
            other => panic!("expected Poisoned, got {other:?}"),
        }
    }
    // Future blocked waits fail immediately with the same cause.
    assert!(matches!(c.wait(100), Err(CheckError::Poisoned(_))));
    assert_eq!(c.poison_info().unwrap().message(), "producer failed");
}

fn check_panics_with_the_poison_cause<C: Conformant + 'static>() {
    let c = C::default();
    c.poison(FailureInfo::new("root cause here"));
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.check(1)))
        .expect_err("check on a poisoned counter must panic");
    let msg = payload
        .downcast_ref::<String>()
        .expect("poison panic carries a String message");
    assert!(
        msg.contains("monotonic counter poisoned") && msg.contains("root cause here"),
        "got: {msg}"
    );
}

fn satisfied_levels_survive_poison<C: Conformant>() {
    let c = C::default();
    c.increment(3);
    c.poison(FailureInfo::new("late failure"));
    assert!(c.wait(3).is_ok(), "satisfied waits owe the failure nothing");
    c.check(2); // must not panic
    assert!(c.check_timeout(3, SHORT).is_ok());
    // Increments still apply after poison, satisfying new levels.
    c.increment(2);
    assert!(c.wait(5).is_ok());
    assert_eq!(c.debug_value(), 5);
}

fn first_poison_wins<C: Conformant>() {
    let c = C::default();
    c.poison(FailureInfo::new("first"));
    c.poison(FailureInfo::new("second"));
    assert_eq!(c.poison_info().unwrap().message(), "first");
}

fn check_timeout_waits_at_least_the_timeout<C: Conformant>() {
    let c = C::default();
    let t0 = Instant::now();
    let err = c.check_timeout(1, SHORT).unwrap_err();
    let elapsed = t0.elapsed();
    assert_eq!(err.level, 1);
    assert!(
        elapsed >= SHORT,
        "returned after {elapsed:?}, before the {SHORT:?} timeout"
    );
    // Liveness: a loose upper bound that survives CI scheduling noise but
    // catches a wait that effectively never wakes.
    assert!(elapsed < SHORT * 100, "timed wait overshot: {elapsed:?}");
}

fn timed_wait_with_poison_bit_set_stays_live<C: Conformant>() {
    let c = C::default();
    c.increment(2);
    c.poison(FailureInfo::new("poisoned early"));
    // Satisfied level: must succeed promptly even though the poison flag is
    // set (the satisfied fast tier ignores it).
    let t0 = Instant::now();
    assert!(c.wait_timeout(2, Duration::from_secs(10)).is_ok());
    // Unsatisfied level: must report Poisoned (not Timeout), promptly.
    match c.wait_timeout(3, Duration::from_secs(10)) {
        Err(CheckError::Poisoned(info)) => assert_eq!(info.message(), "poisoned early"),
        other => panic!("expected Poisoned, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "poison-aware timed waits must not consume their timeouts"
    );
}

/// Deadline-drift pin: a timed wait hit by a storm of sub-level increments
/// (each one a spurious-style wakeup for the waiter — single-queue
/// implementations broadcast on every increment) must still time out close
/// to its deadline. An implementation that re-passes the *full* duration to
/// its condvar on each wakeup instead of recomputing `deadline - now` from
/// the saved `Instant` drifts by one full timeout per wakeup and blows far
/// past the upper bound.
fn timed_wait_does_not_drift_under_wakeup_storm<C: Conformant + 'static>() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let c = Arc::new(C::default());
    let timeout = Duration::from_millis(80);
    // The storm outlives the correct deadline by several multiples, so a
    // drifting implementation (deadline pushed back on every wakeup) cannot
    // time out before the bound below.
    let storm_for = timeout * 5;
    let stop = Arc::new(AtomicBool::new(false));
    let stormer = {
        let c = Arc::clone(&c);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let t0 = Instant::now();
            while t0.elapsed() < storm_for && !stop.load(Ordering::Relaxed) {
                c.increment(1); // never reaches the waited level
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };
    let t0 = Instant::now();
    let err = c.wait_timeout(u64::MAX / 2, timeout).unwrap_err();
    let elapsed = t0.elapsed();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    stormer.join().unwrap();
    assert!(matches!(err, CheckError::Timeout(_)));
    assert!(
        elapsed >= timeout,
        "timed out early under storm: {elapsed:?}"
    );
    assert!(
        elapsed < storm_for - timeout,
        "deadline drifted under wakeup storm: waited {elapsed:?} for a {timeout:?} timeout"
    );
}

fn poison_reclaims_waiter_nodes<C: Conformant + 'static>() {
    let c = Arc::new(C::default());
    let mut handles = Vec::new();
    for level in [4u64, 4, 6, 8] {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || c.wait(level)));
    }
    while c.stats().live_waiters < 4 {
        std::thread::yield_now();
    }
    c.poison(FailureInfo::new("sweep"));
    for h in handles {
        assert!(h.join().unwrap().is_err());
    }
    let stats = c.stats();
    assert_eq!(stats.live_waiters, 0, "no waiter survives the sweep");
    assert_eq!(
        stats.nodes_created, stats.nodes_freed,
        "poisoning must not leak waiter nodes"
    );
}

macro_rules! conformance {
    ($module:ident, $ty:ty) => {
        mod $module {
            use super::*;

            #[test]
            fn starts_at_zero() {
                super::starts_at_zero::<$ty>();
            }
            #[test]
            fn increment_accumulates() {
                super::increment_accumulates::<$ty>();
            }
            #[test]
            fn check_blocks_until_level() {
                super::check_blocks_until_level::<$ty>();
            }
            #[test]
            fn one_increment_many_levels() {
                super::one_increment_many_levels::<$ty>();
            }
            #[test]
            fn timeout_err_then_success() {
                super::timeout_err_then_success::<$ty>();
            }
            #[test]
            fn try_increment_overflow() {
                super::try_increment_overflow::<$ty>();
            }
            #[test]
            fn advance_to_is_monotonic_max() {
                super::advance_to_is_monotonic_max::<$ty>();
            }
            #[test]
            fn advance_to_wakes_waiters() {
                super::advance_to_wakes_waiters::<$ty>();
            }
            #[test]
            fn concurrent_advance_to_takes_max() {
                super::concurrent_advance_to_takes_max::<$ty>();
            }
            #[test]
            fn reset_restores_zero() {
                super::reset_restores_zero::<$ty>();
            }
            #[test]
            fn same_level_waiters_all_wake() {
                super::same_level_waiters_all_wake::<$ty>();
            }
            #[test]
            fn impl_name_is_stable() {
                super::impl_name_is_stable::<$ty>();
            }
            #[test]
            fn poison_wakes_blocked_waiters() {
                super::poison_wakes_blocked_waiters::<$ty>();
            }
            #[test]
            fn check_panics_with_the_poison_cause() {
                super::check_panics_with_the_poison_cause::<$ty>();
            }
            #[test]
            fn satisfied_levels_survive_poison() {
                super::satisfied_levels_survive_poison::<$ty>();
            }
            #[test]
            fn first_poison_wins() {
                super::first_poison_wins::<$ty>();
            }
            #[test]
            fn check_timeout_waits_at_least_the_timeout() {
                super::check_timeout_waits_at_least_the_timeout::<$ty>();
            }
            #[test]
            fn timed_wait_with_poison_bit_set_stays_live() {
                super::timed_wait_with_poison_bit_set_stays_live::<$ty>();
            }
            #[test]
            fn timed_wait_does_not_drift_under_wakeup_storm() {
                super::timed_wait_does_not_drift_under_wakeup_storm::<$ty>();
            }
            #[test]
            fn poison_reclaims_waiter_nodes() {
                super::poison_reclaims_waiter_nodes::<$ty>();
            }
            #[test]
            fn resume_from_restores_value() {
                use mc_counter::ResumableCounter;
                let c = <$ty as ResumableCounter>::resume_from(23);
                assert_eq!(c.debug_value(), 23);
                c.check(23); // recovered value satisfies waiters immediately
                assert!(c.poison_info().is_none());
            }
            #[test]
            fn resumable_surface_conforms() {
                mc_counter::testkit::exercise_resumable::<$ty>();
            }
            #[test]
            fn restart_cycle_conforms() {
                mc_counter::testkit::exercise_restart::<$ty>();
            }
            #[test]
            fn builder_initial_starts_at_value() {
                let c = <$ty>::builder().initial(17).build();
                assert_eq!(c.debug_value(), 17);
                c.check(17); // already satisfied
                c.increment(3);
                assert_eq!(c.debug_value(), 20);
            }
            // The deprecated shims must keep forwarding to the builder with
            // identical behavior for as long as they exist.
            #[test]
            #[allow(deprecated)]
            fn deprecated_constructors_match_builder() {
                assert_eq!(<$ty>::new().debug_value(), <$ty>::default().debug_value());
                let legacy = <$ty>::with_value(17);
                let built = <$ty>::builder().initial(17).build();
                assert_eq!(legacy.debug_value(), built.debug_value());
            }
            // Near `u64::MAX` the packed-word hint saturates, so
            // implementations fall back to their slow paths; timeouts must
            // remain precise and satisfied checks live in that regime too.
            #[test]
            fn timeout_liveness_near_saturation() {
                use std::time::{Duration, Instant};
                const SHORT: Duration = Duration::from_millis(30);
                let c = <$ty>::builder().initial(u64::MAX - 5).build();
                // Satisfied: returns promptly regardless of the hint regime.
                assert!(c
                    .check_timeout(u64::MAX - 5, Duration::from_secs(10))
                    .is_ok());
                // Unsatisfied: times out, and waits at least the timeout.
                let t0 = Instant::now();
                assert!(c.check_timeout(u64::MAX - 1, SHORT).is_err());
                assert!(t0.elapsed() >= SHORT, "timed out early near saturation");
                c.increment(4);
                assert!(c
                    .check_timeout(u64::MAX - 1, Duration::from_secs(10))
                    .is_ok());
            }
        }
    };
}

conformance!(waitlist, Counter);
conformance!(btree, BTreeCounter);
conformance!(naive, NaiveCounter);
conformance!(parking, ParkingCounter);
conformance!(atomic, AtomicCounter);
conformance!(traced, TracingCounter);
conformance!(spin, SpinCounter);
conformance!(monitor, MonitorCounter);
conformance!(sharded, ShardedCounter);
conformance!(metered, MeteredCounter<Counter>);

/// The metered wrapper must forward the complete `MonotonicCounter` surface
/// even with instrumentation ENABLED — a recording path that forgot to call
/// through (or called a different method) would silently change semantics
/// exactly when observability is switched on.
#[test]
fn metered_forwards_everything_with_metrics_enabled() {
    use mc_counter::testkit::{self, RecordingCounter};
    use mc_metrics::Registry;
    let registry = Arc::new(Registry::new());
    let sink = mc_counter::MetricsSink::new(Arc::clone(&registry), "fwd");
    let c = MeteredCounter::wrap(RecordingCounter::default(), Some(&sink));
    testkit::exercise_all(&c);
    testkit::assert_all_forwarded(c.inner());
    // And the instruments really were live during the exercise: waits are
    // counted inline, hot-path counts arrive via publish_stats.
    assert!(registry.event("fwd.waits").get() > 0);
    c.publish_stats();
    assert!(registry.event("fwd.increments").get() > 0);
    assert!(registry.event("fwd.checks").get() > 0);
}
