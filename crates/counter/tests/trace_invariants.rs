//! Structure invariants of the Section 7 data structure, checked over the
//! full transition log of a `TracingCounter` under randomized concurrent
//! workloads.
//!
//! Invariants (the paper's, plus bookkeeping):
//!
//! 1. Node levels are strictly ascending and unique (one queue per level).
//! 2. An **unset** node's level is strictly greater than the value (the
//!    waiting list "never contains levels less than or equal to the counter
//!    value").
//! 3. A **set** node's level is at most the value (it is merely draining).
//! 4. Every node has at least one registered waiter.
//! 5. The value is nondecreasing across the log (monotonicity).
//! 6. The final state after all threads join is an empty structure.

use mc_counter::{CounterDiagnostics, CounterSnapshot, MonotonicCounter, TracingCounter};
use proptest::prelude::*;
use std::sync::Arc;

fn assert_snapshot_invariants(snap: &CounterSnapshot) {
    for pair in snap.nodes.windows(2) {
        assert!(
            pair[0].level < pair[1].level,
            "levels not strictly ascending: {snap}"
        );
    }
    for node in &snap.nodes {
        if node.set {
            assert!(node.level <= snap.value, "set node above value: {snap}");
        } else {
            assert!(node.level > snap.value, "unset node at/below value: {snap}");
        }
        assert!(node.count >= 1, "empty node retained: {snap}");
    }
}

fn run_workload(levels: Vec<u64>, increments: Vec<u64>) {
    let c = Arc::new(TracingCounter::default());
    let total: u64 = increments.iter().sum();
    // Only spawn waiters that are guaranteed to be released.
    let levels: Vec<u64> = levels.into_iter().map(|l| l % (total + 1)).collect();
    std::thread::scope(|s| {
        for level in levels {
            let c = Arc::clone(&c);
            s.spawn(move || c.check(level));
        }
        let c = Arc::clone(&c);
        s.spawn(move || {
            for amount in increments {
                c.increment(amount);
            }
        });
    });
    let log = c.log();
    assert!(!log.is_empty());
    let mut prev_value = 0;
    for snap in &log {
        assert_snapshot_invariants(snap);
        assert!(snap.value >= prev_value, "value decreased: {snap}");
        prev_value = snap.value;
    }
    let last = log.last().expect("log non-empty");
    assert!(
        last.nodes.is_empty(),
        "structure not drained at join: {last}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_under_random_workloads(
        levels in proptest::collection::vec(0u64..10_000, 0..10),
        increments in proptest::collection::vec(1u64..50, 1..12),
    ) {
        run_workload(levels, increments);
    }

    #[test]
    fn invariants_hold_with_advance_to(
        targets in proptest::collection::vec(1u64..100, 1..8),
        levels in proptest::collection::vec(0u64..100, 0..6),
    ) {
        let c = Arc::new(TracingCounter::default());
        let max = *targets.iter().max().unwrap();
        let levels: Vec<u64> = levels.into_iter().map(|l| l % (max + 1)).collect();
        std::thread::scope(|s| {
            for level in levels {
                let c = Arc::clone(&c);
                s.spawn(move || c.check(level));
            }
            for target in targets.clone() {
                let c = Arc::clone(&c);
                s.spawn(move || c.advance_to(target));
            }
        });
        for snap in c.log() {
            assert_snapshot_invariants(&snap);
        }
        prop_assert_eq!(c.debug_value(), max);
    }
}

#[test]
fn deterministic_single_thread_log() {
    // Without concurrency the log is fully deterministic; pin it exactly.
    let c = TracingCounter::default();
    c.increment(2);
    c.increment(3);
    let log = c.log();
    assert_eq!(log.len(), 3); // construction + 2 increments
    assert_eq!(log[0], CounterSnapshot::of(0, &[]));
    assert_eq!(log[1], CounterSnapshot::of(2, &[]));
    assert_eq!(log[2], CounterSnapshot::of(5, &[]));
}
