//! ShardedCounter-specific properties, beyond the shared conformance and
//! fast-path batteries: the striped cells must never lose or invent an
//! increment, publication must stay exact under races, and waiters must see
//! eager publication regardless of how the combiner is scheduled.

use mc_counter::{CounterDiagnostics, MonotonicCounter, ShardedCounter};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequential: whatever mix of increments and interleaved observations,
    /// published + pending always equals the arithmetic sum.
    #[test]
    fn observed_value_is_the_sum_of_increments(
        amounts in proptest::collection::vec(0u64..1_000, 1..200),
        shards in 1usize..16,
        capacity in 1usize..256,
    ) {
        let c = ShardedCounter::builder()
            .shards(shards)
            .capacity(capacity)
            .build();
        let mut sum = 0u64;
        for (i, &a) in amounts.iter().enumerate() {
            c.increment(a);
            sum += a;
            if i % 7 == 0 {
                // Observation must never run ahead of the sum, and checking
                // the logical value must self-serve pending deltas.
                c.check(sum);
                prop_assert_eq!(c.debug_value(), sum);
            }
        }
        c.check(sum);
        prop_assert_eq!(c.debug_value(), sum);
    }

    /// Concurrent writers: no increment is lost or double-published across
    /// cells, whatever the shard count and thread mix.
    #[test]
    fn no_lost_increments_across_writer_threads(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(1u64..50, 1..40), 2..5),
        shards in 1usize..8,
    ) {
        let c = Arc::new(ShardedCounter::builder().shards(shards).build());
        let total: u64 = per_thread.iter().flatten().sum();
        std::thread::scope(|s| {
            for amounts in per_thread {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for a in amounts {
                        c.increment(a);
                    }
                });
            }
        });
        c.check(total);
        prop_assert_eq!(c.debug_value(), total);
    }

    /// Writers race a waiter pinned at the exact final total: the waiter must
    /// always be woken (eager publication), never stranded on a lazy cell.
    #[test]
    fn waiter_at_the_exact_total_always_wakes(
        amounts in proptest::collection::vec(1u64..20, 1..60),
        shards in 1usize..8,
    ) {
        let c = Arc::new(ShardedCounter::builder().shards(shards).build());
        let total: u64 = amounts.iter().sum();
        std::thread::scope(|s| {
            let waiter = {
                let c = Arc::clone(&c);
                s.spawn(move || c.check_timeout(total, Duration::from_secs(5)))
            };
            let mid = amounts.len() / 2;
            let (front, back) = amounts.split_at(mid);
            for half in [front.to_vec(), back.to_vec()] {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for a in half {
                        c.increment(a);
                    }
                });
            }
            prop_assert_eq!(waiter.join().unwrap(), Ok(()));
        });
    }
}

/// Many writers, many waiters at staggered levels, one counter: every waiter
/// resumes and the final value is exact. This is the high-contention shape
/// the sharding exists for.
#[test]
fn staggered_waiters_drain_under_contended_writes() {
    let writers = 4u64;
    let per_writer = 500u64;
    let total = writers * per_writer;
    let c = Arc::new(ShardedCounter::builder().shards(4).build());
    std::thread::scope(|s| {
        let mut waiters = Vec::new();
        for i in 1..=8u64 {
            let c = Arc::clone(&c);
            let level = total * i / 8;
            waiters.push(s.spawn(move || c.check_timeout(level, Duration::from_secs(10))));
        }
        for _ in 0..writers {
            let c = Arc::clone(&c);
            s.spawn(move || {
                for _ in 0..per_writer {
                    c.increment(1);
                }
            });
        }
        for w in waiters {
            assert_eq!(w.join().unwrap(), Ok(()));
        }
    });
    assert_eq!(c.debug_value(), total);
    let s = c.stats();
    assert_eq!(s.live_waiters, 0, "stranded waiter: {s}");
}

/// The adaptive threshold must not leak across a waiter's lifetime: once the
/// waiter drains, throughput increments return to the lazy regime.
#[test]
fn threshold_relaxes_again_after_waiters_leave() {
    let c = Arc::new(ShardedCounter::builder().shards(1).capacity(1024).build());
    // Push the threshold up.
    for _ in 0..4096 {
        c.increment(1);
    }
    let relaxed = c.flush_threshold();
    assert!(relaxed > 8, "threshold never adapted up: {relaxed}");
    // A waiter snaps it back down.
    let c2 = Arc::clone(&c);
    let h = std::thread::spawn(move || c2.check_timeout(5000, Duration::from_secs(5)));
    while c.stats().live_waiters == 0 {
        std::thread::yield_now();
    }
    assert_eq!(c.flush_threshold(), 8);
    for _ in 0..1000 {
        c.increment(1);
    }
    assert_eq!(h.join().unwrap(), Ok(()));
    // And throughput traffic relaxes it again.
    for _ in 0..4096 {
        c.increment(1);
    }
    assert!(c.flush_threshold() > 8, "threshold stuck eager after drain");
}
