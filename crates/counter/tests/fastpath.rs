//! Fast-path protocol tests, run against every packed-word implementation.
//!
//! The properties under test are the ones the packed-word design must
//! guarantee (see the `fastpath` module docs in `mc-counter`):
//!
//! 1. **No lost wakeup at the boundary**: a `check(level)` racing an
//!    `increment` that satisfies exactly `level` always terminates.
//! 2. **The waiters bit never sticks**: after all waiters drain, increments
//!    return to the fast path (observable as `fast_increments` growing).
//! 3. **Waiter-free workloads never lock**: `slow_path_entries == 0`.
//! 4. **Stats are consistent across tiers**: fast hits are included in the
//!    operation totals, never double-counted.
//! 5. **Saturated regime stays exact**: above the 63-bit hint cap, values and
//!    checks keep exact `u64` semantics.

use mc_counter::{
    AtomicCounter, BTreeCounter, Counter, CounterDiagnostics, MonotonicCounter, ParkingCounter,
    ShardedCounter,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Mirrors `fastpath::FAST_CAP` (private): the packed hint saturates here.
const FAST_CAP: u64 = (1 << 63) - 1;

fn boundary_race<C: MonotonicCounter + Default + 'static>(amounts: Vec<u64>) {
    // One thread performs the increments; one checker waits for exactly the
    // final total — the boundary where a missed wakeup would deadlock. The
    // 5s timeout converts a protocol bug into a test failure, not a hang.
    let c = Arc::new(C::default());
    let total: u64 = amounts.iter().sum();
    std::thread::scope(|s| {
        let waiter = {
            let c = Arc::clone(&c);
            s.spawn(move || c.check_timeout(total, Duration::from_secs(5)))
        };
        let c2 = Arc::clone(&c);
        s.spawn(move || {
            for a in amounts {
                c2.increment(a);
            }
        });
        assert_eq!(
            waiter.join().unwrap(),
            Ok(()),
            "checker missed the wakeup at the exact boundary"
        );
    });
}

fn bit_never_sticks<C: MonotonicCounter + CounterDiagnostics + Default + 'static>() {
    let c = Arc::new(C::default());
    for round in 1..=10u64 {
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.check(round * 10));
        while c.stats().live_waiters == 0 {
            std::thread::yield_now();
        }
        c.increment(10);
        h.join().unwrap();
        // The waiter has drained; the next increment must be a fast one.
        let before = c.stats().fast_increments;
        c.advance_to(round * 10); // no-op, must not disturb anything
        c.increment(0);
        assert_eq!(
            c.stats().fast_increments,
            before + 1,
            "waiters bit stuck after round {round}"
        );
        // Re-align the value for the next round (the increment(0) added 0).
    }
}

fn waiter_free_is_lock_free<C: MonotonicCounter + CounterDiagnostics + Default>() {
    let c = C::default();
    for i in 0..1000u64 {
        c.increment(1);
        c.check(i / 2);
        if i % 100 == 0 {
            c.advance_to(i);
        }
    }
    let s = c.stats();
    assert_eq!(s.slow_path_entries, 0, "locked without any waiter: {s}");
    assert_eq!(s.fast_checks, s.checks);
    assert_eq!(s.fast_increments, s.increments);
}

fn stats_tiers_are_consistent<C: MonotonicCounter + CounterDiagnostics + Default + 'static>() {
    let c = Arc::new(C::default());
    // Mix fast ops with a genuine suspension.
    c.increment(1);
    c.check(1);
    let c2 = Arc::clone(&c);
    let h = std::thread::spawn(move || c2.check(5));
    while c.stats().live_waiters == 0 {
        std::thread::yield_now();
    }
    c.increment(4);
    h.join().unwrap();
    let s = c.stats();
    assert!(s.fast_checks <= s.immediate_checks, "{s}");
    assert!(s.immediate_checks <= s.checks, "{s}");
    assert!(s.fast_increments <= s.increments, "{s}");
    assert_eq!(s.checks, 2, "{s}");
    assert_eq!(s.suspensions, 1, "{s}");
    assert!(s.slow_path_entries >= 2, "waiter + sweeping increment: {s}");
}

fn saturated_regime_is_exact<C: MonotonicCounter + CounterDiagnostics + Default + 'static>(
    with_value: impl Fn(u64) -> C,
) {
    let c = with_value(FAST_CAP - 1);
    assert_eq!(c.debug_value(), FAST_CAP - 1);
    c.increment(2); // crosses the cap
    assert_eq!(c.debug_value(), FAST_CAP + 1);
    c.check(FAST_CAP + 1); // satisfied in the saturated regime
                           // A waiter above the current value still wakes exactly at its level.
    let c = Arc::new(with_value(u64::MAX - 3));
    let c2 = Arc::clone(&c);
    let h = std::thread::spawn(move || c2.check(u64::MAX));
    while c.stats().live_waiters == 0 {
        std::thread::yield_now();
    }
    c.increment(2);
    std::thread::sleep(Duration::from_millis(20));
    assert!(!h.is_finished(), "woke below u64::MAX");
    c.increment(1);
    h.join().unwrap();
    assert_eq!(c.debug_value(), u64::MAX);
    assert!(c.try_increment(1).is_err(), "overflow must still be exact");
}

macro_rules! fastpath_battery {
    ($module:ident, $ty:ty) => {
        mod $module {
            use super::*;

            #[test]
            fn bit_never_sticks() {
                super::bit_never_sticks::<$ty>();
            }
            #[test]
            fn waiter_free_is_lock_free() {
                super::waiter_free_is_lock_free::<$ty>();
            }
            #[test]
            fn stats_tiers_are_consistent() {
                super::stats_tiers_are_consistent::<$ty>();
            }
            #[test]
            fn saturated_regime_is_exact() {
                super::saturated_regime_is_exact(|v| <$ty>::builder().initial(v).build());
            }

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(32))]

                #[test]
                fn no_lost_wakeup_at_boundary(
                    amounts in proptest::collection::vec(0u64..100, 1..20),
                ) {
                    super::boundary_race::<$ty>(amounts);
                }
            }
        }
    };
}

fastpath_battery!(waitlist, Counter);
fastpath_battery!(btree, BTreeCounter);
fastpath_battery!(parking, ParkingCounter);
fastpath_battery!(atomic, AtomicCounter);
fastpath_battery!(sharded, ShardedCounter);

/// The ablation counter must do the same work entirely under the mutex.
#[test]
fn mutex_only_ablation_reports_zero_fast_hits() {
    let c = Counter::mutex_only();
    c.increment(3);
    c.check(2);
    let s = c.stats();
    assert_eq!(s.fast_increments, 0);
    assert_eq!(s.fast_checks, 0);
    assert_eq!(s.slow_path_entries, 2);
}
