//! [`CounterBuilder`]: the single construction path for every counter
//! implementation.
//!
//! Before the builder, each implementation grew its own ad-hoc constructors
//! (`new`, `with_value`, tracing and ablation variants), and adding a knob
//! meant touching every one of them. The builder centralizes construction:
//!
//! ```
//! use mc_counter::{Counter, ShardedCounter, MonotonicCounter};
//!
//! let c = Counter::builder().initial(10).build();
//! c.check(10);
//!
//! let s = ShardedCounter::builder()
//!     .shards(8)       // increment stripes (sharded counters only)
//!     .capacity(256)   // max unpublished backlog per stripe
//!     .build();
//! s.increment(1);
//! ```
//!
//! Every implementation accepts every knob; knobs that do not apply to an
//! implementation (e.g. `shards` on a mutex-only counter) are documented as
//! ignored rather than rejected, so generic code can configure a
//! `CounterBuilder<C>` without knowing `C`. The legacy `new`/`with_value`
//! constructors remain as deprecated shims forwarding here.

use crate::Value;
use mc_metrics::{Event, Histogram, Registry};
use std::marker::PhantomData;
use std::sync::Arc;

/// A destination for a counter's metrics: a shared [`Registry`] plus the
/// dot-separated name prefix this counter publishes under. Passed through
/// the builder ([`CounterBuilder::metrics`]); implementations that support
/// instrumentation (the [`MeteredCounter`](crate::MeteredCounter) wrapper,
/// [`ShardedCounter`](crate::ShardedCounter)'s combiner) attach to it at
/// construction, everything else ignores it. `None` — the default — costs
/// nothing: no handle is held and no record call is compiled into the path.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    registry: Arc<Registry>,
    prefix: String,
}

impl MetricsSink {
    /// A sink publishing under `prefix` (e.g. `"jobs"` → `jobs.increments`).
    pub fn new(registry: Arc<Registry>, prefix: impl Into<String>) -> Self {
        MetricsSink {
            registry,
            prefix: prefix.into(),
        }
    }

    /// The registry metrics are published to.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The name prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The event counter `<prefix>.<suffix>`, created on first use.
    pub fn event(&self, suffix: &str) -> Arc<Event> {
        self.registry.event(&format!("{}.{suffix}", self.prefix))
    }

    /// The histogram `<prefix>.<suffix>`, created on first use.
    pub fn histogram(&self, suffix: &str) -> Arc<Histogram> {
        self.registry
            .histogram(&format!("{}.{suffix}", self.prefix))
    }
}

/// What [`MonotonicCounter::poison`](crate::MonotonicCounter::poison) does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoisonPolicy {
    /// Record the failure and wake all blocked waiters with
    /// [`CheckError::Poisoned`](crate::CheckError::Poisoned) — the default,
    /// and the PR-2 failure-propagation semantics.
    #[default]
    Propagate,
    /// Ignore `poison` calls entirely: waits keep blocking until satisfied.
    /// For harnesses that inject failures elsewhere and want the counter
    /// itself inert.
    Ignore,
    /// Degrade instead of poisoning when the counter's *backing resource*
    /// fails (the durability layer's WAL): the counter keeps serving from
    /// the in-memory fast path, reports `Degraded` health, and self-heals
    /// when the resource recovers. Explicit `poison` calls still propagate
    /// exactly as under [`Propagate`] — the policy only reroutes *internal*
    /// resource failures. Purely in-memory counters have no backing resource
    /// to degrade on, so for them this behaves identically to `Propagate`.
    Degrade,
}

/// The resolved knob set a [`CounterBuilder`] hands to
/// [`Buildable::from_config`].
///
/// Public so external implementations of [`Buildable`] can read the knobs;
/// constructed only through the builder.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    initial: Value,
    shards: Option<usize>,
    capacity: Option<usize>,
    stats: bool,
    poison: PoisonPolicy,
    metrics: Option<MetricsSink>,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            initial: 0,
            shards: None,
            capacity: None,
            stats: true,
            poison: PoisonPolicy::Propagate,
            metrics: None,
        }
    }
}

impl BuildConfig {
    /// The starting value (default 0).
    pub fn initial(&self) -> Value {
        self.initial
    }

    /// Requested increment-stripe count, if set. Only sharded
    /// implementations consult it.
    pub fn shards(&self) -> Option<usize> {
        self.shards
    }

    /// Requested capacity bound, if set. For sharded implementations this
    /// bounds the unpublished per-stripe backlog; others ignore it.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Whether statistics collection is on (default true).
    pub fn stats_enabled(&self) -> bool {
        self.stats
    }

    /// The poison policy (default [`PoisonPolicy::Propagate`]).
    pub fn poison_policy(&self) -> PoisonPolicy {
        self.poison
    }

    /// The metrics sink, if instrumentation was requested
    /// ([`CounterBuilder::metrics`]). Implementations without
    /// instrumentation points ignore it.
    pub fn metrics(&self) -> Option<&MetricsSink> {
        self.metrics.as_ref()
    }

    /// Convenience: whether explicit `poison` calls take effect. True for
    /// [`PoisonPolicy::Propagate`] and [`PoisonPolicy::Degrade`] (which only
    /// reroutes internal resource failures), false for
    /// [`PoisonPolicy::Ignore`].
    pub fn poison_propagates(&self) -> bool {
        self.poison != PoisonPolicy::Ignore
    }
}

/// Implemented by every counter that can be constructed from a
/// [`BuildConfig`] — the hook [`CounterBuilder::build`] calls.
pub trait Buildable: Sized {
    /// Constructs the counter from the resolved knob set. Implementations
    /// must honor `initial`, `stats_enabled` and `poison_policy`, and may
    /// ignore knobs that do not apply to their design (documenting so).
    fn from_config(cfg: &BuildConfig) -> Self;
}

/// Fluent construction for any counter implementation.
///
/// Obtain one from the implementation's inherent `builder()` method (e.g.
/// [`Counter::builder`](crate::Counter::builder)) or, in generic code, from
/// `CounterBuilder::<C>::new()`.
#[derive(Debug)]
pub struct CounterBuilder<C: Buildable> {
    cfg: BuildConfig,
    _counter: PhantomData<fn() -> C>,
}

impl<C: Buildable> Default for CounterBuilder<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: Buildable> CounterBuilder<C> {
    /// A builder with all knobs at their defaults: initial value 0, stats
    /// on, poisoning propagates, implementation-chosen shards/capacity.
    pub fn new() -> Self {
        CounterBuilder {
            cfg: BuildConfig::default(),
            _counter: PhantomData,
        }
    }

    /// Starting value (phase-reuse and resume scenarios; equivalent to
    /// building at 0 and calling `advance_to(value)`).
    pub fn initial(mut self, value: Value) -> Self {
        self.cfg.initial = value;
        self
    }

    /// Number of increment stripes for sharded implementations (rounded up
    /// to a power of two; implementation-clamped). Ignored by unsharded
    /// implementations.
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = Some(shards);
        self
    }

    /// Capacity bound. For sharded implementations: the maximum unpublished
    /// backlog a stripe may accumulate before a flush is forced, clamped to
    /// `[8, 2^30]` — the upper bound keeps pending sums far below the range
    /// where publication arithmetic could overflow. Ignored by
    /// implementations without internal buffering.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.cfg.capacity = Some(capacity);
        self
    }

    /// Turns statistics collection on or off (default on). With stats off,
    /// [`CounterDiagnostics::stats`](crate::CounterDiagnostics::stats)
    /// reports zeros — including `live_waiters`, which tests often poll — so
    /// leave stats on anywhere diagnostics matter.
    pub fn stats(mut self, enabled: bool) -> Self {
        self.cfg.stats = enabled;
        self
    }

    /// Sets the poison policy (default [`PoisonPolicy::Propagate`]).
    pub fn poison_policy(mut self, policy: PoisonPolicy) -> Self {
        self.cfg.poison = policy;
        self
    }

    /// Publishes this counter's metrics under `prefix` in `registry`
    /// (default: no instrumentation, zero overhead). Only implementations
    /// with instrumentation points consult the sink: the
    /// [`MeteredCounter`](crate::MeteredCounter) wrapper records operation
    /// counts and latency histograms, and
    /// [`ShardedCounter`](crate::ShardedCounter) records combiner
    /// publications and flush backlog. Plain implementations ignore it.
    pub fn metrics(mut self, registry: &Arc<Registry>, prefix: impl Into<String>) -> Self {
        self.cfg.metrics = Some(MetricsSink::new(Arc::clone(registry), prefix));
        self
    }

    /// Constructs the counter.
    pub fn build(self) -> C {
        C::from_config(&self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        AtomicCounter, BTreeCounter, Counter, CounterDiagnostics, FailureInfo, MonitorCounter,
        MonotonicCounter, NaiveCounter, ParkingCounter, ShardedCounter, SpinCounter,
        TracingCounter,
    };

    fn exercise<C: Buildable + MonotonicCounter + CounterDiagnostics>() {
        let c = CounterBuilder::<C>::new().initial(5).build();
        assert_eq!(c.debug_value(), 5);
        c.increment(2);
        c.check(7);
    }

    #[test]
    fn every_impl_builds_with_initial_value() {
        exercise::<Counter>();
        exercise::<BTreeCounter>();
        exercise::<NaiveCounter>();
        exercise::<ParkingCounter>();
        exercise::<AtomicCounter>();
        exercise::<TracingCounter>();
        exercise::<SpinCounter>();
        exercise::<MonitorCounter>();
        exercise::<ShardedCounter>();
    }

    #[test]
    fn stats_off_reports_zeros() {
        let c = Counter::builder().stats(false).build();
        c.increment(3);
        c.check(1);
        let s = c.stats();
        assert_eq!(s.increments, 0);
        assert_eq!(s.checks, 0);
        assert_eq!(s.slow_path_entries, 0);
    }

    #[test]
    fn poison_ignore_keeps_waits_alive() {
        let c = Counter::builder()
            .poison_policy(PoisonPolicy::Ignore)
            .build();
        c.poison(FailureInfo::new("ignored"));
        assert!(c.poison_info().is_none());
        // A satisfied wait still works; an unsatisfied one would block, so
        // only probe the satisfied side here.
        c.increment(1);
        assert_eq!(c.wait(1), Ok(()));
    }

    #[test]
    fn defaults_match_the_legacy_constructors() {
        let built = Counter::builder().build();
        assert_eq!(built.debug_value(), 0);
        assert!(built.poison_info().is_none());
        let snap = built.stats();
        assert_eq!(snap, crate::StatsSnapshot::default());
    }
}
