//! Waiting on several counters, and indexed counter collections.
//!
//! Monotonicity gives multi-counter waits a property no traditional
//! primitive has: checking a set of `(counter, level)` conditions **one at a
//! time** is a correct wait for their conjunction, because a condition that
//! has become true can never become false again. When the last `check`
//! returns, *all* conditions hold simultaneously. (With, say, condition
//! variables this would race; with locks it would deadlock-order-matter.)

use crate::traits::MonotonicCounter;
use crate::Value;

/// Suspends until every `(counter, level)` pair is satisfied.
///
/// Equivalent to calling [`MonotonicCounter::check`] on each pair in order;
/// correct for the conjunction because counter conditions are stable
/// (monotonic). The order of the pairs affects only performance, never
/// correctness or the result.
///
/// # Example
///
/// ```
/// use mc_counter::{check_all, Counter, MonotonicCounter};
/// let a = Counter::default();
/// let b = Counter::default();
/// a.increment(2);
/// b.increment(1);
/// check_all([(&a, 2), (&b, 1)]); // both already satisfied: returns at once
/// ```
pub fn check_all<'a, C>(waits: impl IntoIterator<Item = (&'a C, Value)>)
where
    C: MonotonicCounter + ?Sized + 'a,
{
    for (counter, level) in waits {
        counter.check(level);
    }
}

/// A fixed-size indexed family of counters, e.g. one per thread or per cell,
/// as used by the ragged-barrier pattern of the paper's Section 5.1
/// (`Counter c[N]`).
///
/// # Example
///
/// ```
/// use mc_counter::{Counter, CounterSet, MonotonicCounter};
/// let set: CounterSet<Counter> = CounterSet::new(3);
/// set.increment(0, 2);
/// set.check(0, 2);
/// set.check_pairs(&[(0, 1), (0, 2)]);
/// assert_eq!(set.len(), 3);
/// ```
pub struct CounterSet<C> {
    counters: Vec<C>,
}

impl<C: MonotonicCounter + Default> CounterSet<C> {
    /// Creates `n` fresh counters, all zero.
    pub fn new(n: usize) -> Self {
        CounterSet {
            counters: (0..n).map(|_| C::default()).collect(),
        }
    }
}

impl<C: MonotonicCounter> CounterSet<C> {
    /// Number of counters in the set.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The counter at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> &C {
        &self.counters[index]
    }

    /// Increments counter `index` by `amount`.
    pub fn increment(&self, index: usize, amount: Value) {
        self.counters[index].increment(amount);
    }

    /// Suspends until counter `index` reaches `level`.
    pub fn check(&self, index: usize, level: Value) {
        self.counters[index].check(level);
    }

    /// Suspends until every `(index, level)` pair is satisfied
    /// (see [`check_all`]).
    pub fn check_pairs(&self, pairs: &[(usize, Value)]) {
        check_all(pairs.iter().map(|&(i, level)| (&self.counters[i], level)));
    }

    /// Iterates over the counters.
    pub fn iter(&self) -> impl Iterator<Item = &C> {
        self.counters.iter()
    }
}

impl<C: MonotonicCounter> std::ops::Index<usize> for CounterSet<C> {
    type Output = C;

    fn index(&self, index: usize) -> &C {
        &self.counters[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::CounterDiagnostics;
    use crate::Counter;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn check_all_on_satisfied_pairs_returns() {
        let a = Counter::default();
        let b = Counter::default();
        a.increment(1);
        b.increment(2);
        check_all([(&a, 1), (&b, 2)]);
    }

    #[test]
    fn check_all_waits_for_every_counter() {
        let a = Arc::new(Counter::default());
        let b = Arc::new(Counter::default());
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h = thread::spawn(move || check_all([(&*a2, 3), (&*b2, 3)]));
        a.increment(3);
        thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !h.is_finished(),
            "returned before second counter was satisfied"
        );
        b.increment(3);
        h.join().unwrap();
    }

    #[test]
    fn counter_set_independent_counters() {
        let set: CounterSet<Counter> = CounterSet::new(4);
        set.increment(1, 5);
        assert_eq!(set.get(0).debug_value(), 0);
        assert_eq!(set.get(1).debug_value(), 5);
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
    }

    #[test]
    fn counter_set_check_pairs() {
        let set: CounterSet<Counter> = CounterSet::new(2);
        set.increment(0, 1);
        set.increment(1, 1);
        set.check_pairs(&[(0, 1), (1, 1)]);
    }

    #[test]
    fn counter_set_indexing() {
        let set: CounterSet<Counter> = CounterSet::new(2);
        set[0].increment(7);
        assert_eq!(set[0].debug_value(), 7);
    }

    #[test]
    #[should_panic]
    fn counter_set_out_of_bounds_panics() {
        let set: CounterSet<Counter> = CounterSet::new(1);
        set.check(3, 0);
    }

    #[test]
    fn empty_set() {
        let set: CounterSet<Counter> = CounterSet::new(0);
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
    }
}
