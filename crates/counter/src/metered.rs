//! [`MeteredCounter`]: transparent per-operation instrumentation for any
//! counter implementation.
//!
//! The wrapper forwards every operation unchanged and, **only when a metrics
//! sink was attached** ([`CounterBuilder::metrics`]), records operation
//! counts and latency histograms into an `mc-metrics` [`Registry`]:
//!
//! | metric (under the sink's prefix) | kind | recorded |
//! |---|---|---|
//! | `increments` | event | at [`publish_stats`](MeteredCounter::publish_stats), from the inner stats tier |
//! | `checks` | event | at `publish_stats`, from the inner stats tier |
//! | `fast_increments` | event | at `publish_stats`, from the inner stats tier |
//! | `fast_checks` | event | at `publish_stats`, from the inner stats tier |
//! | `slow_path_entries` | event | at `publish_stats`, from the inner stats tier |
//! | `advances` | event | inline, per `advance_to` call |
//! | `waits` | event | inline, per `wait` / `wait_timeout` call |
//! | `wait_timeouts` | event | inline, per wait that gave up on timeout |
//! | `poisons` | event | inline, per `poison` call |
//! | `increment_ns` | histogram | sampled `increment` latency |
//! | `check_ns` | histogram | sampled `check` latency |
//! | `wait_ns` | histogram | every blocking wait's latency |
//!
//! ## Overhead discipline
//!
//! The uncontended increment fast path is ~10–20 ns. A single
//! `Instant::now()` costs about the same, and even one shared `Relaxed`
//! `fetch_add` adds ~30% to it — so the hot operations (`increment`,
//! `try_increment`, `check`) add **no shared-memory writes at all**:
//!
//! * operation *counts* come from the counter's own always-on stats tier
//!   (already paid for in the baseline), delta-published into the registry
//!   by [`MeteredCounter::publish_stats`] — call it from the scrape loop,
//!   right before rendering;
//! * operation *latency* is sampled: a thread-local (non-atomic) ticker
//!   elects every [`SAMPLE_EVERY`]-th hot operation on the thread for
//!   timing, so the histograms describe a uniform 1-in-1024 sample. The
//!   ticker is shared by all metered counters on the thread — each
//!   counter's histogram receives samples in proportion to its share of
//!   the operation stream. Blocking waits are µs-scale and rare, so those
//!   are counted inline and always timed.
//!
//! With **no sink attached** (the default), every field is `None` and each
//! forwarding method is a `#[inline]` pass-through: the wrapper compiles to
//! the bare inner counter. The E8 benchmark measures both configurations and
//! the CI perf gate holds the enabled-mode overhead under 10%.

use crate::builder::{BuildConfig, Buildable, CounterBuilder, MetricsSink};
use crate::error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
use crate::stats::StatsSnapshot;
use crate::traits::{
    CounterDiagnostics, HealthStatus, MonotonicCounter, Resettable, ResumableCounter, WaitingLevel,
};
use crate::{Counter, Value};
use mc_metrics::{Event, Histogram};
use std::cell::Cell;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One in how many increment/check operations gets a latency timestamp.
///
/// Power of two so the sample test is a mask, not a division.
pub const SAMPLE_EVERY: u64 = 1024;

thread_local! {
    /// Per-thread hot-operation ticker, shared by every metered counter on
    /// the thread: one non-atomic add per operation, no cache-line traffic.
    static OP_TICKS: Cell<u64> = const { Cell::new(0) };
}

/// Counts one hot operation on this thread; true when this operation is
/// elected for timing (the first on a thread, then every
/// [`SAMPLE_EVERY`]-th).
#[inline]
fn sample_tick() -> bool {
    OP_TICKS.with(|c| {
        let v = c.get();
        c.set(v.wrapping_add(1));
        v & (SAMPLE_EVERY - 1) == 0
    })
}

/// The attached instruments. Created once at construction from the sink;
/// every handle is an `Arc` into the registry, so recording never touches
/// the registry's lock.
#[derive(Debug)]
struct Instruments {
    increments: Arc<Event>,
    advances: Arc<Event>,
    checks: Arc<Event>,
    fast_increments: Arc<Event>,
    fast_checks: Arc<Event>,
    waits: Arc<Event>,
    wait_timeouts: Arc<Event>,
    poisons: Arc<Event>,
    slow_path_entries: Arc<Event>,
    increment_ns: Arc<Histogram>,
    check_ns: Arc<Histogram>,
    wait_ns: Arc<Histogram>,
    /// Stats already delta-published by [`MeteredCounter::publish_stats`].
    published: Mutex<StatsSnapshot>,
}

impl Instruments {
    fn attach(sink: &MetricsSink) -> Self {
        Instruments {
            increments: sink.event("increments"),
            advances: sink.event("advances"),
            checks: sink.event("checks"),
            fast_increments: sink.event("fast_increments"),
            fast_checks: sink.event("fast_checks"),
            waits: sink.event("waits"),
            wait_timeouts: sink.event("wait_timeouts"),
            poisons: sink.event("poisons"),
            slow_path_entries: sink.event("slow_path_entries"),
            increment_ns: sink.histogram("increment_ns"),
            check_ns: sink.histogram("check_ns"),
            wait_ns: sink.histogram("wait_ns"),
            published: Mutex::new(StatsSnapshot::default()),
        }
    }
}

/// A counter wrapper that publishes operation counts and latency histograms
/// to an `mc-metrics` registry — see the [module docs](self) for the metric
/// set and the sampling discipline.
///
/// Build it like any other implementation; attach the registry through the
/// builder:
///
/// ```
/// use mc_counter::{MeteredCounter, MonotonicCounter};
/// use mc_metrics::Registry;
/// use std::sync::Arc;
///
/// let registry = Arc::new(Registry::new());
/// let c: MeteredCounter = MeteredCounter::builder()
///     .metrics(&registry, "jobs")
///     .build();
/// c.increment(3);
/// c.check(3);
/// c.publish_stats(); // bridge the counts; call this before each scrape
/// assert_eq!(registry.event("jobs.increments").get(), 1);
/// assert_eq!(registry.event("jobs.checks").get(), 1);
/// ```
///
/// Without `.metrics(..)` the wrapper holds no instruments and forwards
/// straight through.
#[derive(Debug)]
pub struct MeteredCounter<C = Counter> {
    inner: C,
    instruments: Option<Box<Instruments>>,
}

impl<C> MeteredCounter<C> {
    /// Wraps an existing counter, attaching instruments when `sink` is
    /// `Some`. The builder path ([`Buildable`]) is preferred; this exists for
    /// wrapping counters that are not [`Buildable`] (test doubles, trait
    /// objects behind newtypes).
    pub fn wrap(inner: C, sink: Option<&MetricsSink>) -> Self {
        MeteredCounter {
            inner,
            instruments: sink.map(|s| Box::new(Instruments::attach(s))),
        }
    }

    /// The wrapped counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps, discarding the instruments (registry contents persist).
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Whether a metrics sink is attached.
    pub fn is_metered(&self) -> bool {
        self.instruments.is_some()
    }
}

impl<C: CounterDiagnostics> MeteredCounter<C> {
    /// Delta-publishes the inner counter's [`StatsSnapshot`]-derived metrics
    /// (`increments`, `checks`, `fast_increments`, `fast_checks`,
    /// `slow_path_entries`) into the registry: each call adds only what
    /// accrued since the previous call, so periodic publication from a
    /// scrape loop never double-counts. This is how the hot-path counts
    /// reach the registry at all — the operations themselves write nothing
    /// shared (see the [module docs](self)) — so call it right before each
    /// scrape/render. No-op without a sink.
    pub fn publish_stats(&self) {
        let Some(m) = &self.instruments else {
            return;
        };
        let now = self.inner.stats();
        let mut last = m.published.lock().unwrap_or_else(|e| e.into_inner());
        m.increments
            .add(now.increments.saturating_sub(last.increments));
        m.checks.add(now.checks.saturating_sub(last.checks));
        m.fast_increments
            .add(now.fast_increments.saturating_sub(last.fast_increments));
        m.fast_checks
            .add(now.fast_checks.saturating_sub(last.fast_checks));
        m.slow_path_entries
            .add(now.slow_path_entries.saturating_sub(last.slow_path_entries));
        *last = now;
    }
}

impl<C: Buildable> Default for MeteredCounter<C> {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl<C: Buildable> Buildable for MeteredCounter<C> {
    fn from_config(cfg: &BuildConfig) -> Self {
        // The config passes through to the inner counter too, so a metered
        // ShardedCounter attaches its combiner metrics to the same sink.
        MeteredCounter::wrap(C::from_config(cfg), cfg.metrics())
    }
}

impl<C: Buildable> MeteredCounter<C> {
    /// Starts building a metered counter; see [`CounterBuilder`]. Attach the
    /// registry with [`CounterBuilder::metrics`] — without it the wrapper is
    /// a pass-through.
    pub fn builder() -> CounterBuilder<Self> {
        CounterBuilder::new()
    }

    /// Creates an uninstrumented pass-through wrapper.
    #[deprecated(note = "use CounterBuilder: `MeteredCounter::builder().build()`")]
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Creates an uninstrumented pass-through wrapper starting at `value`.
    #[deprecated(note = "use CounterBuilder: `MeteredCounter::builder().initial(value).build()`")]
    pub fn with_value(value: Value) -> Self {
        Self::builder().initial(value).build()
    }
}

impl<C: MonotonicCounter> MonotonicCounter for MeteredCounter<C> {
    #[inline]
    fn increment(&self, amount: Value) {
        match &self.instruments {
            None => self.inner.increment(amount),
            Some(m) => {
                if sample_tick() {
                    let t0 = Instant::now();
                    self.inner.increment(amount);
                    m.increment_ns.record_duration(t0.elapsed());
                } else {
                    self.inner.increment(amount);
                }
            }
        }
    }

    #[inline]
    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        match &self.instruments {
            None => self.inner.try_increment(amount),
            Some(m) => {
                if sample_tick() {
                    let t0 = Instant::now();
                    let r = self.inner.try_increment(amount);
                    m.increment_ns.record_duration(t0.elapsed());
                    r
                } else {
                    self.inner.try_increment(amount)
                }
            }
        }
    }

    #[inline]
    fn advance_to(&self, target: Value) {
        if let Some(m) = &self.instruments {
            m.advances.incr();
        }
        self.inner.advance_to(target);
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        match &self.instruments {
            None => self.inner.wait(level),
            Some(m) => {
                m.waits.incr();
                let t0 = Instant::now();
                let r = self.inner.wait(level);
                m.wait_ns.record_duration(t0.elapsed());
                if matches!(r, Err(CheckError::Timeout(_))) {
                    m.wait_timeouts.incr();
                }
                r
            }
        }
    }

    fn wait_timeout(&self, level: Value, timeout: std::time::Duration) -> Result<(), CheckError> {
        match &self.instruments {
            None => self.inner.wait_timeout(level, timeout),
            Some(m) => {
                m.waits.incr();
                let t0 = Instant::now();
                let r = self.inner.wait_timeout(level, timeout);
                m.wait_ns.record_duration(t0.elapsed());
                if matches!(r, Err(CheckError::Timeout(_))) {
                    m.wait_timeouts.incr();
                }
                r
            }
        }
    }

    fn poison(&self, info: FailureInfo) {
        if let Some(m) = &self.instruments {
            m.poisons.incr();
        }
        self.inner.poison(info);
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        self.inner.poison_info()
    }

    #[inline]
    fn check(&self, level: Value) {
        match &self.instruments {
            None => self.inner.check(level),
            Some(m) => {
                if sample_tick() {
                    let t0 = Instant::now();
                    self.inner.check(level);
                    m.check_ns.record_duration(t0.elapsed());
                } else {
                    self.inner.check(level);
                }
            }
        }
    }

    fn check_timeout(
        &self,
        level: Value,
        timeout: std::time::Duration,
    ) -> Result<(), CheckTimeoutError> {
        match &self.instruments {
            None => self.inner.check_timeout(level, timeout),
            Some(m) => {
                // Possibly blocking: always timed, like `wait`.
                let t0 = Instant::now();
                let r = self.inner.check_timeout(level, timeout);
                m.check_ns.record_duration(t0.elapsed());
                r
            }
        }
    }
}

impl<C: Buildable + MonotonicCounter> ResumableCounter for MeteredCounter<C> {
    fn resume_from(value: Value) -> Self {
        Self::builder().initial(value).build()
    }
}

impl<C: Resettable> Resettable for MeteredCounter<C> {
    fn reset(&mut self) {
        self.inner.reset();
        if let Some(m) = &self.instruments {
            // Registry metrics are monotone and never reset, but the
            // delta-publication baseline must follow the inner stats back to
            // zero or the next publish would subtract stale totals.
            *m.published.lock().unwrap_or_else(|e| e.into_inner()) = StatsSnapshot::default();
        }
    }
}

impl<C: CounterDiagnostics> CounterDiagnostics for MeteredCounter<C> {
    fn debug_value(&self) -> Value {
        self.inner.debug_value()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn impl_name(&self) -> &'static str {
        "metered"
    }

    fn waiters(&self) -> Vec<WaitingLevel> {
        self.inner.waiters()
    }

    fn health(&self) -> HealthStatus {
        self.inner.health()
    }

    fn durable_watermark(&self) -> Option<Value> {
        self.inner.durable_watermark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_metrics::Registry;
    use std::time::Duration;

    fn metered(registry: &Arc<Registry>) -> MeteredCounter {
        MeteredCounter::builder().metrics(registry, "m").build()
    }

    #[test]
    fn disabled_wrapper_holds_no_instruments() {
        let c: MeteredCounter = MeteredCounter::builder().build();
        assert!(!c.is_metered());
        c.increment(2);
        c.check(2);
        assert_eq!(c.debug_value(), 2);
    }

    #[test]
    fn operations_are_counted_exactly() {
        let registry = Arc::new(Registry::new());
        let c = metered(&registry);
        for _ in 0..10 {
            c.increment(1);
        }
        c.try_increment(1).unwrap();
        c.advance_to(20);
        for _ in 0..5 {
            c.check(3);
        }
        c.check_timeout(3, Duration::from_secs(1)).unwrap();
        c.wait(3).unwrap();
        c.publish_stats();
        // Hot-path counts mirror the inner stats tier exactly.
        let stats = c.stats();
        assert_eq!(registry.event("m.increments").get(), stats.increments);
        assert!(stats.increments >= 11, "10 increments + 1 try_increment");
        assert_eq!(registry.event("m.checks").get(), stats.checks);
        assert!(stats.checks >= 5);
        // Rare operations are counted inline, without a publish.
        assert_eq!(registry.event("m.advances").get(), 1);
        assert_eq!(registry.event("m.waits").get(), 1);
        assert_eq!(registry.event("m.wait_timeouts").get(), 0);
    }

    #[test]
    fn latency_is_sampled_not_exhaustive() {
        let registry = Arc::new(Registry::new());
        let n = 3 * SAMPLE_EVERY;
        // A dedicated thread pins the thread-local ticker's phase: ops 0,
        // 1024, 2048 are elected — exactly ceil(n / SAMPLE_EVERY) samples.
        std::thread::scope(|s| {
            s.spawn(|| {
                let c = metered(&registry);
                for _ in 0..n {
                    c.increment(1);
                }
                c.publish_stats();
            });
        });
        let snap = registry.histogram("m.increment_ns").snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(registry.event("m.increments").get(), n);
    }

    #[test]
    fn waits_are_always_timed_and_timeouts_counted() {
        let registry = Arc::new(Registry::new());
        let c = metered(&registry);
        c.increment(1);
        c.wait(1).unwrap();
        let err = c.wait_timeout(100, Duration::from_millis(5));
        assert!(matches!(err, Err(CheckError::Timeout(_))));
        assert_eq!(registry.event("m.waits").get(), 2);
        assert_eq!(registry.event("m.wait_timeouts").get(), 1);
        assert_eq!(registry.histogram("m.wait_ns").snapshot().count(), 2);
    }

    #[test]
    fn poison_is_counted_and_forwarded() {
        let registry = Arc::new(Registry::new());
        let c = metered(&registry);
        c.poison(FailureInfo::new("boom"));
        assert_eq!(registry.event("m.poisons").get(), 1);
        assert!(c.poison_info().is_some());
        assert!(matches!(c.wait(5), Err(CheckError::Poisoned(_))));
    }

    #[test]
    fn publish_stats_is_delta_based() {
        let registry = Arc::new(Registry::new());
        let c = metered(&registry);
        // Force slow-path entries by suspending a real waiter.
        let done = std::thread::scope(|s| {
            let h = s.spawn(|| c.wait(2));
            while c.stats().live_waiters == 0 {
                std::thread::yield_now();
            }
            c.increment(2);
            h.join().unwrap()
        });
        done.unwrap();
        let entries = c.stats().slow_path_entries;
        assert!(entries > 0);
        c.publish_stats();
        c.publish_stats(); // second publish adds nothing new
        assert_eq!(registry.event("m.slow_path_entries").get(), entries);
    }

    #[test]
    fn metered_sharded_counter_shares_the_sink() {
        use crate::ShardedCounter;
        let registry = Arc::new(Registry::new());
        let c: MeteredCounter<ShardedCounter> = MeteredCounter::builder()
            .metrics(&registry, "sc")
            .shards(4)
            .build();
        c.increment(5);
        c.check(5);
        c.publish_stats();
        assert!(registry.event("sc.increments").get() >= 1);
    }

    #[test]
    fn resume_and_reset_round_trip() {
        let mut c: MeteredCounter = MeteredCounter::resume_from(40);
        assert_eq!(c.debug_value(), 40);
        c.reset();
        assert_eq!(c.debug_value(), 0);
    }
}
