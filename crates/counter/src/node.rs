//! The wait node: one suspension queue for one counter level.
//!
//! This is the node structure of the paper's Section 7 / Figure 2: a level, a
//! count of threads waiting at that level, a condition variable they wait on,
//! and a "signal" flag set when the level is satisfied.

use crate::Value;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::Condvar;

/// One suspension queue: all threads waiting for the same level share a node.
///
/// Every field except `level` is only read or written while holding the owning
/// counter's mutex; the atomics exist solely so the node can be shared through
/// `Arc` without `unsafe`, and relaxed ordering suffices because the mutex
/// provides all necessary synchronization.
#[derive(Debug)]
pub(crate) struct WaitNode {
    /// The level threads at this node are waiting for. Immutable.
    pub(crate) level: Value,
    /// Number of threads currently registered at this node. The thread that
    /// decrements it to zero after the node is signalled releases the node
    /// (the paper: "the thread that decrements the count to zero deallocates
    /// the node"; in Rust the final `Arc` drop is the deallocation and this
    /// count additionally drives the draining-list removal).
    pub(crate) count: AtomicUsize,
    /// The signal flag ("set" in Figure 2): true once `increment` has
    /// satisfied this level. Guards against spurious condvar wakeups.
    pub(crate) set: AtomicBool,
    /// True once the counter was poisoned while this node's level was still
    /// unsatisfied: every waiter wakes with `CheckError::Poisoned` instead
    /// of resuming normally. Mutually exclusive with `set`.
    pub(crate) poisoned: AtomicBool,
    /// The condition variable the node's threads suspend on. Always used with
    /// the owning counter's single mutex.
    pub(crate) cv: Condvar,
}

impl WaitNode {
    pub(crate) fn new(level: Value) -> Self {
        WaitNode {
            level,
            count: AtomicUsize::new(0),
            set: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn is_set(&self) -> bool {
        self.set.load(Relaxed)
    }

    pub(crate) fn signal(&self) {
        self.set.store(true, Relaxed);
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Relaxed)
    }

    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Relaxed);
    }

    pub(crate) fn add_waiter(&self) {
        self.count.fetch_add(1, Relaxed);
    }

    /// Removes one waiter; returns `true` if this was the last one.
    pub(crate) fn remove_waiter(&self) -> bool {
        self.count.fetch_sub(1, Relaxed) == 1
    }

    pub(crate) fn waiter_count(&self) -> usize {
        self.count.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_is_unset_with_no_waiters() {
        let n = WaitNode::new(7);
        assert_eq!(n.level, 7);
        assert!(!n.is_set());
        assert_eq!(n.waiter_count(), 0);
    }

    #[test]
    fn waiter_registration_round_trip() {
        let n = WaitNode::new(1);
        n.add_waiter();
        n.add_waiter();
        assert_eq!(n.waiter_count(), 2);
        assert!(!n.remove_waiter());
        assert!(n.remove_waiter(), "last waiter must be told it is last");
        assert_eq!(n.waiter_count(), 0);
    }

    #[test]
    fn signal_latches() {
        let n = WaitNode::new(1);
        n.signal();
        assert!(n.is_set());
        n.signal();
        assert!(n.is_set());
    }
}
