//! [`BTreeCounter`]: the Section 7 algorithm with the ordered waiting list
//! stored in a `BTreeMap` instead of the paper's linked list.
//!
//! Identical semantics to [`crate::Counter`]; level lookup is O(log L) rather
//! than O(L). Experiment E7 ablates this choice.

use crate::error::{CheckTimeoutError, CounterOverflowError};
use crate::node::WaitNode;
use crate::stats::{Stats, StatsSnapshot};
use crate::traits::MonotonicCounter;
use crate::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

struct Inner {
    value: Value,
    waiting: BTreeMap<Value, Arc<WaitNode>>,
}

/// A monotonic counter whose per-level suspension queues live in a `BTreeMap`.
///
/// Semantically interchangeable with [`crate::Counter`]; see the crate docs
/// for the implementation comparison table.
pub struct BTreeCounter {
    inner: Mutex<Inner>,
    stats: Stats,
}

impl Default for BTreeCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeCounter {
    /// Creates a counter with value zero and no waiting threads.
    pub fn new() -> Self {
        BTreeCounter {
            inner: Mutex::new(Inner {
                value: 0,
                waiting: BTreeMap::new(),
            }),
            stats: Stats::default(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("counter lock poisoned")
    }

    /// Detaches every node with level <= `value` from the map.
    fn remove_satisfied(
        waiting: &mut BTreeMap<Value, Arc<WaitNode>>,
        value: Value,
    ) -> Vec<Arc<WaitNode>> {
        match value.checked_add(1) {
            Some(next) => {
                let rest = waiting.split_off(&next);
                std::mem::replace(waiting, rest).into_values().collect()
            }
            // value == u64::MAX satisfies every possible level.
            None => std::mem::take(waiting).into_values().collect(),
        }
    }

    fn raise(&self, amount: Value) -> Result<Vec<Arc<WaitNode>>, CounterOverflowError> {
        let mut inner = self.lock();
        let new_value = inner
            .value
            .checked_add(amount)
            .ok_or(CounterOverflowError {
                value: inner.value,
                amount,
            })?;
        inner.value = new_value;
        self.stats.record_increment();
        let satisfied = Self::remove_satisfied(&mut inner.waiting, new_value);
        for node in &satisfied {
            node.signal();
            self.stats.record_notify();
        }
        Ok(satisfied)
    }
}

impl MonotonicCounter for BTreeCounter {
    fn increment(&self, amount: Value) {
        let satisfied = self
            .raise(amount)
            .unwrap_or_else(|e| panic!("monotonic counter overflow: {e}"));
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        let satisfied = self.raise(amount)?;
        for node in satisfied {
            node.cv.notify_all();
        }
        Ok(())
    }

    fn advance_to(&self, target: Value) {
        let satisfied = {
            let mut inner = self.lock();
            if target <= inner.value {
                return;
            }
            inner.value = target;
            self.stats.record_increment();
            let satisfied = Self::remove_satisfied(&mut inner.waiting, target);
            for node in &satisfied {
                node.signal();
                self.stats.record_notify();
            }
            satisfied
        };
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    fn check(&self, level: Value) {
        let mut inner = self.lock();
        if inner.value >= level {
            self.stats.record_check_immediate();
            return;
        }
        let mut inserted = false;
        let node = Arc::clone(inner.waiting.entry(level).or_insert_with(|| {
            inserted = true;
            Arc::new(WaitNode::new(level))
        }));
        if inserted {
            self.stats.record_node_created();
        }
        node.add_waiter();
        self.stats.record_check_suspended();
        while !node.is_set() {
            inner = node
                .cv
                .wait(inner)
                .expect("counter lock poisoned while waiting");
        }
        self.stats.record_waiter_resumed();
        if node.remove_waiter() {
            self.stats.record_node_freed();
        }
    }

    fn check_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        if inner.value >= level {
            self.stats.record_check_immediate();
            return Ok(());
        }
        let mut inserted = false;
        let node = Arc::clone(inner.waiting.entry(level).or_insert_with(|| {
            inserted = true;
            Arc::new(WaitNode::new(level))
        }));
        if inserted {
            self.stats.record_node_created();
        }
        node.add_waiter();
        self.stats.record_check_suspended();
        loop {
            if node.is_set() {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    self.stats.record_node_freed();
                }
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    inner.waiting.remove(&level);
                    self.stats.record_node_freed();
                }
                return Err(CheckTimeoutError { level });
            }
            let (guard, _) = node
                .cv
                .wait_timeout(inner, deadline - now)
                .expect("counter lock poisoned while waiting");
            inner = guard;
        }
    }

    fn reset(&mut self) {
        let inner = self.inner.get_mut().expect("counter lock poisoned");
        debug_assert!(inner.waiting.is_empty(), "reset called while threads wait");
        inner.value = 0;
    }

    fn debug_value(&self) -> Value {
        self.lock().value
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn impl_name(&self) -> &'static str {
        "btree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn basic_wait_and_wake() {
        let c = Arc::new(BTreeCounter::new());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check(10));
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        c.increment(10);
        h.join().unwrap();
        assert_eq!(c.stats().nodes_created, 1);
        assert_eq!(c.stats().nodes_freed, 1);
    }

    #[test]
    fn remove_satisfied_boundary() {
        let mut map = BTreeMap::new();
        for level in [1u64, 5, 6, 7] {
            map.insert(level, Arc::new(WaitNode::new(level)));
        }
        let out = BTreeCounter::remove_satisfied(&mut map, 6);
        let got: Vec<_> = out.iter().map(|n| n.level).collect();
        assert_eq!(got, vec![1, 5, 6]);
        assert_eq!(map.keys().copied().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn remove_satisfied_at_u64_max_takes_all() {
        let mut map = BTreeMap::new();
        map.insert(u64::MAX, Arc::new(WaitNode::new(u64::MAX)));
        let out = BTreeCounter::remove_satisfied(&mut map, u64::MAX);
        assert_eq!(out.len(), 1);
        assert!(map.is_empty());
    }

    #[test]
    fn timeout_cleans_map_entry() {
        let c = BTreeCounter::new();
        assert!(c.check_timeout(9, Duration::from_millis(30)).is_err());
        assert_eq!(c.stats().live_nodes, 0);
    }

    #[test]
    fn distinct_levels_distinct_nodes() {
        let c = Arc::new(BTreeCounter::new());
        let mut handles = Vec::new();
        for level in [3u64, 6, 9] {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || c.check(level)));
        }
        while c.stats().live_nodes < 3 {
            thread::yield_now();
        }
        c.increment(9);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.stats().nodes_created, 3);
    }
}
