//! [`BTreeCounter`]: the Section 7 algorithm with the ordered waiting list
//! stored in a `BTreeMap` instead of the paper's linked list.
//!
//! Identical semantics to [`crate::Counter`], including the packed-word fast
//! path; level lookup on the slow path is O(log L) rather than O(L).
//! Experiment E7 ablates this choice.

use crate::builder::{BuildConfig, Buildable, CounterBuilder};
use crate::error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
use crate::fastpath::{FastAdvance, FastIncrement, FastWord, FAST_CAP};
use crate::node::WaitNode;
use crate::stats::{Stats, StatsSnapshot};
use crate::traits::{
    CounterDiagnostics, MonotonicCounter, Resettable, ResumableCounter, WaitingLevel,
};
use crate::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

struct Inner {
    /// Exact value once the packed hint saturates; see [`crate::fastpath`].
    wide: Value,
    waiting: BTreeMap<Value, Arc<WaitNode>>,
    /// The first poisoning cause, if any. Set at most once.
    poisoned: Option<FailureInfo>,
}

/// A monotonic counter whose per-level suspension queues live in a `BTreeMap`.
///
/// Semantically interchangeable with [`crate::Counter`]; see the crate docs
/// for the implementation comparison table.
pub struct BTreeCounter {
    fast: FastWord,
    inner: Mutex<Inner>,
    stats: Stats,
    poison_enabled: bool,
}

impl Default for BTreeCounter {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl Buildable for BTreeCounter {
    fn from_config(cfg: &BuildConfig) -> Self {
        BTreeCounter {
            fast: FastWord::new(cfg.initial()),
            inner: Mutex::new(Inner {
                wide: cfg.initial(),
                waiting: BTreeMap::new(),
                poisoned: None,
            }),
            stats: Stats::with_enabled(cfg.stats_enabled()),
            poison_enabled: cfg.poison_propagates(),
        }
    }
}

impl BTreeCounter {
    /// Starts building a counter; see [`CounterBuilder`].
    pub fn builder() -> CounterBuilder<Self> {
        CounterBuilder::new()
    }

    /// Creates a counter with value zero and no waiting threads.
    #[deprecated(note = "use CounterBuilder: `BTreeCounter::builder().build()`")]
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Creates a counter starting at `value`.
    #[deprecated(note = "use CounterBuilder: `BTreeCounter::builder().initial(value).build()`")]
    pub fn with_value(value: Value) -> Self {
        Self::builder().initial(value).build()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("counter lock poisoned")
    }

    /// Detaches every node with level <= `value` from the map.
    fn remove_satisfied(
        waiting: &mut BTreeMap<Value, Arc<WaitNode>>,
        value: Value,
    ) -> Vec<Arc<WaitNode>> {
        match value.checked_add(1) {
            Some(next) => {
                let rest = waiting.split_off(&next);
                std::mem::replace(waiting, rest).into_values().collect()
            }
            // value == u64::MAX satisfies every possible level.
            None => std::mem::take(waiting).into_values().collect(),
        }
    }

    fn raise(&self, amount: Value) -> Result<Vec<Arc<WaitNode>>, CounterOverflowError> {
        let mut inner = self.lock();
        self.stats.record_slow_entry();
        let new_value = self.fast.locked_add(&mut inner.wide, amount)?;
        self.stats.record_increment();
        let satisfied = Self::remove_satisfied(&mut inner.waiting, new_value);
        for node in &satisfied {
            node.signal();
            self.stats.record_notify();
        }
        if inner.waiting.is_empty() {
            self.fast.clear_waiters();
        }
        Ok(satisfied)
    }

    /// Shared tail of `check`/`check_timeout`: find-or-insert the node for
    /// `level` under the already-held lock.
    fn enqueue(&self, inner: &mut Inner, level: Value) -> Arc<WaitNode> {
        let mut inserted = false;
        let node = Arc::clone(inner.waiting.entry(level).or_insert_with(|| {
            inserted = true;
            Arc::new(WaitNode::new(level))
        }));
        if inserted {
            self.stats.record_node_created();
        }
        node.add_waiter();
        self.stats.record_check_suspended();
        node
    }
}

impl MonotonicCounter for BTreeCounter {
    fn increment(&self, amount: Value) {
        match self.fast.try_increment(amount) {
            FastIncrement::Done => {
                self.stats.record_fast_increment();
                return;
            }
            FastIncrement::Overflow(e) => panic!("monotonic counter overflow: {e}"),
            FastIncrement::Contended => {}
        }
        let satisfied = self
            .raise(amount)
            .unwrap_or_else(|e| panic!("monotonic counter overflow: {e}"));
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        match self.fast.try_increment(amount) {
            FastIncrement::Done => {
                self.stats.record_fast_increment();
                return Ok(());
            }
            FastIncrement::Overflow(e) => return Err(e),
            FastIncrement::Contended => {}
        }
        let satisfied = self.raise(amount)?;
        for node in satisfied {
            node.cv.notify_all();
        }
        Ok(())
    }

    fn advance_to(&self, target: Value) {
        match self.fast.try_advance(target) {
            FastAdvance::Raised => {
                self.stats.record_fast_increment();
                return;
            }
            FastAdvance::NoOp => return,
            FastAdvance::Contended => {}
        }
        let satisfied = {
            let mut inner = self.lock();
            self.stats.record_slow_entry();
            let Some(new_value) = self.fast.locked_advance(&mut inner.wide, target) else {
                return;
            };
            self.stats.record_increment();
            let satisfied = Self::remove_satisfied(&mut inner.waiting, new_value);
            for node in &satisfied {
                node.signal();
                self.stats.record_notify();
            }
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            satisfied
        };
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        if self.fast.is_satisfied(level) {
            self.stats.record_fast_check();
            return Ok(());
        }
        let mut inner = self.lock();
        self.stats.record_slow_entry();
        let value = self.fast.register_waiter(inner.wide);
        if value >= level {
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            self.stats.record_check_immediate();
            return Ok(());
        }
        if let Some(info) = &inner.poisoned {
            let info = info.clone();
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            return Err(CheckError::Poisoned(info));
        }
        let node = self.enqueue(&mut inner, level);
        while !node.is_set() && !node.is_poisoned() {
            inner = node
                .cv
                .wait(inner)
                .expect("counter lock poisoned while waiting");
        }
        let poisoned = node.is_poisoned();
        self.stats.record_waiter_resumed();
        if node.remove_waiter() {
            self.stats.record_node_freed();
        }
        if poisoned {
            let info = inner
                .poisoned
                .clone()
                .expect("poisoned wait node without a recorded cause");
            return Err(CheckError::Poisoned(info));
        }
        Ok(())
    }

    fn wait_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckError> {
        if self.fast.is_satisfied(level) {
            self.stats.record_fast_check();
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        self.stats.record_slow_entry();
        let value = self.fast.register_waiter(inner.wide);
        if value >= level {
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            self.stats.record_check_immediate();
            return Ok(());
        }
        if let Some(info) = &inner.poisoned {
            let info = info.clone();
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            return Err(CheckError::Poisoned(info));
        }
        let node = self.enqueue(&mut inner, level);
        loop {
            // Satisfied first, then poisoned (the node already left the map
            // at poison time, so the timeout-removal branch must not run for
            // it), then the deadline.
            if node.is_set() {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    self.stats.record_node_freed();
                }
                return Ok(());
            }
            if node.is_poisoned() {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    self.stats.record_node_freed();
                }
                let info = inner
                    .poisoned
                    .clone()
                    .expect("poisoned wait node without a recorded cause");
                return Err(CheckError::Poisoned(info));
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    inner.waiting.remove(&level);
                    self.stats.record_node_freed();
                    if inner.waiting.is_empty() {
                        self.fast.clear_waiters();
                    }
                }
                return Err(CheckError::Timeout(CheckTimeoutError { level }));
            }
            let (guard, _) = node
                .cv
                .wait_timeout(inner, deadline - now)
                .expect("counter lock poisoned while waiting");
            inner = guard;
        }
    }

    fn poison(&self, info: FailureInfo) {
        if !self.poison_enabled {
            return;
        }
        let swept = {
            let mut inner = self.lock();
            if inner.poisoned.is_some() {
                return;
            }
            self.fast.set_poison();
            inner.poisoned = Some(info);
            let swept = Self::remove_satisfied(&mut inner.waiting, Value::MAX);
            for node in &swept {
                node.poison();
                self.stats.record_notify();
            }
            self.fast.clear_waiters();
            swept
        };
        for node in swept {
            node.cv.notify_all();
        }
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        if !self.fast.is_poisoned() {
            return None;
        }
        self.lock().poisoned.clone()
    }
}

impl ResumableCounter for BTreeCounter {
    fn resume_from(value: Value) -> Self {
        Self::builder().initial(value).build()
    }
}

impl Resettable for BTreeCounter {
    fn reset(&mut self) {
        let inner = self.inner.get_mut().expect("counter lock poisoned");
        debug_assert!(inner.waiting.is_empty(), "reset called while threads wait");
        inner.wide = 0;
        inner.poisoned = None;
        self.fast.reset(0);
    }
}

impl CounterDiagnostics for BTreeCounter {
    fn debug_value(&self) -> Value {
        let hint = self.fast.value_hint();
        if hint < FAST_CAP {
            hint
        } else {
            self.lock().wide
        }
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn impl_name(&self) -> &'static str {
        "btree"
    }

    fn waiters(&self) -> Vec<WaitingLevel> {
        self.lock()
            .waiting
            .values()
            .map(|n| WaitingLevel {
                level: n.level,
                threads: n.waiter_count(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn basic_wait_and_wake() {
        let c = Arc::new(BTreeCounter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check(10));
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        c.increment(10);
        h.join().unwrap();
        assert_eq!(c.stats().nodes_created, 1);
        assert_eq!(c.stats().nodes_freed, 1);
    }

    #[test]
    fn remove_satisfied_boundary() {
        let mut map = BTreeMap::new();
        for level in [1u64, 5, 6, 7] {
            map.insert(level, Arc::new(WaitNode::new(level)));
        }
        let out = BTreeCounter::remove_satisfied(&mut map, 6);
        let got: Vec<_> = out.iter().map(|n| n.level).collect();
        assert_eq!(got, vec![1, 5, 6]);
        assert_eq!(map.keys().copied().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn remove_satisfied_at_u64_max_takes_all() {
        let mut map = BTreeMap::new();
        map.insert(u64::MAX, Arc::new(WaitNode::new(u64::MAX)));
        let out = BTreeCounter::remove_satisfied(&mut map, u64::MAX);
        assert_eq!(out.len(), 1);
        assert!(map.is_empty());
    }

    #[test]
    fn timeout_cleans_map_entry() {
        let c = BTreeCounter::default();
        assert!(c.check_timeout(9, Duration::from_millis(30)).is_err());
        assert_eq!(c.stats().live_nodes, 0);
        // The abandoned waiter must also clear the waiters bit so increments
        // return to the fast path.
        c.increment(1);
        assert_eq!(c.stats().fast_increments, 1);
    }

    #[test]
    fn distinct_levels_distinct_nodes() {
        let c = Arc::new(BTreeCounter::default());
        let mut handles = Vec::new();
        for level in [3u64, 6, 9] {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || c.check(level)));
        }
        while c.stats().live_nodes < 3 {
            thread::yield_now();
        }
        c.increment(9);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.stats().nodes_created, 3);
    }

    #[test]
    fn poison_wakes_and_frees_all_nodes() {
        let c = Arc::new(BTreeCounter::default());
        let mut handles = Vec::new();
        for level in [4u64, 8, 12] {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || c.wait(level)));
        }
        while c.stats().live_waiters < 3 {
            thread::yield_now();
        }
        c.poison(FailureInfo::new("worker panicked"));
        for h in handles {
            assert!(matches!(h.join().unwrap(), Err(CheckError::Poisoned(_))));
        }
        let s = c.stats();
        assert_eq!(s.nodes_created, s.nodes_freed);
        assert_eq!(s.live_nodes, 0);
        // Satisfied waits still succeed; would-block waits still fail.
        c.increment(4);
        assert!(c.wait(4).is_ok());
        assert!(c.wait(5).is_err());
    }

    #[test]
    fn waiter_free_workload_stays_on_fast_path() {
        let c = BTreeCounter::builder().initial(5).build();
        c.check(3);
        c.increment(4);
        c.advance_to(100);
        let s = c.stats();
        assert_eq!(s.slow_path_entries, 0);
        assert_eq!(s.fast_checks, 1);
        assert_eq!(s.fast_increments, 2);
        assert_eq!(c.debug_value(), 100);
    }
}
