//! [`Obligation`]: RAII increment obligations.
//!
//! The paper's deadlock-freedom argument (Section 6) rests on every thread
//! delivering its increments. An `Obligation` makes that duty a value: the
//! guard either delivers its increment (normal drop or explicit
//! [`fulfill`](Obligation::fulfill)) or — when dropped during a panic unwind
//! — poisons the counter, so the threads depending on the increment fail
//! with a cause instead of hanging forever. This is the "who still owes
//! counts" discipline of the CountDownLatch verification literature, checked
//! at runtime instead of in a proof system.

use crate::error::FailureInfo;
use crate::traits::MonotonicCounter;
use crate::Value;

/// An RAII guard for the duty to increment a counter by a fixed amount.
///
/// Created by [`CounterExt::obligation`](crate::CounterExt::obligation). On a
/// normal drop the increment is delivered; on a drop during a panic unwind
/// the counter is poisoned instead, with the owed amount recorded as level
/// context. [`fulfill`](Self::fulfill) delivers early; [`abandon`](Self::abandon)
/// poisons deliberately.
///
/// # Example
///
/// ```
/// use mc_counter::{Counter, CounterExt, MonotonicCounter};
/// let c = Counter::default();
/// {
///     let _ob = c.obligation(2);
///     // ... produce the data the increment publishes ...
/// } // guard dropped normally: increment(2) delivered here
/// c.check(2);
/// ```
pub struct Obligation<'c, C: MonotonicCounter + ?Sized> {
    counter: &'c C,
    /// Amount still owed; zero once fulfilled or abandoned.
    owed: Value,
}

impl<'c, C: MonotonicCounter + ?Sized> Obligation<'c, C> {
    pub(crate) fn new(counter: &'c C, amount: Value) -> Self {
        Obligation {
            counter,
            owed: amount,
        }
    }

    /// The amount this obligation will deliver.
    pub fn owed(&self) -> Value {
        self.owed
    }

    /// Delivers the owed increment now, consuming the guard.
    pub fn fulfill(mut self) {
        self.counter.increment(self.owed);
        self.owed = 0;
    }

    /// Deliberately abandons the obligation, poisoning the counter with
    /// `info` (the owed amount is attached as level context). Use when a
    /// thread discovers it cannot produce what it promised without
    /// panicking.
    pub fn abandon(mut self, info: FailureInfo) {
        self.counter.poison(info.with_level(self.owed));
        self.owed = 0;
    }
}

impl<C: MonotonicCounter + ?Sized> Drop for Obligation<'_, C> {
    fn drop(&mut self) {
        if self.owed == 0 {
            return;
        }
        if std::thread::panicking() {
            // The panic payload is not reachable from Drop; supervised
            // execution (mc-sthreads) catches the panic and re-poisons with
            // the real payload — first-poison-wins makes that racy path
            // benign, and this guard guarantees waiters wake even without a
            // supervisor.
            self.counter.poison(
                FailureInfo::new("increment obligation abandoned by panicking thread")
                    .with_level(self.owed),
            );
        } else {
            self.counter.increment(self.owed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CheckError;
    use crate::traits::{CounterDiagnostics, CounterExt};
    use crate::Counter;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn normal_drop_delivers_the_increment() {
        let c = Counter::default();
        {
            let _ob = c.obligation(3);
            assert_eq!(c.debug_value(), 0, "nothing delivered while held");
        }
        assert_eq!(c.debug_value(), 3);
        assert!(c.poison_info().is_none());
    }

    #[test]
    fn fulfill_delivers_early_exactly_once() {
        let c = Counter::default();
        let ob = c.obligation(5);
        ob.fulfill();
        assert_eq!(c.debug_value(), 5, "fulfilled amount delivered once");
    }

    #[test]
    fn unwind_drop_poisons_with_owed_amount() {
        let c = Counter::default();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ob = c.obligation(7);
            panic!("producer exploded");
        }));
        assert!(result.is_err());
        assert_eq!(c.debug_value(), 0, "no increment from a failed producer");
        let info = c.poison_info().expect("unwind drop must poison");
        assert_eq!(info.level(), Some(7));
        assert!(info.message().contains("obligation abandoned"));
    }

    #[test]
    fn abandon_poisons_with_caller_cause() {
        let c = Counter::default();
        let ob = c.obligation(2);
        ob.abandon(FailureInfo::new("input file missing"));
        let info = c.poison_info().unwrap();
        assert_eq!(info.message(), "input file missing");
        assert_eq!(info.level(), Some(2));
    }

    #[test]
    fn panicking_holder_unblocks_waiters() {
        let c = Arc::new(Counter::default());
        let waiter = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.wait(10))
        };
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        let producer = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                let _ob = c.obligation(10);
                panic!("worker died mid-task");
            })
        };
        assert!(producer.join().is_err());
        let err = waiter.join().unwrap().unwrap_err();
        assert!(matches!(err, CheckError::Poisoned(_)));
    }

    #[test]
    fn obligation_works_through_dyn_counter() {
        let c: Box<dyn MonotonicCounter> = Box::new(Counter::default());
        {
            let _ob = c.obligation(1);
        }
        // `check` returning proves the increment was delivered.
        c.check(1);
    }
}
