//! [`Supervisor`]: a registry of counters that turns silent stalls into
//! wait-graph diagnostics.
//!
//! The paper's Section 6 guarantees deadlock-freedom only when every thread
//! delivers its increments. The supervisor closes the gap operationally: it
//! holds weak references to registered counters, tracks outstanding
//! [increment obligations](crate::Obligation), and on demand (or on a
//! no-progress interval, from a background watch thread) reports per counter
//! the value, the outstanding obligations, and the occupied waiting levels —
//! and distinguishes a counter that is **never satisfiable** (some waited
//! level exceeds `value + outstanding obligations`: no promised increment
//! can reach it) from one that is merely slow. Optionally it poisons
//! provably-stuck counters so the blocked threads fail with a cause.

use crate::builder::MetricsSink;
use crate::error::FailureInfo;
use crate::traits::{CounterDiagnostics, HealthStatus, MonotonicCounter, WaitingLevel};
use crate::Value;
use mc_metrics::{Event, Registry};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Lock recovery for the supervisor's internal mutexes: a thread that
/// panicked while holding one (a user clone mid-`register`, a tick that
/// unwound) must not cascade a `PoisonError` panic into unrelated threads —
/// in particular the background watch thread, whose silent death would turn
/// the stall detector itself into a silent stall. Every structure guarded
/// here (registry `Vec`, report `Option`, handle `Option`) is valid at every
/// intermediate step of its critical sections, so recovering the guard is
/// sound.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a supervisor needs from a counter: the synchronization surface (to
/// poison it) plus the diagnostics surface (to observe value and waiters).
///
/// Blanket-implemented for every type providing both, so any counter in this
/// crate — and any wrapper that forwards both traits — can be registered.
pub trait SupervisedCounter: MonotonicCounter + CounterDiagnostics {}

impl<C: MonotonicCounter + CounterDiagnostics + ?Sized> SupervisedCounter for C {}

/// Configuration for a [`Supervisor`]'s background watch thread.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// How often the watch thread samples the registered counters. Two
    /// consecutive samples with no value progress while threads wait produce
    /// a stall report.
    pub interval: Duration,
    /// When `true`, counters diagnosed [`StallVerdict::NeverSatisfiable`] in
    /// a stall report are poisoned, converting the hang into propagated
    /// failures.
    pub poison_stuck: bool,
    /// When set, a counter reporting [`HealthStatus::Degraded`] for longer
    /// than this deadline is force-poisoned by the watch thread: degraded
    /// mode is a *temporary* availability trade, and a disk that never comes
    /// back must eventually become a propagated failure rather than an
    /// unbounded replay queue. `None` (the default) never force-poisons.
    pub degrade_deadline: Option<Duration>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            interval: Duration::from_millis(200),
            poison_stuck: false,
            degrade_deadline: None,
        }
    }
}

/// Per-counter stall classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallVerdict {
    /// No thread is waiting on this counter.
    Idle,
    /// Threads wait, and every waited level is within reach of the value
    /// plus the outstanding obligations: progress is possible ("slow").
    Slow,
    /// Some waited level exceeds `value + outstanding obligations`: no
    /// promised increment can satisfy it, so the wait can never complete.
    NeverSatisfiable,
    /// The counter's producer is being restarted by a supervision tree
    /// (reported via [`Supervisor::note_restarting`]): the missing
    /// increments are expected back once the replacement worker runs, so
    /// the counter must be neither classified stuck nor poisoned while the
    /// restart is pending.
    Restarting {
        /// How many times the producer has been restarted so far.
        attempt: u32,
        /// The backoff delay before the replacement worker starts.
        next_backoff: Duration,
    },
}

impl StallVerdict {
    /// A stable machine-readable label for this verdict, independent of the
    /// variant's payload: `"idle"`, `"slow"`, `"never_satisfiable"`, or
    /// `"restarting"`. Used as a metric-name component by the observability
    /// layer ([`Supervisor::attach_metrics`] publishes
    /// `<prefix>.verdict.<label>`), so it must never change shape between
    /// releases.
    pub fn as_label(&self) -> &'static str {
        match self {
            StallVerdict::Idle => "idle",
            StallVerdict::Slow => "slow",
            StallVerdict::NeverSatisfiable => "never_satisfiable",
            StallVerdict::Restarting { .. } => "restarting",
        }
    }
}

impl fmt::Display for StallVerdict {
    /// A stable one-line rendering, consumed by log scrapers and the metrics
    /// exporter: the restarting backoff is canonical integer milliseconds
    /// (`backoff 8ms`), never `Debug` output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallVerdict::Idle => f.write_str("idle"),
            StallVerdict::Slow => f.write_str("slow"),
            StallVerdict::NeverSatisfiable => f.write_str("never satisfiable"),
            StallVerdict::Restarting {
                attempt,
                next_backoff,
            } => write!(
                f,
                "restarting (attempt {attempt}, backoff {}ms)",
                next_backoff.as_millis()
            ),
        }
    }
}

/// The observed state of one registered counter.
#[derive(Debug, Clone)]
pub struct CounterReport {
    /// The name the counter was registered under.
    pub name: String,
    /// The counter value at sampling time.
    pub value: Value,
    /// Sum of increment amounts still owed by live
    /// [supervised obligations](Supervisor::obligation).
    pub outstanding_obligations: Value,
    /// Occupied waiting levels (empty for implementations without
    /// introspectable queues).
    pub waiters: Vec<WaitingLevel>,
    /// The poisoning cause, if the counter is already poisoned.
    pub poisoned: Option<FailureInfo>,
    /// The stall classification for this counter.
    pub verdict: StallVerdict,
    /// The counter's backing-resource health at sampling time
    /// ([`CounterDiagnostics::health`], with poisoned taking precedence).
    pub health: HealthStatus,
}

impl fmt::Display for CounterReport {
    /// One log-friendly line:
    /// `'jobs': value 41 +5 owed, waiters [9×1], never satisfiable`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "'{}': value {} +{} owed",
            self.name, self.value, self.outstanding_obligations
        )?;
        if !self.waiters.is_empty() {
            write!(f, ", waiters [")?;
            for (i, w) in self.waiters.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}\u{d7}{}", w.level, w.threads)?;
            }
            write!(f, "]")?;
        }
        write!(f, ", {}", self.verdict)?;
        if let Some(info) = &self.poisoned {
            write!(f, ", poisoned: {}", info.message())?;
        }
        if self.health.is_degraded() {
            write!(f, ", {}", self.health)?;
        }
        Ok(())
    }
}

/// A wait-graph diagnostic over every registered counter.
#[derive(Debug, Clone)]
pub struct StallReport {
    /// One report per live registered counter.
    pub counters: Vec<CounterReport>,
}

impl StallReport {
    /// The counters whose waits can provably never complete.
    pub fn stuck(&self) -> Vec<&CounterReport> {
        self.counters
            .iter()
            .filter(|c| c.verdict == StallVerdict::NeverSatisfiable)
            .collect()
    }

    /// Whether any registered counter has waiting threads.
    pub fn has_waiters(&self) -> bool {
        self.counters.iter().any(|c| !c.waiters.is_empty())
    }

    /// The counters currently serving in degraded mode (backing resource
    /// down, operations queued for replay).
    pub fn degraded(&self) -> Vec<&CounterReport> {
        self.counters
            .iter()
            .filter(|c| c.health.is_degraded())
            .collect()
    }
}

impl fmt::Display for StallReport {
    /// One log-friendly line: a counter count followed by each counter's
    /// one-line [`CounterReport`] summary, `|`-separated.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stall report: {} counter(s)", self.counters.len())?;
        for c in &self.counters {
            write!(f, " | {c}")?;
        }
        Ok(())
    }
}

/// The outcome of recovering one durable counter from its on-disk state.
///
/// Produced by the durability layer (`mc-durable`) and collected by the
/// supervisor via [`Supervisor::note_recovery`] into a [`RecoveryReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterRecovery {
    /// The value the counter was restored to.
    pub value: Value,
    /// How many intact log records were replayed (on top of any snapshot).
    pub records_replayed: u64,
    /// Bytes discarded from a torn log tail (zero for a clean shutdown).
    pub tail_bytes_discarded: u64,
    /// Whether a persisted poison state was restored.
    pub poison_restored: bool,
}

/// One named entry in a [`RecoveryReport`].
#[derive(Debug, Clone)]
pub struct RecoveredCounter {
    /// The name the counter was recovered (and registered) under.
    pub name: String,
    /// The per-counter recovery outcome.
    pub recovery: CounterRecovery,
}

/// Aggregate crash-recovery summary over every counter whose recovery was
/// reported to this supervisor ([`Supervisor::note_recovery`]).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// One entry per reported recovery, in reporting order.
    pub counters: Vec<RecoveredCounter>,
}

impl RecoveryReport {
    /// How many counters were recovered.
    pub fn counters_recovered(&self) -> usize {
        self.counters.len()
    }

    /// Total log records replayed across all recoveries.
    pub fn records_replayed(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.recovery.records_replayed)
            .sum()
    }

    /// Total torn-tail bytes discarded across all recoveries.
    pub fn tail_bytes_discarded(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.recovery.tail_bytes_discarded)
            .sum()
    }

    /// How many recoveries restored a persisted poison state.
    pub fn poison_restored(&self) -> usize {
        self.counters
            .iter()
            .filter(|c| c.recovery.poison_restored)
            .count()
    }

    /// Whether any recovery has been reported.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl fmt::Display for RecoveryReport {
    /// One log-friendly line: aggregate totals followed by each counter's
    /// summary, `|`-separated.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery report: {} counter(s), {} record(s) replayed, {} torn byte(s) discarded",
            self.counters_recovered(),
            self.records_replayed(),
            self.tail_bytes_discarded()
        )?;
        for c in &self.counters {
            write!(
                f,
                " | '{}': value {}, {} replayed, {} discarded{}",
                c.name,
                c.recovery.value,
                c.recovery.records_replayed,
                c.recovery.tail_bytes_discarded,
                if c.recovery.poison_restored {
                    ", poison restored"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

struct Entry {
    name: String,
    counter: Weak<dyn SupervisedCounter>,
    /// Sum of amounts owed by live supervised obligations on this counter.
    obligations: Arc<AtomicU64>,
}

/// Supervision observability, attached via [`Supervisor::attach_metrics`].
/// Verdict tallies use the stable [`StallVerdict::as_label`] names; health
/// transitions are counted whenever a counter's
/// [`HealthStatus::as_label`] changes between diagnoses.
struct SupervisorMetrics {
    /// `diagnose` invocations (manual and watch-thread).
    diagnoses: Arc<Event>,
    /// Watch-thread samples.
    ticks: Arc<Event>,
    /// No-progress stall reports recorded by the watch thread.
    stall_reports: Arc<Event>,
    /// Producer restarts reported via [`Supervisor::note_restarting`].
    restarts_noted: Arc<Event>,
    /// Counters poisoned by this supervisor (stuck, degraded, or poison_all).
    poisons_issued: Arc<Event>,
    /// Counter health-label changes observed between diagnoses.
    health_transitions: Arc<Event>,
    /// Per-verdict tallies, one event per [`StallVerdict::as_label`] value.
    verdict_idle: Arc<Event>,
    verdict_slow: Arc<Event>,
    verdict_never_satisfiable: Arc<Event>,
    verdict_restarting: Arc<Event>,
    /// Last observed health label per counter name, for transition counting.
    last_health: Mutex<HashMap<String, &'static str>>,
}

impl SupervisorMetrics {
    fn attach(sink: &MetricsSink) -> Self {
        SupervisorMetrics {
            diagnoses: sink.event("diagnoses"),
            ticks: sink.event("ticks"),
            stall_reports: sink.event("stall_reports"),
            restarts_noted: sink.event("restarts_noted"),
            poisons_issued: sink.event("poisons_issued"),
            health_transitions: sink.event("health_transitions"),
            verdict_idle: sink.event("verdict.idle"),
            verdict_slow: sink.event("verdict.slow"),
            verdict_never_satisfiable: sink.event("verdict.never_satisfiable"),
            verdict_restarting: sink.event("verdict.restarting"),
            last_health: Mutex::new(HashMap::new()),
        }
    }

    /// Tallies one diagnose pass over `report`.
    fn record_diagnosis(&self, report: &StallReport) {
        self.diagnoses.incr();
        let mut last = lock_recover(&self.last_health);
        for c in &report.counters {
            match c.verdict {
                StallVerdict::Idle => self.verdict_idle.incr(),
                StallVerdict::Slow => self.verdict_slow.incr(),
                StallVerdict::NeverSatisfiable => self.verdict_never_satisfiable.incr(),
                StallVerdict::Restarting { .. } => self.verdict_restarting.incr(),
            }
            let label = c.health.as_label();
            if last
                .insert(c.name.clone(), label)
                .is_some_and(|p| p != label)
            {
                self.health_transitions.incr();
            }
        }
    }
}

/// Stop handshake for the watch thread. Lives in its own `Arc` so the
/// sleeping thread holds no strong reference to [`Shared`] — the last
/// [`Supervisor`] clone can then detect itself via `strong_count` and join.
struct StopSignal {
    stopped: Mutex<bool>,
    cv: Condvar,
}

struct Shared {
    entries: Mutex<Vec<Entry>>,
    /// Counters whose producer is mid-restart (`name -> (attempt,
    /// next_backoff)`), reported by a supervision tree via
    /// [`Supervisor::note_restarting`]. Overrides the stall verdict so the
    /// watch thread never poisons a counter whose increments are coming back.
    restarting: Mutex<HashMap<String, (u32, Duration)>>,
    last_report: Mutex<Option<StallReport>>,
    recoveries: Mutex<RecoveryReport>,
    watch: Mutex<Option<JoinHandle<()>>>,
    /// Set (to `true`) by the watch thread as its very last action, even on
    /// unwind. Lets tests assert the thread was actually reaped.
    watch_exited: Mutex<Option<Arc<AtomicBool>>>,
    stop: Arc<StopSignal>,
    /// Number of live user-held `Supervisor` clones. The watch thread's
    /// transient upgrade of its `Weak<Shared>` during a tick makes
    /// `Arc::strong_count` unreliable for last-clone detection, so clones
    /// are counted explicitly: the drop that brings this to zero stops and
    /// joins the watch thread.
    user_clones: AtomicUsize,
    config: SupervisorConfig,
    /// Observability hooks, attached (at most once) via
    /// [`Supervisor::attach_metrics`]. `None` — the default — records
    /// nothing.
    metrics: Mutex<Option<SupervisorMetrics>>,
}

impl Shared {
    fn with_metrics(&self, f: impl FnOnce(&SupervisorMetrics)) {
        if let Some(m) = lock_recover(&self.metrics).as_ref() {
            f(m);
        }
    }
}

/// A registry of counters with stall diagnostics; cheaply cloneable (clones
/// share the registry). See the module docs.
///
/// # Example
///
/// ```
/// use mc_counter::{Counter, Supervisor, StallVerdict, MonotonicCounter};
/// use std::sync::Arc;
///
/// let sup = Supervisor::new();
/// let done = Arc::new(Counter::default());
/// sup.register("done", &done);
/// let report = sup.diagnose();
/// assert_eq!(report.counters[0].verdict, StallVerdict::Idle);
/// ```
pub struct Supervisor {
    shared: Arc<Shared>,
}

impl Default for Supervisor {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Supervisor {
    fn clone(&self) -> Self {
        self.shared.user_clones.fetch_add(1, Relaxed);
        Supervisor {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Supervisor {
    /// Creates a supervisor with the default configuration (no watch thread
    /// until [`start`](Self::start) is called).
    pub fn new() -> Self {
        Self::with_config(SupervisorConfig::default())
    }

    /// Creates a supervisor with an explicit configuration.
    pub fn with_config(config: SupervisorConfig) -> Self {
        Supervisor {
            shared: Arc::new(Shared {
                entries: Mutex::new(Vec::new()),
                restarting: Mutex::new(HashMap::new()),
                last_report: Mutex::new(None),
                recoveries: Mutex::new(RecoveryReport::default()),
                watch: Mutex::new(None),
                watch_exited: Mutex::new(None),
                stop: Arc::new(StopSignal {
                    stopped: Mutex::new(false),
                    cv: Condvar::new(),
                }),
                user_clones: AtomicUsize::new(1),
                config,
                metrics: Mutex::new(None),
            }),
        }
    }

    /// Publishes this supervisor's metrics under `prefix` in `registry`:
    /// `diagnoses`, `ticks`, `stall_reports`, `restarts_noted`,
    /// `poisons_issued`, `health_transitions`, and per-verdict tallies
    /// `verdict.<label>` (the stable [`StallVerdict::as_label`] names).
    /// Shared across clones; attaching again replaces the previous sink.
    pub fn attach_metrics(&self, registry: &Arc<Registry>, prefix: impl Into<String>) {
        let sink = MetricsSink::new(Arc::clone(registry), prefix);
        *lock_recover(&self.shared.metrics) = Some(SupervisorMetrics::attach(&sink));
    }

    /// Registers `counter` under `name`. The supervisor holds only a weak
    /// reference: a dropped counter silently leaves the registry.
    pub fn register<C>(&self, name: impl Into<String>, counter: &Arc<C>)
    where
        C: SupervisedCounter + 'static,
    {
        let weak: Weak<dyn SupervisedCounter> = Arc::downgrade(counter) as _;
        lock_recover(&self.shared.entries).push(Entry {
            name: name.into(),
            counter: weak,
            obligations: Arc::new(AtomicU64::new(0)),
        });
    }

    /// [`register`](Self::register) for a counter that is already
    /// type-erased (`Arc<dyn SupervisedCounter>`) — how supervision trees
    /// register the counters their child specs collected.
    pub fn register_dyn(&self, name: impl Into<String>, counter: &Arc<dyn SupervisedCounter>) {
        lock_recover(&self.shared.entries).push(Entry {
            name: name.into(),
            counter: Arc::downgrade(counter),
            obligations: Arc::new(AtomicU64::new(0)),
        });
    }

    /// Removes every entry registered under `name`; returns `true` when at
    /// least one entry was removed. Any pending
    /// [`note_restarting`](Self::note_restarting) state for `name` is
    /// discarded with it.
    ///
    /// Unregistering is optional — a dropped counter leaves the registry on
    /// its own — but lets a supervision tree retire a child's counters
    /// eagerly while other clones still hold the `Arc`.
    pub fn unregister(&self, name: &str) -> bool {
        let removed = {
            let mut entries = lock_recover(&self.shared.entries);
            let before = entries.len();
            entries.retain(|e| e.name != name);
            entries.len() != before
        };
        lock_recover(&self.shared.restarting).remove(name);
        removed
    }

    /// Marks the counter registered under `name` as having its producer
    /// restarted: until [`clear_restarting`](Self::clear_restarting), its
    /// stall verdict is [`StallVerdict::Restarting`] — never
    /// [`NeverSatisfiable`](StallVerdict::NeverSatisfiable) — so the watch
    /// thread will not poison it while the replacement worker is pending.
    pub fn note_restarting(&self, name: impl Into<String>, attempt: u32, next_backoff: Duration) {
        self.shared.with_metrics(|m| m.restarts_noted.incr());
        lock_recover(&self.shared.restarting).insert(name.into(), (attempt, next_backoff));
    }

    /// Clears a pending [`note_restarting`](Self::note_restarting) mark
    /// (normally when the replacement worker starts); returns `true` when a
    /// mark was present.
    pub fn clear_restarting(&self, name: &str) -> bool {
        lock_recover(&self.shared.restarting).remove(name).is_some()
    }

    /// Takes on a supervised obligation to increment the counter registered
    /// under `name` by `amount`: like
    /// [`CounterExt::obligation`](crate::CounterExt::obligation)
    /// (delivers on normal drop, poisons on unwind-drop), and additionally
    /// counted in [`CounterReport::outstanding_obligations`] so the
    /// supervisor can tell "increment still owed" from "never coming".
    ///
    /// Returns `None` when no live counter is registered under `name`.
    pub fn obligation(&self, name: &str, amount: Value) -> Option<SupervisedObligation> {
        let entries = lock_recover(&self.shared.entries);
        let entry = entries.iter().find(|e| e.name == name)?;
        let counter = entry.counter.upgrade()?;
        entry.obligations.fetch_add(amount, Relaxed);
        Some(SupervisedObligation {
            counter,
            tracker: Arc::clone(&entry.obligations),
            owed: amount,
        })
    }

    /// Like [`obligation`](Self::obligation), but the unwind-drop behavior
    /// is **rollback** instead of poison: the owed amount is released from
    /// the supervisor's accounting and the counter is left untouched. Used
    /// by supervision trees, where a panicking worker's obligations must be
    /// neither fulfilled (the replacement re-acquires them) nor leaked
    /// (which would inflate the reachability math) nor poisoned (the tree,
    /// not the obligation, decides restart-versus-escalate).
    ///
    /// Returns `None` when no live counter is registered under `name`.
    pub fn restartable_obligation(
        &self,
        name: &str,
        amount: Value,
    ) -> Option<RestartableObligation> {
        let entries = lock_recover(&self.shared.entries);
        let entry = entries.iter().find(|e| e.name == name)?;
        let counter = entry.counter.upgrade()?;
        entry.obligations.fetch_add(amount, Relaxed);
        Some(RestartableObligation {
            counter,
            tracker: Arc::clone(&entry.obligations),
            owed: amount,
        })
    }

    /// Samples every live registered counter and classifies its stall state.
    pub fn diagnose(&self) -> StallReport {
        Self::diagnose_shared(&self.shared)
    }

    fn diagnose_shared(shared: &Shared) -> StallReport {
        let restarting = lock_recover(&shared.restarting).clone();
        let entries = lock_recover(&shared.entries);
        let mut counters = Vec::with_capacity(entries.len());
        for e in entries.iter() {
            let Some(c) = e.counter.upgrade() else {
                continue;
            };
            let value = c.debug_value();
            let outstanding = e.obligations.load(Relaxed);
            let waiters = c.waiters();
            let reach = value.saturating_add(outstanding);
            let verdict = if let Some(&(attempt, next_backoff)) = restarting.get(&e.name) {
                // A pending restart overrides the reachability math: the
                // failed producer's obligations were rolled back, so waits
                // can look never-satisfiable exactly while the replacement
                // that will satisfy them is being scheduled.
                StallVerdict::Restarting {
                    attempt,
                    next_backoff,
                }
            } else if waiters.is_empty() {
                StallVerdict::Idle
            } else if waiters.iter().any(|w| w.level > reach) {
                StallVerdict::NeverSatisfiable
            } else {
                StallVerdict::Slow
            };
            let poisoned = c.poison_info();
            let health = if poisoned.is_some() {
                HealthStatus::Poisoned
            } else {
                c.health()
            };
            counters.push(CounterReport {
                name: e.name.clone(),
                value,
                outstanding_obligations: outstanding,
                waiters,
                poisoned,
                verdict,
                health,
            });
        }
        drop(entries);
        let report = StallReport { counters };
        shared.with_metrics(|m| m.record_diagnosis(&report));
        report
    }

    /// Poisons every live registered counter with `info`. Used by deadline
    /// supervision ([`run_with_deadline`]) to unblock and terminate a stuck
    /// program's threads.
    ///
    /// [`run_with_deadline`]: https://docs.rs/mc-sthreads
    pub fn poison_all(&self, info: FailureInfo) {
        // Upgrade under the lock, poison outside it: a durable counter's
        // poison() blocks until its flusher acknowledges (up to a resync
        // interval while degraded), and register()/diagnose() must not
        // stall behind that.
        let targets: Vec<_> = {
            let entries = lock_recover(&self.shared.entries);
            entries.iter().filter_map(|e| e.counter.upgrade()).collect()
        };
        self.shared
            .with_metrics(|m| m.poisons_issued.add(targets.len() as u64));
        for c in targets {
            c.poison(info.clone());
        }
    }

    /// Poisons the counters currently diagnosed
    /// [`StallVerdict::NeverSatisfiable`]; returns how many were poisoned.
    pub fn poison_stuck(&self, info: FailureInfo) -> usize {
        let report = self.diagnose();
        // Upgrade under the lock, poison after dropping it (see
        // [`poison_all`](Self::poison_all)).
        let targets: Vec<_> = {
            let entries = lock_recover(&self.shared.entries);
            report
                .stuck()
                .into_iter()
                .filter_map(|c| {
                    entries
                        .iter()
                        .find(|e| e.name == c.name)
                        .and_then(|e| e.counter.upgrade())
                })
                .collect()
        };
        let poisoned = targets.len();
        self.shared
            .with_metrics(|m| m.poisons_issued.add(poisoned as u64));
        for counter in targets {
            counter.poison(info.clone());
        }
        poisoned
    }

    /// Force-poisons every registered counter that has been
    /// [`HealthStatus::Degraded`] for at least `deadline`, with `info` as
    /// the cause; returns how many were poisoned. The watch thread calls
    /// this automatically when [`SupervisorConfig::degrade_deadline`] is
    /// set.
    pub fn poison_degraded(&self, deadline: Duration, info: FailureInfo) -> usize {
        Self::poison_degraded_shared(&self.shared, &self.diagnose(), deadline, Some(info))
    }

    fn poison_degraded_shared(
        shared: &Shared,
        report: &StallReport,
        deadline: Duration,
        info: Option<FailureInfo>,
    ) -> usize {
        // Collect the targets (and their causes) under the lock, then
        // poison after dropping it: a degraded durable counter's poison()
        // blocks until the flusher's next serve/ack tick — up to a resync
        // interval — and every register()/diagnose()/obligation() call
        // would stall behind that.
        let mut targets = Vec::new();
        {
            let entries = lock_recover(&shared.entries);
            for c in &report.counters {
                let HealthStatus::Degraded { since, queued } = c.health else {
                    continue;
                };
                if since.elapsed() < deadline {
                    continue;
                }
                if let Some(counter) = entries
                    .iter()
                    .find(|e| e.name == c.name)
                    .and_then(|e| e.counter.upgrade())
                {
                    let cause = info.clone().unwrap_or_else(|| {
                        FailureInfo::new(format!(
                            "supervisor: counter '{}' degraded beyond deadline ({deadline:?}, \
                             {queued} queued record(s) unsynced)",
                            c.name
                        ))
                    });
                    targets.push((counter, cause));
                }
            }
        }
        let poisoned = targets.len();
        shared.with_metrics(|m| m.poisons_issued.add(poisoned as u64));
        for (counter, cause) in targets {
            counter.poison(cause);
        }
        poisoned
    }

    /// The stall report produced by the watch thread's most recent
    /// no-progress interval, if any.
    pub fn last_report(&self) -> Option<StallReport> {
        lock_recover(&self.shared.last_report).clone()
    }

    /// Starts the background watch thread (idempotent). Every
    /// [`SupervisorConfig::interval`] it samples the registry; an interval
    /// with no value progress while threads wait records a stall report
    /// (see [`last_report`](Self::last_report)) and — with
    /// [`SupervisorConfig::poison_stuck`] — poisons provably-stuck counters.
    pub fn start(&self) {
        let mut watch = lock_recover(&self.shared.watch);
        if watch.is_some() {
            return;
        }
        let weak = Arc::downgrade(&self.shared);
        let stop = Arc::clone(&self.shared.stop);
        let interval = self.shared.config.interval;
        let exited = Arc::new(AtomicBool::new(false));
        *lock_recover(&self.shared.watch_exited) = Some(Arc::clone(&exited));
        let handle = std::thread::Builder::new()
            .name("mc-supervisor".into())
            .spawn(move || {
                // Raised even if a tick unwinds, so drop-join regression
                // tests can observe that the loop actually terminated.
                struct ExitFlag(Arc<AtomicBool>);
                impl Drop for ExitFlag {
                    fn drop(&mut self) {
                        self.0.store(true, Relaxed);
                    }
                }
                let _exit = ExitFlag(exited);
                let mut prev: HashMap<String, Value> = HashMap::new();
                loop {
                    {
                        let stopped = lock_recover(&stop.stopped);
                        if *stopped {
                            break;
                        }
                        let (stopped, _) = stop
                            .cv
                            .wait_timeout(stopped, interval)
                            .unwrap_or_else(PoisonError::into_inner);
                        if *stopped {
                            break;
                        }
                    }
                    let Some(shared) = weak.upgrade() else {
                        break;
                    };
                    Self::tick(&shared, &mut prev);
                }
            })
            .expect("failed to spawn supervisor watch thread");
        *watch = Some(handle);
    }

    /// Records the outcome of recovering a durable counter (normally called
    /// by the durability layer right after `recover`/`open`). Accumulated
    /// into [`recovery_report`](Self::recovery_report).
    pub fn note_recovery(&self, name: impl Into<String>, recovery: CounterRecovery) {
        lock_recover(&self.shared.recoveries)
            .counters
            .push(RecoveredCounter {
                name: name.into(),
                recovery,
            });
    }

    /// The accumulated crash-recovery summary: every recovery reported via
    /// [`note_recovery`](Self::note_recovery) since this supervisor was
    /// created.
    pub fn recovery_report(&self) -> RecoveryReport {
        lock_recover(&self.shared.recoveries).clone()
    }

    /// One watch-thread sample: diagnose, enforce the degrade deadline,
    /// detect no-progress, record/poison.
    fn tick(shared: &Shared, prev: &mut HashMap<String, Value>) {
        shared.with_metrics(|m| m.ticks.incr());
        let report = Self::diagnose_shared(shared);
        // Degrade-deadline enforcement runs on every tick, independent of
        // the no-progress detector: a degraded counter can keep making
        // in-memory progress forever while its replay queue never drains.
        if let Some(deadline) = shared.config.degrade_deadline {
            Self::poison_degraded_shared(shared, &report, deadline, None);
        }
        let progressed = report
            .counters
            .iter()
            .any(|c| prev.get(&c.name).is_none_or(|&v| v != c.value));
        *prev = report
            .counters
            .iter()
            .map(|c| (c.name.clone(), c.value))
            .collect();
        if progressed || !report.has_waiters() {
            return;
        }
        if shared.config.poison_stuck {
            // Upgrade under the lock, poison after dropping it (see
            // `poison_degraded_shared`): poison() may block on a flusher
            // tick, and the registry must stay responsive meanwhile.
            let targets: Vec<_> = {
                let entries = lock_recover(&shared.entries);
                report
                    .stuck()
                    .into_iter()
                    .filter_map(|c| {
                        entries
                            .iter()
                            .find(|e| e.name == c.name)
                            .and_then(|e| e.counter.upgrade())
                            .map(|counter| {
                                (
                                    counter,
                                    FailureInfo::new(format!(
                                        "supervisor: counter '{}' is stuck (value {} + {} \
                                         outstanding obligations cannot satisfy waited levels)",
                                        c.name, c.value, c.outstanding_obligations
                                    )),
                                )
                            })
                    })
                    .collect()
            };
            shared.with_metrics(|m| m.poisons_issued.add(targets.len() as u64));
            for (counter, cause) in targets {
                counter.poison(cause);
            }
        }
        shared.with_metrics(|m| m.stall_reports.incr());
        *lock_recover(&shared.last_report) = Some(report);
    }

    /// Stops the watch thread and waits for it to exit (no-op if never
    /// started). Also called automatically when the last clone is dropped.
    pub fn stop(&self) {
        {
            let mut stopped = lock_recover(&self.shared.stop.stopped);
            *stopped = true;
        }
        self.shared.stop.cv.notify_all();
        if let Some(h) = lock_recover(&self.shared.watch).take() {
            let _ = h.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        // `Arc::strong_count` would race with the watch thread's transient
        // `Weak::upgrade` during a tick (count momentarily 2 while the last
        // user clone drops, leaking the thread unjoined). The explicit clone
        // count has no such window: exactly one drop observes 1 -> 0, and
        // that drop stops and joins the watch thread.
        if self.shared.user_clones.fetch_sub(1, Relaxed) == 1 {
            self.stop();
        }
    }
}

/// A supervised increment obligation: the RAII contract of
/// [`Obligation`](crate::Obligation) (deliver on normal drop, poison on
/// unwind-drop), plus supervisor accounting — while the guard lives its
/// amount is counted in [`CounterReport::outstanding_obligations`].
pub struct SupervisedObligation {
    counter: Arc<dyn SupervisedCounter>,
    tracker: Arc<AtomicU64>,
    owed: Value,
}

impl SupervisedObligation {
    /// The amount this obligation will deliver.
    pub fn owed(&self) -> Value {
        self.owed
    }

    /// Delivers the owed increment now, consuming the guard.
    pub fn fulfill(mut self) {
        self.resolve(false);
    }

    fn resolve(&mut self, panicking: bool) {
        if self.owed == 0 {
            return;
        }
        let owed = self.owed;
        self.owed = 0;
        self.tracker.fetch_sub(owed, Relaxed);
        if panicking {
            self.counter.poison(
                FailureInfo::new("increment obligation abandoned by panicking thread")
                    .with_level(owed),
            );
        } else {
            self.counter.increment(owed);
        }
    }
}

impl Drop for SupervisedObligation {
    fn drop(&mut self) {
        self.resolve(std::thread::panicking());
    }
}

/// A restart-aware increment obligation
/// ([`Supervisor::restartable_obligation`]): delivers on normal drop like
/// [`SupervisedObligation`], but an unwind-drop **rolls the obligation
/// back** — accounting released, counter untouched — instead of poisoning.
/// The supervision tree owning the worker then either starts a replacement
/// (which re-acquires the obligation) or escalates and poisons with the
/// root cause itself.
pub struct RestartableObligation {
    counter: Arc<dyn SupervisedCounter>,
    tracker: Arc<AtomicU64>,
    owed: Value,
}

impl RestartableObligation {
    /// The amount this obligation will deliver.
    pub fn owed(&self) -> Value {
        self.owed
    }

    /// Delivers the owed increment now, consuming the guard.
    pub fn fulfill(mut self) {
        self.resolve(false);
    }

    /// Rolls the obligation back explicitly — accounting released, counter
    /// untouched — consuming the guard. Equivalent to what an unwind-drop
    /// does; useful when a worker observes a cooperative abort and wants to
    /// hand its outstanding work back before returning normally.
    pub fn rollback(mut self) {
        self.resolve(true);
    }

    fn resolve(&mut self, rollback: bool) {
        if self.owed == 0 {
            return;
        }
        let owed = self.owed;
        self.owed = 0;
        self.tracker.fetch_sub(owed, Relaxed);
        if !rollback {
            self.counter.increment(owed);
        }
    }
}

impl Drop for RestartableObligation {
    fn drop(&mut self) {
        self.resolve(std::thread::panicking());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CheckError;
    use crate::{Counter, SpinCounter};
    use std::thread;

    #[test]
    fn empty_supervisor_reports_nothing() {
        let sup = Supervisor::new();
        let report = sup.diagnose();
        assert!(report.counters.is_empty());
        assert!(!report.has_waiters());
        assert!(report.stuck().is_empty());
    }

    #[test]
    fn idle_counter_is_idle() {
        let sup = Supervisor::new();
        let c = Arc::new(Counter::default());
        sup.register("c", &c);
        c.increment(4);
        let report = sup.diagnose();
        assert_eq!(report.counters.len(), 1);
        assert_eq!(report.counters[0].value, 4);
        assert_eq!(report.counters[0].verdict, StallVerdict::Idle);
    }

    #[test]
    fn dropped_counter_leaves_the_registry() {
        let sup = Supervisor::new();
        let c = Arc::new(Counter::default());
        sup.register("gone", &c);
        drop(c);
        assert!(sup.diagnose().counters.is_empty());
    }

    #[test]
    fn stuck_vs_slow_distinction() {
        let sup = Supervisor::new();
        let slow = Arc::new(Counter::default());
        let stuck = Arc::new(Counter::default());
        sup.register("slow", &slow);
        sup.register("stuck", &stuck);

        // "slow": a waiter at level 2, with an obligation for 5 outstanding
        // — satisfiable once the obligation is delivered.
        let ob = sup.obligation("slow", 5).unwrap();
        let slow2 = Arc::clone(&slow);
        let h_slow = thread::spawn(move || slow2.wait(2));
        // "stuck": a waiter at level 9 with nothing promised.
        let stuck2 = Arc::clone(&stuck);
        let h_stuck = thread::spawn(move || stuck2.wait_timeout(9, Duration::from_secs(10)));
        while slow.waiters().is_empty() || stuck.waiters().is_empty() {
            thread::yield_now();
        }

        let report = sup.diagnose();
        let by_name = |n: &str| report.counters.iter().find(|c| c.name == n).unwrap();
        assert_eq!(by_name("slow").verdict, StallVerdict::Slow);
        assert_eq!(by_name("slow").outstanding_obligations, 5);
        assert_eq!(by_name("stuck").verdict, StallVerdict::NeverSatisfiable);
        let shown = report.to_string();
        assert!(shown.contains("never satisfiable"), "got: {shown}");

        // Poisoning only the stuck counter releases its waiter with a cause
        // while the slow one proceeds normally.
        assert_eq!(sup.poison_stuck(FailureInfo::new("diagnosed stall")), 1);
        assert!(matches!(
            h_stuck.join().unwrap(),
            Err(CheckError::Poisoned(_))
        ));
        ob.fulfill();
        assert!(h_slow.join().unwrap().is_ok());
        assert!(slow.poison_info().is_none(), "slow counter untouched");
    }

    #[test]
    fn obligation_accounting_tracks_lifecycle() {
        let sup = Supervisor::new();
        let c = Arc::new(Counter::default());
        sup.register("c", &c);
        let ob = sup.obligation("c", 3).unwrap();
        assert_eq!(sup.diagnose().counters[0].outstanding_obligations, 3);
        ob.fulfill();
        assert_eq!(sup.diagnose().counters[0].outstanding_obligations, 0);
        assert_eq!(c.debug_value(), 3);
        assert!(sup.obligation("missing", 1).is_none());
    }

    #[test]
    fn supervised_obligation_poisons_on_unwind() {
        let sup = Supervisor::new();
        let c = Arc::new(Counter::default());
        sup.register("c", &c);
        let sup2 = sup.clone();
        let h = thread::spawn(move || {
            let _ob = sup2.obligation("c", 4).unwrap();
            panic!("supervised producer died");
        });
        assert!(h.join().is_err());
        assert!(c.poison_info().is_some());
        assert_eq!(
            sup.diagnose().counters[0].outstanding_obligations,
            0,
            "abandoned obligation must release its accounting"
        );
    }

    #[test]
    fn watch_thread_diagnoses_and_poisons_stuck_counter() {
        let sup = Supervisor::with_config(SupervisorConfig {
            interval: Duration::from_millis(20),
            poison_stuck: true,
            degrade_deadline: None,
        });
        let c = Arc::new(Counter::default());
        sup.register("stuck", &c);
        sup.start();
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.wait(100));
        // The waiter blocks at level 100 with no obligations: within two
        // intervals the watch thread must poison it.
        let err = h.join().unwrap().unwrap_err();
        let CheckError::Poisoned(info) = err else {
            panic!("expected poisoning, got {err:?}");
        };
        assert!(info.message().contains("stuck"), "got: {}", info.message());
        let report = sup.last_report().expect("stall report recorded");
        assert_eq!(report.counters[0].verdict, StallVerdict::NeverSatisfiable);
        sup.stop();
    }

    #[test]
    fn watch_thread_leaves_progressing_counters_alone() {
        let sup = Supervisor::with_config(SupervisorConfig {
            interval: Duration::from_millis(10),
            poison_stuck: true,
            degrade_deadline: None,
        });
        let c = Arc::new(Counter::default());
        sup.register("busy", &c);
        sup.start();
        // Keep making progress: the supervisor must never poison.
        for _ in 0..10 {
            c.increment(1);
            thread::sleep(Duration::from_millis(5));
        }
        assert!(c.poison_info().is_none());
        sup.stop();
    }

    #[test]
    fn drop_of_last_clone_joins_watch_thread() {
        let sup = Supervisor::with_config(SupervisorConfig {
            interval: Duration::from_millis(10),
            poison_stuck: false,
            degrade_deadline: None,
        });
        sup.start();
        let clone = sup.clone();
        drop(sup);
        drop(clone); // must not hang and must reap the thread
    }

    /// Regression test for the drop/join race: `Arc::strong_count` could see
    /// the watch thread's transient upgrade mid-tick and skip the join,
    /// leaking the thread. Drop must always reap it — asserted via a flag
    /// the watch loop sets on exit.
    #[test]
    fn drop_always_reaps_watch_thread() {
        for _ in 0..50 {
            let sup = Supervisor::with_config(SupervisorConfig {
                // Zero interval keeps the thread ticking (and thus holding
                // its transient strong reference) almost continuously, which
                // is exactly the window the old strong_count check raced with.
                interval: Duration::from_millis(0),
                poison_stuck: false,
                degrade_deadline: None,
            });
            let c = Arc::new(Counter::default());
            sup.register("c", &c);
            sup.start();
            let exited = sup
                .shared
                .watch_exited
                .lock()
                .unwrap()
                .clone()
                .expect("watch thread started");
            drop(sup);
            assert!(
                exited.load(Relaxed),
                "watch thread survived supervisor drop"
            );
        }
    }

    #[test]
    fn recovery_report_accumulates_and_displays() {
        let sup = Supervisor::new();
        assert!(sup.recovery_report().is_empty());
        sup.note_recovery(
            "jobs",
            CounterRecovery {
                value: 41,
                records_replayed: 7,
                tail_bytes_discarded: 13,
                poison_restored: false,
            },
        );
        sup.clone().note_recovery(
            "stage",
            CounterRecovery {
                value: 5,
                records_replayed: 2,
                tail_bytes_discarded: 0,
                poison_restored: true,
            },
        );
        let report = sup.recovery_report();
        assert_eq!(report.counters_recovered(), 2);
        assert_eq!(report.records_replayed(), 9);
        assert_eq!(report.tail_bytes_discarded(), 13);
        assert_eq!(report.poison_restored(), 1);
        let shown = report.to_string();
        assert!(
            shown.contains("'jobs'") && shown.contains("poison restored"),
            "got: {shown}"
        );
    }

    #[test]
    fn unregister_removes_entries_and_restart_marks() {
        let sup = Supervisor::new();
        let c = Arc::new(Counter::default());
        sup.register("gone", &c);
        sup.register("kept", &c);
        sup.note_restarting("gone", 1, Duration::from_millis(5));
        assert!(sup.unregister("gone"));
        assert!(!sup.unregister("gone"), "second unregister finds nothing");
        let report = sup.diagnose();
        assert_eq!(report.counters.len(), 1);
        assert_eq!(report.counters[0].name, "kept");
        assert!(
            !sup.clear_restarting("gone"),
            "unregister must discard the restart mark"
        );
    }

    #[test]
    fn restarting_mark_overrides_never_satisfiable() {
        let sup = Supervisor::new();
        let c = Arc::new(Counter::default());
        sup.register("worker", &c);
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.wait_timeout(9, Duration::from_secs(10)));
        while c.waiters().is_empty() {
            thread::yield_now();
        }
        assert_eq!(
            sup.diagnose().counters[0].verdict,
            StallVerdict::NeverSatisfiable
        );
        sup.note_restarting("worker", 2, Duration::from_millis(8));
        let report = sup.diagnose();
        assert_eq!(
            report.counters[0].verdict,
            StallVerdict::Restarting {
                attempt: 2,
                next_backoff: Duration::from_millis(8),
            }
        );
        assert!(
            report.stuck().is_empty(),
            "a restarting counter is never classified stuck"
        );
        assert_eq!(
            sup.poison_stuck(FailureInfo::new("diagnosed stall")),
            0,
            "poison_stuck must spare restarting counters"
        );
        let shown = report.to_string();
        assert!(shown.contains("restarting (attempt 2"), "got: {shown}");
        assert!(sup.clear_restarting("worker"));
        assert_eq!(
            sup.diagnose().counters[0].verdict,
            StallVerdict::NeverSatisfiable,
            "clearing the mark restores the reachability verdict"
        );
        c.increment(9);
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn watch_thread_spares_restarting_counter() {
        let sup = Supervisor::with_config(SupervisorConfig {
            interval: Duration::from_millis(10),
            poison_stuck: true,
            degrade_deadline: None,
        });
        let c = Arc::new(Counter::default());
        sup.register("restarting", &c);
        sup.note_restarting("restarting", 1, Duration::from_millis(50));
        sup.start();
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.wait_timeout(50, Duration::from_secs(10)));
        while c.waiters().is_empty() {
            thread::yield_now();
        }
        // Give the watch thread several intervals to (wrongly) poison.
        thread::sleep(Duration::from_millis(60));
        assert!(
            c.poison_info().is_none(),
            "watch thread must not poison a counter whose producer is restarting"
        );
        c.increment(50);
        assert!(h.join().unwrap().is_ok());
        sup.stop();
    }

    #[test]
    fn restartable_obligation_rolls_back_on_unwind() {
        let sup = Supervisor::new();
        let c = Arc::new(Counter::default());
        sup.register("c", &c);
        let sup2 = sup.clone();
        let h = thread::spawn(move || {
            let ob = sup2.restartable_obligation("c", 4).unwrap();
            assert_eq!(ob.owed(), 4);
            panic!("worker died; the tree will restart it");
        });
        assert!(h.join().is_err());
        assert!(
            c.poison_info().is_none(),
            "rollback must not poison — the tree decides restart vs escalate"
        );
        assert_eq!(c.debug_value(), 0, "rollback must not increment");
        assert_eq!(
            sup.diagnose().counters[0].outstanding_obligations,
            0,
            "rollback must release the accounting"
        );
        // The replacement re-acquires and fulfills.
        sup.restartable_obligation("c", 4).unwrap().fulfill();
        assert_eq!(c.debug_value(), 4);
        // Explicit rollback behaves like the unwind path.
        let ob = sup.restartable_obligation("c", 2).unwrap();
        ob.rollback();
        assert_eq!(c.debug_value(), 4);
        assert_eq!(sup.diagnose().counters[0].outstanding_obligations, 0);
        assert!(sup.restartable_obligation("missing", 1).is_none());
    }

    #[test]
    fn counter_report_displays_on_one_line() {
        let sup = Supervisor::new();
        let c = Arc::new(Counter::default());
        sup.register("jobs", &c);
        c.increment(3);
        let _ob = sup.obligation("jobs", 5).unwrap();
        let report = sup.diagnose();
        let line = report.counters[0].to_string();
        assert!(!line.contains('\n'), "one line, got: {line:?}");
        assert!(line.contains("'jobs'") && line.contains("value 3") && line.contains("+5 owed"));
        assert!(line.contains("idle"), "got: {line}");
        c.poison(FailureInfo::new("exploded"));
        let line = sup.diagnose().counters[0].to_string();
        assert!(line.contains("poisoned: exploded"), "got: {line}");
        let stall = sup.diagnose().to_string();
        assert!(
            !stall.contains('\n'),
            "stall report one line, got: {stall:?}"
        );
    }

    #[test]
    fn verdict_display_and_labels_are_stable() {
        // Pinned: the metrics exporter and log scrapers consume these forms.
        assert_eq!(StallVerdict::Idle.to_string(), "idle");
        assert_eq!(StallVerdict::Slow.to_string(), "slow");
        assert_eq!(
            StallVerdict::NeverSatisfiable.to_string(),
            "never satisfiable"
        );
        let restarting = StallVerdict::Restarting {
            attempt: 3,
            next_backoff: Duration::from_millis(250),
        };
        assert_eq!(
            restarting.to_string(),
            "restarting (attempt 3, backoff 250ms)"
        );
        assert_eq!(StallVerdict::Idle.as_label(), "idle");
        assert_eq!(StallVerdict::Slow.as_label(), "slow");
        assert_eq!(
            StallVerdict::NeverSatisfiable.as_label(),
            "never_satisfiable"
        );
        assert_eq!(restarting.as_label(), "restarting");
    }

    #[test]
    fn health_display_and_labels_are_stable() {
        assert_eq!(HealthStatus::Healthy.to_string(), "healthy");
        assert_eq!(HealthStatus::Poisoned.to_string(), "poisoned");
        let degraded = HealthStatus::Degraded {
            since: std::time::Instant::now(),
            queued: 7,
        };
        let shown = degraded.to_string();
        assert!(
            shown.starts_with("degraded (") && shown.ends_with("ms elapsed, 7 queued)"),
            "got: {shown}"
        );
        assert_eq!(HealthStatus::Healthy.as_label(), "healthy");
        assert_eq!(degraded.as_label(), "degraded");
        assert_eq!(HealthStatus::Poisoned.as_label(), "poisoned");
    }

    #[test]
    fn attached_metrics_count_verdicts_restarts_and_poisons() {
        let registry = Arc::new(Registry::new());
        let sup = Supervisor::new();
        sup.attach_metrics(&registry, "sup");
        let c = Arc::new(Counter::default());
        sup.register("worker", &c);
        sup.diagnose(); // idle
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.wait_timeout(9, Duration::from_secs(10)));
        while c.waiters().is_empty() {
            thread::yield_now();
        }
        sup.diagnose(); // never satisfiable
        sup.note_restarting("worker", 1, Duration::from_millis(5));
        sup.diagnose(); // restarting
        sup.clear_restarting("worker");
        assert_eq!(sup.poison_stuck(FailureInfo::new("stuck")), 1);
        assert!(matches!(h.join().unwrap(), Err(CheckError::Poisoned(_))));
        assert_eq!(registry.event("sup.verdict.idle").get(), 1);
        // 2: the explicit diagnose plus poison_stuck's internal pass.
        assert_eq!(registry.event("sup.verdict.never_satisfiable").get(), 2);
        assert_eq!(registry.event("sup.verdict.restarting").get(), 1);
        assert_eq!(registry.event("sup.restarts_noted").get(), 1);
        assert_eq!(registry.event("sup.poisons_issued").get(), 1);
        // poison_stuck's internal diagnose pass observed the poisoned
        // health, flipping worker's health label from healthy: 1 transition.
        sup.diagnose();
        assert_eq!(registry.event("sup.health_transitions").get(), 1);
        assert!(registry.event("sup.diagnoses").get() >= 4);
    }

    #[test]
    fn works_with_queueless_impls() {
        // SpinCounter has no introspectable waiters: diagnosis degrades to
        // value + obligations without error.
        let sup = Supervisor::new();
        let c = Arc::new(SpinCounter::default());
        sup.register("spin", &c);
        let report = sup.diagnose();
        assert_eq!(report.counters[0].verdict, StallVerdict::Idle);
        assert!(report.counters[0].waiters.is_empty());
    }
}
