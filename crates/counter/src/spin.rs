//! [`SpinCounter`]: a busy-waiting monotonic counter.
//!
//! `check` spins on an atomic load (with scheduler yields) instead of
//! suspending on a condition variable. No suspension queues exist at all —
//! the opposite end of the design space from the paper's Section 7
//! structure. Competitive when waits are extremely short and cores are
//! plentiful; pathological when waits are long or cores are scarce.
//! Included for the E7 ablation.

use crate::builder::{BuildConfig, Buildable, CounterBuilder};
use crate::error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
use crate::stats::{Stats, StatsSnapshot};
use crate::traits::{CounterDiagnostics, MonotonicCounter, Resettable, ResumableCounter};
use crate::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A monotonic counter whose waiters spin.
///
/// Semantically interchangeable with [`crate::Counter`]; `check` burns CPU
/// while waiting. Every synchronization operation is lock-free (the poison
/// flag is an atomic the spin loops poll; the mutex below only guards the
/// cause record, off the hot paths).
pub struct SpinCounter {
    value: AtomicU64,
    poisoned: AtomicBool,
    cause: Mutex<Option<FailureInfo>>,
    stats: Stats,
    poison_enabled: bool,
}

impl Default for SpinCounter {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl Buildable for SpinCounter {
    fn from_config(cfg: &BuildConfig) -> Self {
        SpinCounter {
            value: AtomicU64::new(cfg.initial()),
            poisoned: AtomicBool::new(false),
            cause: Mutex::new(None),
            stats: Stats::with_enabled(cfg.stats_enabled()),
            poison_enabled: cfg.poison_propagates(),
        }
    }
}

impl SpinCounter {
    /// Starts building a counter; see [`CounterBuilder`].
    pub fn builder() -> CounterBuilder<Self> {
        CounterBuilder::new()
    }

    /// Creates a counter with value zero.
    #[deprecated(note = "use CounterBuilder: `SpinCounter::builder().build()`")]
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Creates a counter starting at `value`.
    #[deprecated(note = "use CounterBuilder: `SpinCounter::builder().initial(value).build()`")]
    pub fn with_value(value: Value) -> Self {
        Self::builder().initial(value).build()
    }

    /// Reads the poisoning cause after observing the `poisoned` flag. The
    /// flag is stored only after the cause is published (both SeqCst), so
    /// this cannot observe the flag without the cause.
    fn cause(&self) -> FailureInfo {
        self.cause
            .lock()
            .expect("poison cause lock poisoned")
            .clone()
            .expect("poison flag set without a recorded cause")
    }
}

impl MonotonicCounter for SpinCounter {
    fn increment(&self, amount: Value) {
        self.try_increment(amount)
            .unwrap_or_else(|e| panic!("monotonic counter overflow: {e}"));
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        let mut cur = self.value.load(SeqCst);
        loop {
            let new = cur
                .checked_add(amount)
                .ok_or(CounterOverflowError { value: cur, amount })?;
            match self.value.compare_exchange_weak(cur, new, SeqCst, SeqCst) {
                Ok(_) => {
                    // Every spin-counter increment is lock-free by
                    // construction; count it as a fast-path hit so E8's
                    // tables compare like with like.
                    self.stats.record_fast_increment();
                    return Ok(());
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        if self.value.load(SeqCst) >= level {
            self.stats.record_fast_check();
            return Ok(());
        }
        self.stats.record_check_suspended();
        let mut spins = 0u32;
        while self.value.load(SeqCst) < level {
            if self.poisoned.load(SeqCst) {
                self.stats.record_waiter_resumed();
                return Err(CheckError::Poisoned(self.cause()));
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                // Give the producer a chance on oversubscribed machines.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        self.stats.record_waiter_resumed();
        Ok(())
    }

    fn wait_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckError> {
        if self.value.load(SeqCst) >= level {
            self.stats.record_fast_check();
            return Ok(());
        }
        self.stats.record_check_suspended();
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        while self.value.load(SeqCst) < level {
            if self.poisoned.load(SeqCst) {
                self.stats.record_waiter_resumed();
                return Err(CheckError::Poisoned(self.cause()));
            }
            if Instant::now() >= deadline {
                self.stats.record_waiter_resumed();
                return Err(CheckError::Timeout(CheckTimeoutError { level }));
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        self.stats.record_waiter_resumed();
        Ok(())
    }

    fn poison(&self, info: FailureInfo) {
        if !self.poison_enabled {
            return;
        }
        let mut cause = self.cause.lock().expect("poison cause lock poisoned");
        if cause.is_some() {
            return;
        }
        *cause = Some(info);
        // Publish the flag while still holding the cause lock: any spinner
        // that sees the flag finds the cause already recorded.
        self.poisoned.store(true, SeqCst);
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        if !self.poisoned.load(SeqCst) {
            return None;
        }
        Some(self.cause())
    }

    fn advance_to(&self, target: Value) {
        let prev = self.value.fetch_max(target, SeqCst);
        if prev < target {
            self.stats.record_fast_increment();
        }
    }
}

impl ResumableCounter for SpinCounter {
    fn resume_from(value: Value) -> Self {
        Self::builder().initial(value).build()
    }
}

impl Resettable for SpinCounter {
    fn reset(&mut self) {
        *self.value.get_mut() = 0;
        *self.poisoned.get_mut() = false;
        *self.cause.get_mut().expect("poison cause lock poisoned") = None;
    }
}

impl CounterDiagnostics for SpinCounter {
    fn debug_value(&self) -> Value {
        self.value.load(SeqCst)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn impl_name(&self) -> &'static str {
        "spin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wait_and_wake() {
        let c = Arc::new(SpinCounter::default());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.check(5));
        for _ in 0..5 {
            c.increment(1);
        }
        h.join().unwrap();
        assert_eq!(c.debug_value(), 5);
    }

    #[test]
    fn timeout_expires_without_increment() {
        let c = SpinCounter::default();
        assert!(c.check_timeout(1, Duration::from_millis(10)).is_err());
    }

    #[test]
    fn poison_breaks_the_spin_loop() {
        let c = Arc::new(SpinCounter::default());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.wait(100));
        while c.stats().live_waiters == 0 {
            std::thread::yield_now();
        }
        c.poison(FailureInfo::new("spinner failure"));
        assert!(matches!(h.join().unwrap(), Err(CheckError::Poisoned(_))));
        // Value ops keep working and satisfied waits succeed.
        c.increment(1);
        assert!(c.wait(1).is_ok());
    }

    #[test]
    fn concurrent_increments_sum() {
        let c = Arc::new(SpinCounter::default());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.increment(1);
                    }
                });
            }
        });
        assert_eq!(c.debug_value(), 8000);
    }
}
