//! The ordered waiting list of the paper's Section 7, ported literally as a
//! sorted singly-linked list of wait nodes.
//!
//! Invariants (the paper's, enforced and property-tested here):
//!
//! 1. The list is strictly ordered by ascending level.
//! 2. Each level appears at most once (all threads waiting on one level share
//!    one node).
//! 3. The list never contains a level less than or equal to the counter
//!    value — `remove_satisfied` is called on every increment.

use crate::node::WaitNode;
use crate::Value;
use std::sync::Arc;

struct Link {
    node: Arc<WaitNode>,
    next: Option<Box<Link>>,
}

/// A sorted singly-linked list of [`WaitNode`]s, one per distinct waited
/// level, exactly as drawn in the paper's Figure 2.
#[derive(Default)]
pub(crate) struct SortedList {
    head: Option<Box<Link>>,
    len: usize,
}

impl SortedList {
    pub(crate) fn new() -> Self {
        SortedList { head: None, len: 0 }
    }

    /// Number of nodes (distinct levels) in the list.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// Returns the node for `level`, inserting a fresh one in sorted position
    /// if none exists. Returns `(node, inserted)`.
    pub(crate) fn find_or_insert(&mut self, level: Value) -> (Arc<WaitNode>, bool) {
        // Walk the links until we find the level or the first greater level.
        let mut cursor: &mut Option<Box<Link>> = &mut self.head;
        loop {
            match cursor {
                Some(link) if link.node.level < level => {
                    cursor = &mut cursor.as_mut().unwrap().next;
                }
                Some(link) if link.node.level == level => {
                    return (Arc::clone(&link.node), false);
                }
                _ => break,
            }
        }
        let node = Arc::new(WaitNode::new(level));
        let new_link = Box::new(Link {
            node: Arc::clone(&node),
            next: cursor.take(),
        });
        *cursor = Some(new_link);
        self.len += 1;
        (node, true)
    }

    /// Removes and returns every node whose level is satisfied by `value`
    /// (level <= value), in ascending level order. Because the list is sorted,
    /// these are exactly a prefix of the list.
    pub(crate) fn remove_satisfied(&mut self, value: Value) -> Vec<Arc<WaitNode>> {
        let mut satisfied = Vec::new();
        while let Some(link) = self.head.take() {
            if link.node.level <= value {
                satisfied.push(link.node);
                self.head = link.next;
                self.len -= 1;
            } else {
                self.head = Some(link);
                break;
            }
        }
        satisfied
    }

    /// Removes the node at exactly `level`, if present. Used when the last
    /// waiter of a level abandons its wait (timeout) before the level is
    /// satisfied. Returns the removed node.
    pub(crate) fn remove_level(&mut self, level: Value) -> Option<Arc<WaitNode>> {
        let mut cursor: &mut Option<Box<Link>> = &mut self.head;
        loop {
            match cursor {
                Some(link) if link.node.level < level => {
                    cursor = &mut cursor.as_mut().unwrap().next;
                }
                Some(link) if link.node.level == level => {
                    let mut removed = cursor.take().unwrap();
                    *cursor = removed.next.take();
                    self.len -= 1;
                    return Some(removed.node);
                }
                _ => return None,
            }
        }
    }

    /// The levels currently in the list, in order (diagnostics / tests).
    pub(crate) fn levels(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = &self.head;
        while let Some(link) = cur {
            out.push(link.node.level);
            cur = &link.next;
        }
        out
    }

    /// Snapshot of `(level, waiter_count, set)` per node, in order.
    pub(crate) fn nodes(&self) -> Vec<Arc<WaitNode>> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = &self.head;
        while let Some(link) = cur {
            out.push(Arc::clone(&link.node));
            cur = &link.next;
        }
        out
    }
}

// An explicit iterative Drop avoids stack overflow on pathologically long
// lists (Box chains drop recursively by default).
impl Drop for SortedList {
    fn drop(&mut self) {
        let mut cur = self.head.take();
        while let Some(mut link) = cur {
            cur = link.next.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels_of(list: &SortedList) -> Vec<Value> {
        list.levels()
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut l = SortedList::new();
        for level in [5u64, 9, 2, 7, 3] {
            let (_, inserted) = l.find_or_insert(level);
            assert!(inserted);
        }
        assert_eq!(levels_of(&l), vec![2, 3, 5, 7, 9]);
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn duplicate_levels_share_one_node() {
        let mut l = SortedList::new();
        let (a, ins_a) = l.find_or_insert(5);
        let (b, ins_b) = l.find_or_insert(5);
        assert!(ins_a);
        assert!(!ins_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn remove_satisfied_takes_prefix() {
        let mut l = SortedList::new();
        for level in [2u64, 5, 7, 9] {
            l.find_or_insert(level);
        }
        let out = l.remove_satisfied(6);
        let got: Vec<_> = out.iter().map(|n| n.level).collect();
        assert_eq!(got, vec![2, 5]);
        assert_eq!(levels_of(&l), vec![7, 9]);
    }

    #[test]
    fn remove_satisfied_exact_boundary_is_inclusive() {
        let mut l = SortedList::new();
        l.find_or_insert(7);
        let out = l.remove_satisfied(7);
        assert_eq!(out.len(), 1);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_satisfied_below_all_levels_is_noop() {
        let mut l = SortedList::new();
        l.find_or_insert(10);
        let out = l.remove_satisfied(9);
        assert!(out.is_empty());
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn remove_satisfied_on_empty_list() {
        let mut l = SortedList::new();
        assert!(l.remove_satisfied(u64::MAX).is_empty());
    }

    #[test]
    fn insert_at_head_middle_and_tail() {
        let mut l = SortedList::new();
        l.find_or_insert(5);
        l.find_or_insert(1); // head
        l.find_or_insert(9); // tail
        l.find_or_insert(3); // middle
        assert_eq!(levels_of(&l), vec![1, 3, 5, 9]);
    }

    #[test]
    fn long_list_drops_without_stack_overflow() {
        let mut l = SortedList::new();
        // Insert in descending order: each insert lands at the head in O(1),
        // so this builds a 200k-link chain quickly.
        for level in (1..=200_000u64).rev() {
            l.find_or_insert(level);
        }
        assert_eq!(l.len(), 200_000);
        drop(l); // must not overflow the stack
    }

    #[test]
    fn remove_level_head_middle_tail_and_missing() {
        let mut l = SortedList::new();
        for level in [1u64, 3, 5, 7] {
            l.find_or_insert(level);
        }
        assert_eq!(l.remove_level(1).map(|n| n.level), Some(1)); // head
        assert_eq!(l.remove_level(5).map(|n| n.level), Some(5)); // middle
        assert_eq!(l.remove_level(7).map(|n| n.level), Some(7)); // tail
        assert!(l.remove_level(42).is_none());
        assert_eq!(levels_of(&l), vec![3]);
    }

    #[test]
    fn nodes_returns_every_node_in_order() {
        let mut l = SortedList::new();
        for level in [4u64, 2, 8] {
            l.find_or_insert(level);
        }
        let nodes = l.nodes();
        let got: Vec<_> = nodes.iter().map(|n| n.level).collect();
        assert_eq!(got, vec![2, 4, 8]);
    }
}
