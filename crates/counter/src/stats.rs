//! Always-on, low-overhead counter instrumentation.
//!
//! The paper's Section 7 claims that storage and time are "proportional to the
//! number of different levels on which threads are waiting, not to the total
//! number of waiting threads". These statistics make that claim *measurable*:
//! experiment E5 reads them to show live wait-node counts tracking the number
//! of distinct levels.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Internal statistics accumulator shared by all counter implementations.
///
/// All fields are updated with relaxed atomics; the counters' own locks
/// already order the updates, and readers only need eventually-consistent
/// aggregate numbers.
///
/// Slow-path and fast-path operations bump *separate* counters and the
/// totals are derived at snapshot time: a fast increment is one `fetch_add`,
/// not two, keeping the instrumented fast path a genuinely short straight
/// line (the E8 tables measure it with stats enabled).
#[derive(Debug, Default)]
pub(crate) struct Stats {
    /// Set when the counter was built with `.stats(false)`: every record
    /// method becomes a no-op and snapshots report zeros. `false` (the
    /// `Default`) keeps the historical always-on behavior.
    disabled: bool,
    slow_increments: AtomicU64,
    slow_checks: AtomicU64,
    slow_immediate_checks: AtomicU64,
    suspensions: AtomicU64,
    nodes_created: AtomicU64,
    nodes_freed: AtomicU64,
    live_nodes: AtomicU64,
    max_live_nodes: AtomicU64,
    live_waiters: AtomicU64,
    max_live_waiters: AtomicU64,
    notifies: AtomicU64,
    fast_increments: AtomicU64,
    fast_checks: AtomicU64,
    slow_path_entries: AtomicU64,
}

fn bump_max(max: &AtomicU64, candidate: u64) {
    let mut cur = max.load(Relaxed);
    while candidate > cur {
        match max.compare_exchange_weak(cur, candidate, Relaxed, Relaxed) {
            Ok(_) => break,
            Err(c) => cur = c,
        }
    }
}

impl Stats {
    /// A stats block honoring the builder's `.stats(enabled)` knob; the
    /// `Default` construction is the always-on equivalent.
    pub(crate) fn with_enabled(enabled: bool) -> Self {
        Stats {
            disabled: !enabled,
            ..Stats::default()
        }
    }

    pub(crate) fn record_increment(&self) {
        if self.disabled {
            return;
        }
        self.slow_increments.fetch_add(1, Relaxed);
    }

    pub(crate) fn record_check_immediate(&self) {
        if self.disabled {
            return;
        }
        self.slow_checks.fetch_add(1, Relaxed);
        self.slow_immediate_checks.fetch_add(1, Relaxed);
    }

    pub(crate) fn record_check_suspended(&self) {
        if self.disabled {
            return;
        }
        self.slow_checks.fetch_add(1, Relaxed);
        self.suspensions.fetch_add(1, Relaxed);
        let live = self.live_waiters.fetch_add(1, Relaxed) + 1;
        bump_max(&self.max_live_waiters, live);
    }

    pub(crate) fn record_waiter_resumed(&self) {
        if self.disabled {
            return;
        }
        self.live_waiters.fetch_sub(1, Relaxed);
    }

    pub(crate) fn record_node_created(&self) {
        if self.disabled {
            return;
        }
        self.nodes_created.fetch_add(1, Relaxed);
        let live = self.live_nodes.fetch_add(1, Relaxed) + 1;
        bump_max(&self.max_live_nodes, live);
    }

    pub(crate) fn record_node_freed(&self) {
        if self.disabled {
            return;
        }
        self.nodes_freed.fetch_add(1, Relaxed);
        self.live_nodes.fetch_sub(1, Relaxed);
    }

    pub(crate) fn record_notify(&self) {
        if self.disabled {
            return;
        }
        self.notifies.fetch_add(1, Relaxed);
    }

    /// An `increment`/`advance_to` that completed on the lock-free fast path.
    ///
    /// One `fetch_add`; the snapshot folds it into the `increments` total.
    pub(crate) fn record_fast_increment(&self) {
        if self.disabled {
            return;
        }
        self.fast_increments.fetch_add(1, Relaxed);
    }

    /// A `check` satisfied by a single atomic load, without the lock.
    ///
    /// One `fetch_add`; the snapshot folds it into the `checks` and
    /// `immediate_checks` totals.
    pub(crate) fn record_fast_check(&self) {
        if self.disabled {
            return;
        }
        self.fast_checks.fetch_add(1, Relaxed);
    }

    /// Any operation that acquired the slow-path mutex.
    pub(crate) fn record_slow_entry(&self) {
        if self.disabled {
            return;
        }
        self.slow_path_entries.fetch_add(1, Relaxed);
    }

    /// Clears all statistics (used when a counter is reset between phases).
    #[cfg(test)]
    pub(crate) fn reset(&self) {
        self.slow_increments.store(0, Relaxed);
        self.slow_checks.store(0, Relaxed);
        self.slow_immediate_checks.store(0, Relaxed);
        self.suspensions.store(0, Relaxed);
        self.nodes_created.store(0, Relaxed);
        self.nodes_freed.store(0, Relaxed);
        self.live_nodes.store(0, Relaxed);
        self.max_live_nodes.store(0, Relaxed);
        self.live_waiters.store(0, Relaxed);
        self.max_live_waiters.store(0, Relaxed);
        self.notifies.store(0, Relaxed);
        self.fast_increments.store(0, Relaxed);
        self.fast_checks.store(0, Relaxed);
        self.slow_path_entries.store(0, Relaxed);
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        let fast_increments = self.fast_increments.load(Relaxed);
        let fast_checks = self.fast_checks.load(Relaxed);
        StatsSnapshot {
            increments: self.slow_increments.load(Relaxed) + fast_increments,
            checks: self.slow_checks.load(Relaxed) + fast_checks,
            immediate_checks: self.slow_immediate_checks.load(Relaxed) + fast_checks,
            suspensions: self.suspensions.load(Relaxed),
            nodes_created: self.nodes_created.load(Relaxed),
            nodes_freed: self.nodes_freed.load(Relaxed),
            live_nodes: self.live_nodes.load(Relaxed),
            max_live_nodes: self.max_live_nodes.load(Relaxed),
            live_waiters: self.live_waiters.load(Relaxed),
            max_live_waiters: self.max_live_waiters.load(Relaxed),
            notifies: self.notifies.load(Relaxed),
            fast_increments,
            fast_checks,
            slow_path_entries: self.slow_path_entries.load(Relaxed),
            io_retries: 0,
        }
    }
}

/// A point-in-time copy of a counter's internal statistics.
///
/// Obtained from
/// [`CounterDiagnostics::stats`](crate::CounterDiagnostics::stats).
/// The node counts expose the paper's Section 7 complexity claim: a counter's
/// storage is one wait node per **distinct level** currently waited on,
/// regardless of how many threads wait at each level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total `increment` operations performed.
    pub increments: u64,
    /// Total `check` operations performed.
    pub checks: u64,
    /// `check` operations that were satisfied without suspending.
    pub immediate_checks: u64,
    /// `check` operations that suspended the calling thread.
    pub suspensions: u64,
    /// Wait nodes (distinct-level suspension queues) ever created.
    pub nodes_created: u64,
    /// Wait nodes freed after their last waiter resumed.
    pub nodes_freed: u64,
    /// Wait nodes currently alive (waiting or draining).
    pub live_nodes: u64,
    /// High-water mark of simultaneously alive wait nodes.
    pub max_live_nodes: u64,
    /// Threads currently suspended in `check`.
    pub live_waiters: u64,
    /// High-water mark of simultaneously suspended threads.
    pub max_live_waiters: u64,
    /// Condition-variable broadcast (`notify_all`) events issued.
    pub notifies: u64,
    /// `increment`/`advance_to` operations completed on the lock-free fast
    /// path (single CAS, wait list untouched). Zero for implementations
    /// without a fast path.
    pub fast_increments: u64,
    /// `check` operations satisfied by a single atomic load, without the
    /// lock. Always `<= immediate_checks`.
    pub fast_checks: u64,
    /// Operations (of any kind) that acquired the slow-path mutex. A
    /// waiter-free workload on a fast-path counter reports **zero** here —
    /// the acceptance criterion of the E8 experiment.
    pub slow_path_entries: u64,
    /// IO operations that were retried after a transient failure. Always
    /// zero for in-memory counters; filled in by wrappers backed by fallible
    /// external resources (the durability layer's retry policy).
    pub io_retries: u64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "inc {} | chk {} ({} immediate, {} suspended) | nodes {}/{} live/max \
             (created {}, freed {}) | waiters {}/{} live/max | broadcasts {} | \
             fast {} inc / {} chk | slow entries {} | io retries {}",
            self.increments,
            self.checks,
            self.immediate_checks,
            self.suspensions,
            self.live_nodes,
            self.max_live_nodes,
            self.nodes_created,
            self.nodes_freed,
            self.live_waiters,
            self.max_live_waiters,
            self.notifies,
            self.fast_increments,
            self.fast_checks,
            self.slow_path_entries,
            self.io_retries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_display_is_compact_one_liner() {
        let s = Stats::default();
        s.record_increment();
        s.record_check_immediate();
        let text = s.snapshot().to_string();
        assert!(text.contains("inc 1"), "{text}");
        assert!(text.contains("chk 1"), "{text}");
        assert!(!text.contains('\n'));
    }

    #[test]
    fn snapshot_starts_zeroed() {
        let s = Stats::default();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn immediate_check_counts() {
        let s = Stats::default();
        s.record_check_immediate();
        s.record_check_immediate();
        let snap = s.snapshot();
        assert_eq!(snap.checks, 2);
        assert_eq!(snap.immediate_checks, 2);
        assert_eq!(snap.suspensions, 0);
    }

    #[test]
    fn node_lifecycle_tracks_live_and_max() {
        let s = Stats::default();
        s.record_node_created();
        s.record_node_created();
        s.record_node_freed();
        s.record_node_created();
        let snap = s.snapshot();
        assert_eq!(snap.nodes_created, 3);
        assert_eq!(snap.nodes_freed, 1);
        assert_eq!(snap.live_nodes, 2);
        assert_eq!(snap.max_live_nodes, 2);
    }

    #[test]
    fn waiter_lifecycle_tracks_live_and_max() {
        let s = Stats::default();
        s.record_check_suspended();
        s.record_check_suspended();
        s.record_check_suspended();
        s.record_waiter_resumed();
        let snap = s.snapshot();
        assert_eq!(snap.suspensions, 3);
        assert_eq!(snap.live_waiters, 2);
        assert_eq!(snap.max_live_waiters, 3);
    }

    #[test]
    fn reset_clears_everything() {
        let s = Stats::default();
        s.record_increment();
        s.record_node_created();
        s.record_check_suspended();
        s.record_notify();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn fast_and_slow_path_counters() {
        let s = Stats::default();
        s.record_fast_increment();
        s.record_fast_increment();
        s.record_fast_check();
        s.record_slow_entry();
        s.record_increment();
        let snap = s.snapshot();
        assert_eq!(snap.fast_increments, 2);
        assert_eq!(snap.increments, 3, "fast increments count as increments");
        assert_eq!(snap.fast_checks, 1);
        assert_eq!(snap.immediate_checks, 1, "fast checks are immediate");
        assert_eq!(snap.slow_path_entries, 1);
    }

    #[test]
    fn bump_max_is_monotonic() {
        let m = AtomicU64::new(5);
        bump_max(&m, 3);
        assert_eq!(m.load(Relaxed), 5);
        bump_max(&m, 9);
        assert_eq!(m.load(Relaxed), 9);
    }
}
