//! Always-on, low-overhead counter instrumentation.
//!
//! The paper's Section 7 claims that storage and time are "proportional to the
//! number of different levels on which threads are waiting, not to the total
//! number of waiting threads". These statistics make that claim *measurable*:
//! experiment E5 reads them to show live wait-node counts tracking the number
//! of distinct levels.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Internal statistics accumulator shared by all counter implementations.
///
/// All fields are updated with relaxed atomics; the counters' own locks
/// already order the updates, and readers only need eventually-consistent
/// aggregate numbers.
#[derive(Debug, Default)]
pub(crate) struct Stats {
    increments: AtomicU64,
    checks: AtomicU64,
    immediate_checks: AtomicU64,
    suspensions: AtomicU64,
    nodes_created: AtomicU64,
    nodes_freed: AtomicU64,
    live_nodes: AtomicU64,
    max_live_nodes: AtomicU64,
    live_waiters: AtomicU64,
    max_live_waiters: AtomicU64,
    notifies: AtomicU64,
}

fn bump_max(max: &AtomicU64, candidate: u64) {
    let mut cur = max.load(Relaxed);
    while candidate > cur {
        match max.compare_exchange_weak(cur, candidate, Relaxed, Relaxed) {
            Ok(_) => break,
            Err(c) => cur = c,
        }
    }
}

impl Stats {
    pub(crate) fn record_increment(&self) {
        self.increments.fetch_add(1, Relaxed);
    }

    pub(crate) fn record_check_immediate(&self) {
        self.checks.fetch_add(1, Relaxed);
        self.immediate_checks.fetch_add(1, Relaxed);
    }

    pub(crate) fn record_check_suspended(&self) {
        self.checks.fetch_add(1, Relaxed);
        self.suspensions.fetch_add(1, Relaxed);
        let live = self.live_waiters.fetch_add(1, Relaxed) + 1;
        bump_max(&self.max_live_waiters, live);
    }

    pub(crate) fn record_waiter_resumed(&self) {
        self.live_waiters.fetch_sub(1, Relaxed);
    }

    pub(crate) fn record_node_created(&self) {
        self.nodes_created.fetch_add(1, Relaxed);
        let live = self.live_nodes.fetch_add(1, Relaxed) + 1;
        bump_max(&self.max_live_nodes, live);
    }

    pub(crate) fn record_node_freed(&self) {
        self.nodes_freed.fetch_add(1, Relaxed);
        self.live_nodes.fetch_sub(1, Relaxed);
    }

    pub(crate) fn record_notify(&self) {
        self.notifies.fetch_add(1, Relaxed);
    }

    /// Clears all statistics (used when a counter is reset between phases).
    #[cfg(test)]
    pub(crate) fn reset(&self) {
        self.increments.store(0, Relaxed);
        self.checks.store(0, Relaxed);
        self.immediate_checks.store(0, Relaxed);
        self.suspensions.store(0, Relaxed);
        self.nodes_created.store(0, Relaxed);
        self.nodes_freed.store(0, Relaxed);
        self.live_nodes.store(0, Relaxed);
        self.max_live_nodes.store(0, Relaxed);
        self.live_waiters.store(0, Relaxed);
        self.max_live_waiters.store(0, Relaxed);
        self.notifies.store(0, Relaxed);
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            increments: self.increments.load(Relaxed),
            checks: self.checks.load(Relaxed),
            immediate_checks: self.immediate_checks.load(Relaxed),
            suspensions: self.suspensions.load(Relaxed),
            nodes_created: self.nodes_created.load(Relaxed),
            nodes_freed: self.nodes_freed.load(Relaxed),
            live_nodes: self.live_nodes.load(Relaxed),
            max_live_nodes: self.max_live_nodes.load(Relaxed),
            live_waiters: self.live_waiters.load(Relaxed),
            max_live_waiters: self.max_live_waiters.load(Relaxed),
            notifies: self.notifies.load(Relaxed),
        }
    }
}

/// A point-in-time copy of a counter's internal statistics.
///
/// Obtained from [`MonotonicCounter::stats`](crate::MonotonicCounter::stats).
/// The node counts expose the paper's Section 7 complexity claim: a counter's
/// storage is one wait node per **distinct level** currently waited on,
/// regardless of how many threads wait at each level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total `increment` operations performed.
    pub increments: u64,
    /// Total `check` operations performed.
    pub checks: u64,
    /// `check` operations that were satisfied without suspending.
    pub immediate_checks: u64,
    /// `check` operations that suspended the calling thread.
    pub suspensions: u64,
    /// Wait nodes (distinct-level suspension queues) ever created.
    pub nodes_created: u64,
    /// Wait nodes freed after their last waiter resumed.
    pub nodes_freed: u64,
    /// Wait nodes currently alive (waiting or draining).
    pub live_nodes: u64,
    /// High-water mark of simultaneously alive wait nodes.
    pub max_live_nodes: u64,
    /// Threads currently suspended in `check`.
    pub live_waiters: u64,
    /// High-water mark of simultaneously suspended threads.
    pub max_live_waiters: u64,
    /// Condition-variable broadcast (`notify_all`) events issued.
    pub notifies: u64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "inc {} | chk {} ({} immediate, {} suspended) | nodes {}/{} live/max \
             (created {}, freed {}) | waiters {}/{} live/max | broadcasts {}",
            self.increments,
            self.checks,
            self.immediate_checks,
            self.suspensions,
            self.live_nodes,
            self.max_live_nodes,
            self.nodes_created,
            self.nodes_freed,
            self.live_waiters,
            self.max_live_waiters,
            self.notifies
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_display_is_compact_one_liner() {
        let s = Stats::default();
        s.record_increment();
        s.record_check_immediate();
        let text = s.snapshot().to_string();
        assert!(text.contains("inc 1"), "{text}");
        assert!(text.contains("chk 1"), "{text}");
        assert!(!text.contains('\n'));
    }

    #[test]
    fn snapshot_starts_zeroed() {
        let s = Stats::default();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn immediate_check_counts() {
        let s = Stats::default();
        s.record_check_immediate();
        s.record_check_immediate();
        let snap = s.snapshot();
        assert_eq!(snap.checks, 2);
        assert_eq!(snap.immediate_checks, 2);
        assert_eq!(snap.suspensions, 0);
    }

    #[test]
    fn node_lifecycle_tracks_live_and_max() {
        let s = Stats::default();
        s.record_node_created();
        s.record_node_created();
        s.record_node_freed();
        s.record_node_created();
        let snap = s.snapshot();
        assert_eq!(snap.nodes_created, 3);
        assert_eq!(snap.nodes_freed, 1);
        assert_eq!(snap.live_nodes, 2);
        assert_eq!(snap.max_live_nodes, 2);
    }

    #[test]
    fn waiter_lifecycle_tracks_live_and_max() {
        let s = Stats::default();
        s.record_check_suspended();
        s.record_check_suspended();
        s.record_check_suspended();
        s.record_waiter_resumed();
        let snap = s.snapshot();
        assert_eq!(snap.suspensions, 3);
        assert_eq!(snap.live_waiters, 2);
        assert_eq!(snap.max_live_waiters, 3);
    }

    #[test]
    fn reset_clears_everything() {
        let s = Stats::default();
        s.record_increment();
        s.record_node_created();
        s.record_check_suspended();
        s.record_notify();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn bump_max_is_monotonic() {
        let m = AtomicU64::new(5);
        bump_max(&m, 3);
        assert_eq!(m.load(Relaxed), 5);
        bump_max(&m, 9);
        assert_eq!(m.load(Relaxed), 9);
    }
}
