//! Error types for fallible counter operations, and the [`FailureInfo`]
//! record that travels with a poisoned counter.

use std::fmt;
use std::sync::Arc;

/// Error returned by [`MonotonicCounter::check_timeout`] when the counter did
/// not reach the requested level before the timeout elapsed.
///
/// [`MonotonicCounter::check_timeout`]: crate::MonotonicCounter::check_timeout
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckTimeoutError {
    /// The level the caller was waiting for.
    pub level: crate::Value,
}

impl fmt::Display for CheckTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timed out waiting for counter to reach level {}",
            self.level
        )
    }
}

impl std::error::Error for CheckTimeoutError {}

/// Error returned by [`MonotonicCounter::try_increment`] when the addition
/// would overflow the counter value.
///
/// [`MonotonicCounter::try_increment`]: crate::MonotonicCounter::try_increment
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterOverflowError {
    /// The counter value at the time of the failed increment.
    pub value: crate::Value,
    /// The amount whose addition would have overflowed.
    pub amount: crate::Value,
}

impl fmt::Display for CounterOverflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incrementing counter value {} by {} would overflow",
            self.value, self.amount
        )
    }
}

impl std::error::Error for CounterOverflowError {}

/// The captured cause of a counter poisoning: which thread failed, why, and
/// (when known) the level context of the failure.
///
/// `FailureInfo` is deliberately cheap to clone (`Arc`-backed strings): one
/// poisoning fans the same record out to every waiter, present and future.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureInfo {
    thread: Arc<str>,
    message: Arc<str>,
    level: Option<crate::Value>,
}

impl FailureInfo {
    /// Captures the calling thread's name alongside `message`.
    pub fn new(message: impl Into<String>) -> Self {
        let thread = std::thread::current();
        FailureInfo {
            thread: thread.name().unwrap_or("<unnamed>").into(),
            message: message.into().into(),
            level: None,
        }
    }

    /// Builds a failure record from a caught panic payload, extracting the
    /// conventional `&str`/`String` message (the payload of `panic!`), or a
    /// placeholder for exotic payloads.
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        Self::new(message)
    }

    /// Attaches the counter level the failing thread was responsible for
    /// (e.g. the unfulfilled amount of an abandoned obligation).
    pub fn with_level(mut self, level: crate::Value) -> Self {
        self.level = Some(level);
        self
    }

    /// Overrides the recorded thread name. Used when *reconstructing* a
    /// failure from persisted state (crash recovery), where the original
    /// failing thread — not the recovering one — must be reported.
    pub fn with_thread(mut self, thread: impl Into<String>) -> Self {
        self.thread = thread.into().into();
        self
    }

    /// Name of the thread that failed (`<unnamed>` for anonymous threads).
    pub fn thread(&self) -> &str {
        &self.thread
    }

    /// The failure description — a panic payload string or a supervisor
    /// verdict.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The level context attached via [`with_level`](Self::with_level), if
    /// any.
    pub fn level(&self) -> Option<crate::Value> {
        self.level
    }
}

impl fmt::Display for FailureInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread '{}' failed: {}", self.thread, self.message)?;
        if let Some(level) = self.level {
            write!(f, " (level context: {level})")?;
        }
        Ok(())
    }
}

/// Error returned by the fallible wait operations
/// ([`MonotonicCounter::wait`] / [`MonotonicCounter::wait_timeout`]).
///
/// [`MonotonicCounter::wait`]: crate::MonotonicCounter::wait
/// [`MonotonicCounter::wait_timeout`]: crate::MonotonicCounter::wait_timeout
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The counter did not reach the level before the timeout elapsed.
    Timeout(CheckTimeoutError),
    /// The counter was poisoned while the level was still unsatisfied: the
    /// increments this wait depends on will never arrive.
    Poisoned(FailureInfo),
}

impl CheckError {
    /// The poisoning cause, when this is a [`CheckError::Poisoned`].
    pub fn failure(&self) -> Option<&FailureInfo> {
        match self {
            CheckError::Poisoned(info) => Some(info),
            CheckError::Timeout(_) => None,
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Timeout(e) => e.fmt(f),
            CheckError::Poisoned(info) => write!(f, "counter poisoned: {info}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<CheckTimeoutError> for CheckError {
    fn from(e: CheckTimeoutError) -> Self {
        CheckError::Timeout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_error_displays_level() {
        let e = CheckTimeoutError { level: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn overflow_error_displays_operands() {
        let e = CounterOverflowError {
            value: u64::MAX,
            amount: 1,
        };
        let s = e.to_string();
        assert!(s.contains(&u64::MAX.to_string()));
        assert!(s.contains("by 1"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<CheckTimeoutError>();
        assert_err::<CounterOverflowError>();
        assert_err::<CheckError>();
    }

    #[test]
    fn failure_info_captures_thread_name() {
        let info = std::thread::Builder::new()
            .name("doomed-worker".into())
            .spawn(|| FailureInfo::new("boom"))
            .unwrap()
            .join()
            .unwrap();
        assert_eq!(info.thread(), "doomed-worker");
        assert_eq!(info.message(), "boom");
        assert!(info.to_string().contains("doomed-worker"));
        assert!(info.to_string().contains("boom"));
    }

    #[test]
    fn failure_info_from_panic_extracts_payloads() {
        let static_str = std::panic::catch_unwind(|| panic!("static cause")).unwrap_err();
        assert_eq!(
            FailureInfo::from_panic(&*static_str).message(),
            "static cause"
        );
        let formatted = std::panic::catch_unwind(|| panic!("cause {}", 42)).unwrap_err();
        assert_eq!(FailureInfo::from_panic(&*formatted).message(), "cause 42");
        let exotic = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).unwrap_err();
        assert_eq!(
            FailureInfo::from_panic(&*exotic).message(),
            "<non-string panic payload>"
        );
    }

    #[test]
    fn failure_info_level_context_round_trips() {
        let info = FailureInfo::new("died").with_level(9);
        assert_eq!(info.level(), Some(9));
        assert!(info.to_string().contains("level context: 9"));
    }

    #[test]
    fn check_error_accessors_and_display() {
        let t = CheckError::from(CheckTimeoutError { level: 3 });
        assert!(t.failure().is_none());
        assert!(t.to_string().contains("level 3"));
        let p = CheckError::Poisoned(FailureInfo::new("dead producer"));
        assert_eq!(p.failure().unwrap().message(), "dead producer");
        assert!(p.to_string().contains("poisoned"));
    }
}
