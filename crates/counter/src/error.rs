//! Error types for fallible counter operations.

use std::fmt;

/// Error returned by [`MonotonicCounter::check_timeout`] when the counter did
/// not reach the requested level before the timeout elapsed.
///
/// [`MonotonicCounter::check_timeout`]: crate::MonotonicCounter::check_timeout
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckTimeoutError {
    /// The level the caller was waiting for.
    pub level: crate::Value,
}

impl fmt::Display for CheckTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timed out waiting for counter to reach level {}",
            self.level
        )
    }
}

impl std::error::Error for CheckTimeoutError {}

/// Error returned by [`MonotonicCounter::try_increment`] when the addition
/// would overflow the counter value.
///
/// [`MonotonicCounter::try_increment`]: crate::MonotonicCounter::try_increment
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterOverflowError {
    /// The counter value at the time of the failed increment.
    pub value: crate::Value,
    /// The amount whose addition would have overflowed.
    pub amount: crate::Value,
}

impl fmt::Display for CounterOverflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incrementing counter value {} by {} would overflow",
            self.value, self.amount
        )
    }
}

impl std::error::Error for CounterOverflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_error_displays_level() {
        let e = CheckTimeoutError { level: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn overflow_error_displays_operands() {
        let e = CounterOverflowError {
            value: u64::MAX,
            amount: 1,
        };
        let s = e.to_string();
        assert!(s.contains(&u64::MAX.to_string()));
        assert!(s.contains("by 1"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<CheckTimeoutError>();
        assert_err::<CounterOverflowError>();
    }
}
