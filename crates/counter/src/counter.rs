//! [`Counter`]: the paper's Section 7 implementation, with the packed-word
//! fast path layered on top.
//!
//! One mutex protects (wide value, ordered waiting list); each distinct
//! waited level owns one node with a condition variable; `increment` detaches
//! the satisfied prefix of the list, signals it, and broadcasts; woken
//! threads drain their node and the last one releases it. The two-tier fast
//! path (see [`crate::fastpath`]) lets an already-satisfied `check` return
//! after one atomic load and a waiter-free `increment` complete with one CAS,
//! so the mutex is only ever taken when a thread actually suspends or must be
//! woken.

use crate::builder::{BuildConfig, Buildable, CounterBuilder};
use crate::error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
use crate::fastpath::{FastAdvance, FastIncrement, FastWord, FAST_CAP};
use crate::list::SortedList;
use crate::node::WaitNode;
use crate::stats::{Stats, StatsSnapshot};
use crate::trace::{snapshot_of, TraceLog};
use crate::traits::{
    CounterDiagnostics, MonotonicCounter, Resettable, ResumableCounter, WaitingLevel,
};
use crate::Value;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

pub(crate) struct Inner {
    /// The exact value once the packed hint has saturated at
    /// [`FAST_CAP`]; stale (and unused) below that. See the `fastpath`
    /// module docs.
    pub(crate) wide: Value,
    /// Nodes for levels still unsatisfied. Never contains a level <= value.
    pub(crate) waiting: SortedList,
    /// Nodes whose level has been satisfied but whose waiters have not all
    /// resumed yet — these are the "set" nodes still drawn in the waiting
    /// structure of Figure 2 (e) and (f). The last waiter to resume removes
    /// its node from here. Poisoned nodes drain through here too.
    pub(crate) draining: Vec<Arc<WaitNode>>,
    /// The first poisoning cause, if any. Set at most once.
    pub(crate) poisoned: Option<FailureInfo>,
}

/// The reference monotonic counter: a packed-word fast path over one lock
/// plus a sorted singly-linked list of condition-variable nodes, the
/// structure of the paper's Section 7 and Figure 2.
///
/// * `check` with a satisfied level returns after a single atomic load.
/// * `increment` with no registered waiters is a single CAS.
/// * `check` with an unsatisfied level finds-or-inserts the node for that
///   level and suspends on its condition variable; all threads waiting on the
///   same level share one node.
/// * `increment` while waiters exist takes the lock, bumps the value and
///   removes every node whose level the new value satisfies from the list,
///   sets its signal flag, and broadcasts.
///
/// Storage and operation time on the slow path are proportional to the number
/// of **distinct levels currently waited on**, not to the number of waiting
/// threads; the fast paths cost no storage at all.
///
/// # Example
///
/// ```
/// use mc_counter::{Counter, MonotonicCounter};
/// let c = Counter::builder().build();
/// c.increment(5);
/// c.check(5); // already satisfied: returns immediately
/// ```
pub struct Counter {
    fast: FastWord,
    /// `false` disables the lock-free tier so every operation takes the
    /// mutex — the ablation baseline for experiment E8 and the mode used
    /// while tracing (every transition must be recorded under the lock).
    fast_enabled: bool,
    inner: Mutex<Inner>,
    stats: Stats,
    /// `false` turns `poison` into a no-op ([`PoisonPolicy::Ignore`]).
    ///
    /// [`PoisonPolicy::Ignore`]: crate::PoisonPolicy::Ignore
    poison_enabled: bool,
    /// When present (via [`crate::TracingCounter`]), a structure snapshot is
    /// appended at every transition, under the lock.
    trace: Option<Arc<TraceLog>>,
}

impl Default for Counter {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl Buildable for Counter {
    fn from_config(cfg: &BuildConfig) -> Self {
        Counter {
            fast: FastWord::new(cfg.initial()),
            fast_enabled: true,
            inner: Mutex::new(Inner {
                wide: cfg.initial(),
                waiting: SortedList::new(),
                draining: Vec::new(),
                poisoned: None,
            }),
            stats: Stats::with_enabled(cfg.stats_enabled()),
            poison_enabled: cfg.poison_propagates(),
            trace: None,
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Counter")
            .field("value", &self.fast.locked_value(inner.wide))
            .field("waiting_levels", &inner.waiting.levels())
            .field("draining", &inner.draining.len())
            .finish()
    }
}

impl Counter {
    /// Starts building a counter: set the knobs, then
    /// [`build`](CounterBuilder::build).
    pub fn builder() -> CounterBuilder<Self> {
        CounterBuilder::new()
    }

    /// Creates a counter with value zero and no waiting threads.
    #[deprecated(note = "use CounterBuilder: `Counter::builder().build()`")]
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Creates a counter starting at `value` (phase-reuse and resume
    /// scenarios; equivalent to building at 0 followed by
    /// `advance_to(value)`).
    #[deprecated(note = "use CounterBuilder: `Counter::builder().initial(value).build()`")]
    pub fn with_value(value: Value) -> Self {
        Self::builder().initial(value).build()
    }

    /// Creates a counter with the fast path disabled: every operation takes
    /// the mutex, exactly the seed Section 7 implementation. This is the
    /// ablation baseline the E8 experiment compares the fast path against.
    pub fn mutex_only() -> Self {
        Counter {
            fast_enabled: false,
            ..Self::builder().build()
        }
    }

    /// Creates a counter that records structure snapshots into the returned
    /// log (used by [`crate::TracingCounter`]). Tracing needs every value
    /// transition to appear in the log, so the fast path (which bypasses the
    /// lock, and therefore the log) is disabled.
    pub(crate) fn new_traced(cfg: &BuildConfig) -> (Self, Arc<TraceLog>) {
        let log = Arc::new(TraceLog::default());
        let counter = Counter {
            trace: Some(Arc::clone(&log)),
            fast_enabled: false,
            ..Self::from_config(cfg)
        };
        counter.record(&counter.lock());
        (counter, log)
    }

    /// Appends the current structure to the trace log, if tracing.
    fn record(&self, inner: &Inner) {
        if let Some(log) = &self.trace {
            log.push(snapshot_of(inner, self.fast.locked_value(inner.wide)));
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Lock poisoning can only arise from a panic inside these short
        // critical sections, which would indicate a bug in this crate, not in
        // user code; propagating the panic is the correct response.
        self.inner.lock().expect("counter lock poisoned")
    }

    /// Core of the slow-path `increment`/`try_increment`: returns the
    /// satisfied nodes to notify after the lock is released.
    fn raise(&self, amount: Value) -> Result<Vec<Arc<WaitNode>>, CounterOverflowError> {
        let mut inner = self.lock();
        self.stats.record_slow_entry();
        let new_value = self.fast.locked_add(&mut inner.wide, amount)?;
        self.stats.record_increment();
        let satisfied = inner.waiting.remove_satisfied(new_value);
        for node in &satisfied {
            node.signal();
            inner.draining.push(Arc::clone(node));
            self.stats.record_notify();
        }
        if inner.waiting.is_empty() {
            self.fast.clear_waiters();
        }
        self.record(&inner);
        Ok(satisfied)
    }

    /// Called by a resuming waiter (lock held): deregister from `node`, and if
    /// it was the last waiter, remove the node from the draining list.
    fn resume_from(&self, inner: &mut Inner, node: &Arc<WaitNode>) {
        self.stats.record_waiter_resumed();
        if node.remove_waiter() {
            inner.draining.retain(|n| !Arc::ptr_eq(n, node));
            self.stats.record_node_freed();
        }
        self.record(inner);
    }

    /// Levels currently waited on, in ascending order (diagnostics/tests).
    pub fn waiting_levels(&self) -> Vec<Value> {
        self.lock().waiting.levels()
    }

    /// Number of live wait nodes: unsatisfied levels plus satisfied levels
    /// still draining (diagnostics/tests, Section 7 storage measurements).
    pub fn live_nodes(&self) -> usize {
        let inner = self.lock();
        inner.waiting.len() + inner.draining.len()
    }

    /// Whether the packed word currently advertises waiters
    /// (diagnostics/tests for the fast-path protocol).
    #[cfg(test)]
    pub(crate) fn advertises_waiters(&self) -> bool {
        self.fast.has_waiters()
    }

    pub(crate) fn with_inner<R>(&self, f: impl FnOnce(&Inner, Value) -> R) -> R {
        let inner = self.lock();
        let value = self.fast.locked_value(inner.wide);
        f(&inner, value)
    }
}

impl MonotonicCounter for Counter {
    fn increment(&self, amount: Value) {
        if self.fast_enabled {
            match self.fast.try_increment(amount) {
                FastIncrement::Done => {
                    self.stats.record_fast_increment();
                    return;
                }
                FastIncrement::Overflow(e) => panic!("monotonic counter overflow: {e}"),
                FastIncrement::Contended => {}
            }
        }
        let satisfied = self
            .raise(amount)
            .unwrap_or_else(|e| panic!("monotonic counter overflow: {e}"));
        // Broadcast outside the lock: the flag is already set under the lock,
        // so a waiter that re-checks before our notify arrives simply exits
        // its wait loop; nobody can miss the wakeup.
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        if self.fast_enabled {
            match self.fast.try_increment(amount) {
                FastIncrement::Done => {
                    self.stats.record_fast_increment();
                    return Ok(());
                }
                FastIncrement::Overflow(e) => return Err(e),
                FastIncrement::Contended => {}
            }
        }
        let satisfied = self.raise(amount)?;
        for node in satisfied {
            node.cv.notify_all();
        }
        Ok(())
    }

    fn advance_to(&self, target: Value) {
        if self.fast_enabled {
            match self.fast.try_advance(target) {
                FastAdvance::Raised => {
                    self.stats.record_fast_increment();
                    return;
                }
                FastAdvance::NoOp => return,
                FastAdvance::Contended => {}
            }
        }
        let satisfied = {
            let mut inner = self.lock();
            self.stats.record_slow_entry();
            let Some(new_value) = self.fast.locked_advance(&mut inner.wide, target) else {
                return;
            };
            self.stats.record_increment();
            let satisfied = inner.waiting.remove_satisfied(new_value);
            for node in &satisfied {
                node.signal();
                inner.draining.push(Arc::clone(node));
                self.stats.record_notify();
            }
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            self.record(&inner);
            satisfied
        };
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        if self.fast_enabled && self.fast.is_satisfied(level) {
            self.stats.record_fast_check();
            return Ok(());
        }
        let mut inner = self.lock();
        self.stats.record_slow_entry();
        // Announce intent to wait *before* re-reading the value: the
        // register RMW and fast-path increment CASes hit the same word, so
        // whichever is ordered later sees the other (no missed wakeup; see
        // the fastpath module docs).
        let value = self.fast.register_waiter(inner.wide);
        if value >= level {
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            self.stats.record_check_immediate();
            return Ok(());
        }
        // A wait that would suspend on a poisoned counter fails immediately:
        // the increments it depends on are owed by a thread that is gone.
        if let Some(info) = &inner.poisoned {
            let info = info.clone();
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            return Err(CheckError::Poisoned(info));
        }
        let (node, inserted) = inner.waiting.find_or_insert(level);
        if inserted {
            self.stats.record_node_created();
        }
        node.add_waiter();
        self.stats.record_check_suspended();
        self.record(&inner);
        while !node.is_set() && !node.is_poisoned() {
            inner = node
                .cv
                .wait(inner)
                .expect("counter lock poisoned while waiting");
        }
        let poisoned = node.is_poisoned();
        self.resume_from(&mut inner, &node);
        if poisoned {
            let info = inner
                .poisoned
                .clone()
                .expect("poisoned wait node without a recorded cause");
            return Err(CheckError::Poisoned(info));
        }
        Ok(())
    }

    fn wait_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckError> {
        if self.fast_enabled && self.fast.is_satisfied(level) {
            self.stats.record_fast_check();
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        self.stats.record_slow_entry();
        let value = self.fast.register_waiter(inner.wide);
        if value >= level {
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            self.stats.record_check_immediate();
            return Ok(());
        }
        if let Some(info) = &inner.poisoned {
            let info = info.clone();
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            return Err(CheckError::Poisoned(info));
        }
        let (node, inserted) = inner.waiting.find_or_insert(level);
        if inserted {
            self.stats.record_node_created();
        }
        node.add_waiter();
        self.stats.record_check_suspended();
        self.record(&inner);
        loop {
            // Check order matters: satisfied first (a satisfied level owes
            // nothing, even when poisoning raced in), then poisoned (the
            // node already left the waiting list at poison time, so the
            // timeout-removal branch below must not run for it), then the
            // deadline.
            if node.is_set() {
                self.resume_from(&mut inner, &node);
                return Ok(());
            }
            if node.is_poisoned() {
                self.resume_from(&mut inner, &node);
                let info = inner
                    .poisoned
                    .clone()
                    .expect("poisoned wait node without a recorded cause");
                return Err(CheckError::Poisoned(info));
            }
            let now = Instant::now();
            if now >= deadline {
                // Abandon the wait. If we are the last waiter at this level
                // and the level was never satisfied, the node must leave the
                // waiting list, or a future increment would signal a dead
                // node (harmless) while the list length misreports storage.
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    inner.waiting.remove_level(level);
                    self.stats.record_node_freed();
                    if inner.waiting.is_empty() {
                        self.fast.clear_waiters();
                    }
                }
                self.record(&inner);
                return Err(CheckError::Timeout(CheckTimeoutError { level }));
            }
            let (guard, _timed_out) = node
                .cv
                .wait_timeout(inner, deadline - now)
                .expect("counter lock poisoned while waiting");
            inner = guard;
        }
    }

    fn poison(&self, info: FailureInfo) {
        if !self.poison_enabled {
            return;
        }
        let swept = {
            let mut inner = self.lock();
            if inner.poisoned.is_some() {
                return; // the first failure is the cause; later ones are noise
            }
            self.fast.set_poison();
            inner.poisoned = Some(info);
            // Sweep *every* waiting node (u64::MAX satisfies all levels):
            // each is marked poisoned instead of set and drains through the
            // same last-waiter-frees protocol as a satisfied node.
            let swept = inner.waiting.remove_satisfied(Value::MAX);
            for node in &swept {
                node.poison();
                inner.draining.push(Arc::clone(node));
                self.stats.record_notify();
            }
            self.fast.clear_waiters();
            self.record(&inner);
            swept
        };
        // Broadcast outside the lock, exactly as `increment` does.
        for node in swept {
            node.cv.notify_all();
        }
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        // The packed word's poison bit is set under the same lock that
        // publishes the cause, so a clear bit means "not poisoned" without
        // taking the lock.
        if !self.fast.is_poisoned() {
            return None;
        }
        self.lock().poisoned.clone()
    }
}

impl ResumableCounter for Counter {
    fn resume_from(value: Value) -> Self {
        Self::builder().initial(value).build()
    }
}

impl Resettable for Counter {
    fn reset(&mut self) {
        let inner = self.inner.get_mut().expect("counter lock poisoned");
        debug_assert!(
            inner.waiting.is_empty() && inner.draining.is_empty(),
            "reset called while threads wait on the counter"
        );
        inner.wide = 0;
        inner.poisoned = None;
        self.fast.reset(0);
    }
}

impl CounterDiagnostics for Counter {
    fn debug_value(&self) -> Value {
        // Below FAST_CAP the hint is exact, so no lock is needed; above it
        // the exact value lives in `wide` under the lock.
        let hint = self.fast.value_hint();
        if hint < FAST_CAP {
            hint
        } else {
            self.lock().wide
        }
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn impl_name(&self) -> &'static str {
        if self.fast_enabled {
            "waitlist"
        } else {
            "waitlist-mutex-only"
        }
    }

    fn waiters(&self) -> Vec<WaitingLevel> {
        self.lock()
            .waiting
            .nodes()
            .iter()
            .map(|n| WaitingLevel {
                level: n.level,
                threads: n.waiter_count(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    const SHORT: Duration = Duration::from_millis(50);
    const LONG: Duration = Duration::from_secs(10);

    #[test]
    fn new_counter_is_zero() {
        let c = Counter::default();
        assert_eq!(c.debug_value(), 0);
        assert_eq!(c.live_nodes(), 0);
    }

    #[test]
    fn with_value_starts_nonzero() {
        let c = Counter::builder().initial(17).build();
        assert_eq!(c.debug_value(), 17);
        c.check(17); // immediately satisfied
        c.increment(3);
        assert_eq!(c.debug_value(), 20);
    }

    #[test]
    fn check_zero_never_suspends() {
        let c = Counter::default();
        c.check(0);
        assert_eq!(c.stats().immediate_checks, 1);
    }

    #[test]
    fn increment_accumulates() {
        let c = Counter::default();
        c.increment(3);
        c.increment(0);
        c.increment(4);
        assert_eq!(c.debug_value(), 7);
        assert_eq!(c.stats().increments, 3);
    }

    #[test]
    fn check_satisfied_level_is_immediate() {
        let c = Counter::default();
        c.increment(10);
        c.check(10);
        c.check(1);
        let s = c.stats();
        assert_eq!(s.immediate_checks, 2);
        assert_eq!(s.suspensions, 0);
        assert_eq!(s.nodes_created, 0);
    }

    #[test]
    fn waiter_free_workload_never_takes_the_lock() {
        let c = Counter::default();
        for i in 0..100u64 {
            c.increment(1);
            c.check(i / 2);
        }
        c.advance_to(500);
        let s = c.stats();
        assert_eq!(s.slow_path_entries, 0, "no waiter ever existed");
        assert_eq!(s.fast_increments, 101);
        assert_eq!(s.fast_checks, 100);
        assert_eq!(s.increments, 101);
        assert_eq!(s.checks, 100);
    }

    #[test]
    fn mutex_only_counter_reports_slow_entries() {
        let c = Counter::mutex_only();
        c.increment(2);
        c.check(1);
        let s = c.stats();
        assert_eq!(s.fast_increments, 0);
        assert_eq!(s.fast_checks, 0);
        assert_eq!(s.slow_path_entries, 2);
        assert_eq!(c.debug_value(), 2);
        assert_eq!(c.impl_name(), "waitlist-mutex-only");
    }

    #[test]
    fn single_waiter_wakes_at_exact_level() {
        let c = Arc::new(Counter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check(5));
        // Raise to just below the level: waiter must stay suspended.
        c.increment(4);
        thread::sleep(SHORT);
        assert!(!h.is_finished(), "waiter woke below its level");
        c.increment(1);
        h.join().unwrap();
        assert_eq!(c.live_nodes(), 0);
    }

    #[test]
    fn one_increment_wakes_multiple_levels() {
        let c = Arc::new(Counter::default());
        let mut handles = Vec::new();
        for level in [2u64, 4, 6] {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || c.check(level)));
        }
        // Wait until all three nodes exist.
        while c.live_nodes() < 3 {
            thread::yield_now();
        }
        assert_eq!(c.waiting_levels(), vec![2, 4, 6]);
        c.increment(6); // satisfies all three distinct levels at once
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.live_nodes(), 0);
        assert_eq!(c.stats().nodes_created, 3);
        assert_eq!(c.stats().nodes_freed, 3);
    }

    #[test]
    fn threads_on_same_level_share_one_node() {
        let c = Arc::new(Counter::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || c.check(3)));
        }
        while c.stats().live_waiters < 8 {
            thread::yield_now();
        }
        // Eight waiters, one distinct level => exactly one node.
        assert_eq!(c.live_nodes(), 1);
        assert_eq!(c.stats().nodes_created, 1);
        c.increment(3);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.live_nodes(), 0);
        assert_eq!(
            c.stats().notifies,
            1,
            "one broadcast wakes all same-level waiters"
        );
    }

    #[test]
    fn partial_increment_wakes_only_satisfied_levels() {
        let c = Arc::new(Counter::default());
        let low = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.check(2))
        };
        let high = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.check(100))
        };
        while c.live_nodes() < 2 {
            thread::yield_now();
        }
        c.increment(50);
        low.join().unwrap();
        thread::sleep(SHORT);
        assert!(!high.is_finished(), "level-100 waiter woke at value 50");
        assert_eq!(c.waiting_levels(), vec![100]);
        c.increment(50);
        high.join().unwrap();
    }

    #[test]
    fn waiters_bit_clears_after_sweep() {
        let c = Arc::new(Counter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check(5));
        while c.live_nodes() == 0 {
            thread::yield_now();
        }
        assert!(c.advertises_waiters(), "registered waiter must set the bit");
        c.increment(5);
        h.join().unwrap();
        assert!(
            !c.advertises_waiters(),
            "bit must clear when the wait list empties"
        );
        // And increments take the fast path again.
        let fast_before = c.stats().fast_increments;
        c.increment(1);
        assert_eq!(c.stats().fast_increments, fast_before + 1);
    }

    #[test]
    fn waiters_bit_clears_when_last_timed_waiter_abandons() {
        let c = Counter::default();
        assert!(c.check_timeout(9, SHORT).is_err());
        assert!(!c.advertises_waiters(), "abandoned waiter left the bit set");
        let fast_before = c.stats().fast_increments;
        c.increment(1);
        assert_eq!(c.stats().fast_increments, fast_before + 1);
    }

    #[test]
    fn check_timeout_ok_when_already_satisfied() {
        let c = Counter::default();
        c.increment(1);
        assert_eq!(c.check_timeout(1, SHORT), Ok(()));
    }

    #[test]
    fn check_timeout_expires_and_cleans_up_node() {
        let c = Counter::default();
        let err = c.check_timeout(5, SHORT).unwrap_err();
        assert_eq!(err.level, 5);
        assert_eq!(c.live_nodes(), 0, "abandoned node must be removed");
        assert_eq!(c.waiting_levels(), Vec::<u64>::new());
    }

    #[test]
    fn check_timeout_succeeds_when_increment_arrives_in_time() {
        let c = Arc::new(Counter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check_timeout(3, LONG));
        while c.live_nodes() == 0 {
            thread::yield_now();
        }
        c.increment(3);
        assert_eq!(h.join().unwrap(), Ok(()));
    }

    #[test]
    fn timed_out_waiter_does_not_strand_others_at_same_level() {
        let c = Arc::new(Counter::default());
        let c1 = Arc::clone(&c);
        let patient = thread::spawn(move || c1.check(4));
        while c.live_nodes() == 0 {
            thread::yield_now();
        }
        // A second waiter at the same level times out and abandons.
        assert!(c.check_timeout(4, SHORT).is_err());
        assert_eq!(
            c.live_nodes(),
            1,
            "node must survive while a waiter remains"
        );
        assert!(
            c.advertises_waiters(),
            "bit must survive while a waiter remains"
        );
        c.increment(4);
        patient.join().unwrap();
        assert_eq!(c.live_nodes(), 0);
    }

    #[test]
    fn try_increment_overflow_leaves_counter_usable() {
        let c = Counter::default();
        c.increment(u64::MAX - 1);
        let err = c.try_increment(2).unwrap_err();
        assert_eq!(err.value, u64::MAX - 1);
        assert_eq!(err.amount, 2);
        assert_eq!(c.debug_value(), u64::MAX - 1);
        // Still usable to the limit.
        c.try_increment(1).unwrap();
        assert_eq!(c.debug_value(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn increment_overflow_panics() {
        let c = Counter::default();
        c.increment(u64::MAX);
        c.increment(1);
    }

    #[test]
    fn check_at_u64_max_level_is_satisfiable() {
        let c = Arc::new(Counter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check(u64::MAX));
        while c.live_nodes() == 0 {
            thread::yield_now();
        }
        c.increment(u64::MAX);
        h.join().unwrap();
    }

    #[test]
    fn values_beyond_the_hint_cap_stay_exact() {
        // Crossing FAST_CAP moves the exact value under the lock; arithmetic
        // and checks must remain exact u64 semantics throughout.
        let c = Counter::default();
        c.increment(FAST_CAP - 1);
        assert_eq!(c.debug_value(), FAST_CAP - 1);
        c.increment(2); // crosses the cap
        assert_eq!(c.debug_value(), FAST_CAP + 1);
        c.increment(1);
        assert_eq!(c.debug_value(), FAST_CAP + 2);
        c.check(FAST_CAP + 2);
        c.advance_to(u64::MAX);
        assert_eq!(c.debug_value(), u64::MAX);
        assert!(c.try_increment(1).is_err());
    }

    #[test]
    fn reset_restores_zero() {
        let mut c = Counter::default();
        c.increment(9);
        c.reset();
        assert_eq!(c.debug_value(), 0);
        // Reusable after reset, as in the paper's phase-reuse motivation.
        c.increment(2);
        c.check(2);
    }

    #[test]
    fn waker_order_is_fifo_per_level_completion() {
        // All waiters at distinct ascending levels; a sequence of unit
        // increments must release them in level order.
        let c = Arc::new(Counter::default());
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for level in 1..=6u64 {
            let c = Arc::clone(&c);
            let order = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                c.check(level);
                // The level can only be recorded after being satisfied;
                // recording under a lock gives a consistent order of the
                // *minimum* satisfied level at each point.
                order.lock().unwrap().push(level);
            }));
        }
        while c.live_nodes() < 6 {
            thread::yield_now();
        }
        for _ in 0..6 {
            c.increment(1);
        }
        for h in handles {
            h.join().unwrap();
        }
        let recorded = order.lock().unwrap().clone();
        let mut sorted = recorded.clone();
        sorted.sort_unstable();
        assert_eq!(recorded.len(), 6);
        assert_eq!(sorted, (1..=6).collect::<Vec<_>>());
    }

    #[test]
    fn stress_many_threads_many_levels() {
        let c = Arc::new(Counter::default());
        let resumed = Arc::new(AtomicUsize::new(0));
        let threads = 32;
        let mut handles = Vec::new();
        for i in 0..threads {
            let c = Arc::clone(&c);
            let resumed = Arc::clone(&resumed);
            handles.push(thread::spawn(move || {
                c.check((i % 8 + 1) as u64 * 10);
                resumed.fetch_add(1, Ordering::Relaxed);
            }));
        }
        while c.stats().live_waiters < threads as u64 {
            thread::yield_now();
        }
        // 8 distinct levels for 32 threads: Section 7 storage property.
        assert_eq!(c.live_nodes(), 8);
        for _ in 0..80 {
            c.increment(1);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(resumed.load(Ordering::Relaxed), threads);
        assert_eq!(c.live_nodes(), 0);
        let s = c.stats();
        assert_eq!(s.nodes_created, 8);
        assert_eq!(s.nodes_freed, 8);
        assert_eq!(s.max_live_waiters, threads as u64);
        assert_eq!(s.max_live_nodes, 8);
    }

    #[test]
    fn debug_format_shows_structure() {
        let c = Counter::default();
        c.increment(3);
        let s = format!("{c:?}");
        assert!(s.contains("value: 3"), "got {s}");
    }

    #[test]
    fn poison_wakes_blocked_waiters_with_the_cause() {
        let c = Arc::new(Counter::default());
        let mut handles = Vec::new();
        for level in [5u64, 9] {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || c.wait(level)));
        }
        while c.live_nodes() < 2 {
            thread::yield_now();
        }
        c.poison(FailureInfo::new("producer died"));
        for h in handles {
            let err = h.join().unwrap().unwrap_err();
            assert_eq!(err.failure().unwrap().message(), "producer died");
        }
        assert_eq!(c.live_nodes(), 0, "poisoned nodes must drain and free");
        let s = c.stats();
        assert_eq!(s.nodes_created, s.nodes_freed);
    }

    #[test]
    fn wait_on_poisoned_counter_fails_without_suspending() {
        let c = Counter::default();
        c.poison(FailureInfo::new("boom"));
        let err = c.wait(1).unwrap_err();
        assert!(matches!(err, CheckError::Poisoned(_)));
        let err = c.wait_timeout(1, LONG).unwrap_err();
        assert!(
            matches!(err, CheckError::Poisoned(_)),
            "poison must win over timeout"
        );
        assert_eq!(c.live_nodes(), 0);
    }

    #[test]
    fn satisfied_levels_succeed_even_when_poisoned() {
        let c = Counter::default();
        c.increment(5);
        c.poison(FailureInfo::new("boom"));
        assert!(c.wait(5).is_ok());
        assert!(c.wait_timeout(3, SHORT).is_ok());
        c.check(0); // must not panic: level 0 owes nothing
    }

    #[test]
    fn increments_still_apply_after_poison() {
        let c = Counter::default();
        c.poison(FailureInfo::new("boom"));
        c.increment(4);
        assert_eq!(c.debug_value(), 4);
        assert!(c.wait(4).is_ok(), "newly satisfied level succeeds");
        assert!(c.wait(5).is_err(), "would-block wait still fails");
    }

    #[test]
    fn first_poison_wins() {
        let c = Counter::default();
        c.poison(FailureInfo::new("first"));
        c.poison(FailureInfo::new("second"));
        assert_eq!(c.poison_info().unwrap().message(), "first");
    }

    #[test]
    fn poison_info_is_none_until_poisoned() {
        let c = Counter::default();
        assert!(c.poison_info().is_none());
        c.poison(FailureInfo::new("x").with_level(3));
        let info = c.poison_info().unwrap();
        assert_eq!(info.level(), Some(3));
    }

    #[test]
    #[should_panic(expected = "monotonic counter poisoned")]
    fn check_panics_on_poisoned_counter() {
        let c = Counter::default();
        c.poison(FailureInfo::new("dead increment owner"));
        c.check(1);
    }

    #[test]
    fn poisoned_timed_waiter_reports_poison_not_timeout() {
        let c = Arc::new(Counter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.wait_timeout(7, LONG));
        while c.live_nodes() == 0 {
            thread::yield_now();
        }
        c.poison(FailureInfo::new("late failure"));
        let err = h.join().unwrap().unwrap_err();
        assert!(matches!(err, CheckError::Poisoned(_)));
        assert_eq!(c.live_nodes(), 0);
    }

    #[test]
    fn poison_clears_waiters_bit_so_fast_increments_resume() {
        let c = Arc::new(Counter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.wait(5));
        while c.live_nodes() == 0 {
            thread::yield_now();
        }
        assert!(c.advertises_waiters());
        c.poison(FailureInfo::new("x"));
        h.join().unwrap().unwrap_err();
        assert!(!c.advertises_waiters());
        let fast_before = c.stats().fast_increments;
        c.increment(1);
        assert_eq!(
            c.stats().fast_increments,
            fast_before + 1,
            "increments with only the poison bit set stay on the fast path"
        );
    }

    #[test]
    fn reset_clears_poison() {
        let mut c = Counter::default();
        c.poison(FailureInfo::new("old phase"));
        c.reset();
        assert!(c.poison_info().is_none());
        c.increment(1);
        // A would-block wait now times out (the fresh phase is merely
        // unsatisfied), instead of reporting the stale poisoning.
        assert!(matches!(
            c.wait_timeout(2, SHORT),
            Err(CheckError::Timeout(_))
        ));
    }

    #[test]
    fn waiters_reports_levels_and_thread_counts() {
        let c = Arc::new(Counter::default());
        let mut handles = Vec::new();
        for level in [3u64, 3, 8] {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || c.check(level)));
        }
        while c.stats().live_waiters < 3 {
            thread::yield_now();
        }
        let w = c.waiters();
        assert_eq!(w.len(), 2);
        assert_eq!(
            w[0],
            WaitingLevel {
                level: 3,
                threads: 2
            }
        );
        assert_eq!(
            w[1],
            WaitingLevel {
                level: 8,
                threads: 1
            }
        );
        c.increment(8);
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.waiters().is_empty());
    }
}
