//! [`NaiveCounter`]: the strawman implementation the paper's Section 7 design
//! improves on — a single condition variable broadcast on every increment.
//!
//! Correct but wasteful: every increment wakes **every** waiting thread, each
//! of which re-checks its own level and usually goes back to sleep. Wakeup
//! work is O(total waiting threads) per increment instead of O(satisfied
//! levels). Experiment E7 quantifies the difference.

use crate::builder::{BuildConfig, Buildable, CounterBuilder};
use crate::error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
use crate::stats::{Stats, StatsSnapshot};
use crate::traits::{CounterDiagnostics, MonotonicCounter, Resettable, ResumableCounter};
use crate::Value;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

struct State {
    value: Value,
    poisoned: Option<FailureInfo>,
}

/// A monotonic counter with a single shared suspension queue.
///
/// Semantically interchangeable with [`crate::Counter`]; kept as the baseline
/// for the implementation-ablation experiment.
pub struct NaiveCounter {
    state: Mutex<State>,
    cv: Condvar,
    stats: Stats,
    poison_enabled: bool,
}

impl Default for NaiveCounter {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl Buildable for NaiveCounter {
    fn from_config(cfg: &BuildConfig) -> Self {
        NaiveCounter {
            state: Mutex::new(State {
                value: cfg.initial(),
                poisoned: None,
            }),
            cv: Condvar::new(),
            stats: Stats::with_enabled(cfg.stats_enabled()),
            poison_enabled: cfg.poison_propagates(),
        }
    }
}

impl NaiveCounter {
    /// Starts building a counter; see [`CounterBuilder`].
    pub fn builder() -> CounterBuilder<Self> {
        CounterBuilder::new()
    }

    /// Creates a counter with value zero.
    #[deprecated(note = "use CounterBuilder: `NaiveCounter::builder().build()`")]
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Creates a counter starting at `value`.
    #[deprecated(note = "use CounterBuilder: `NaiveCounter::builder().initial(value).build()`")]
    pub fn with_value(value: Value) -> Self {
        Self::builder().initial(value).build()
    }
}

impl MonotonicCounter for NaiveCounter {
    fn increment(&self, amount: Value) {
        self.try_increment(amount)
            .unwrap_or_else(|e| panic!("monotonic counter overflow: {e}"));
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        let mut state = self.state.lock().expect("counter lock poisoned");
        self.stats.record_slow_entry();
        state.value = state
            .value
            .checked_add(amount)
            .ok_or(CounterOverflowError {
                value: state.value,
                amount,
            })?;
        self.stats.record_increment();
        self.stats.record_notify();
        drop(state);
        // Broadcast unconditionally: with one queue there is no way to know
        // which (if any) waiters are satisfied without waking them all.
        self.cv.notify_all();
        Ok(())
    }

    fn advance_to(&self, target: Value) {
        let mut state = self.state.lock().expect("counter lock poisoned");
        self.stats.record_slow_entry();
        if target <= state.value {
            return;
        }
        state.value = target;
        self.stats.record_increment();
        self.stats.record_notify();
        drop(state);
        self.cv.notify_all();
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        let mut state = self.state.lock().expect("counter lock poisoned");
        self.stats.record_slow_entry();
        if state.value >= level {
            self.stats.record_check_immediate();
            return Ok(());
        }
        self.stats.record_check_suspended();
        while state.value < level {
            if let Some(info) = &state.poisoned {
                let info = info.clone();
                self.stats.record_waiter_resumed();
                return Err(CheckError::Poisoned(info));
            }
            state = self
                .cv
                .wait(state)
                .expect("counter lock poisoned while waiting");
        }
        self.stats.record_waiter_resumed();
        Ok(())
    }

    fn wait_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("counter lock poisoned");
        self.stats.record_slow_entry();
        if state.value >= level {
            self.stats.record_check_immediate();
            return Ok(());
        }
        self.stats.record_check_suspended();
        while state.value < level {
            if let Some(info) = &state.poisoned {
                let info = info.clone();
                self.stats.record_waiter_resumed();
                return Err(CheckError::Poisoned(info));
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.record_waiter_resumed();
                return Err(CheckError::Timeout(CheckTimeoutError { level }));
            }
            let (guard, _) = self
                .cv
                .wait_timeout(state, deadline - now)
                .expect("counter lock poisoned while waiting");
            state = guard;
        }
        self.stats.record_waiter_resumed();
        Ok(())
    }

    fn poison(&self, info: FailureInfo) {
        if !self.poison_enabled {
            return;
        }
        let mut state = self.state.lock().expect("counter lock poisoned");
        if state.poisoned.is_some() {
            return;
        }
        state.poisoned = Some(info);
        self.stats.record_notify();
        drop(state);
        self.cv.notify_all();
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        self.state
            .lock()
            .expect("counter lock poisoned")
            .poisoned
            .clone()
    }
}

impl ResumableCounter for NaiveCounter {
    fn resume_from(value: Value) -> Self {
        Self::builder().initial(value).build()
    }
}

impl Resettable for NaiveCounter {
    fn reset(&mut self) {
        let state = self.state.get_mut().expect("counter lock poisoned");
        state.value = 0;
        state.poisoned = None;
    }
}

impl CounterDiagnostics for NaiveCounter {
    fn debug_value(&self) -> Value {
        self.state.lock().expect("counter lock poisoned").value
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn impl_name(&self) -> &'static str {
        "naive-broadcast"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn wait_and_wake() {
        let c = Arc::new(NaiveCounter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check(4));
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        c.increment(2);
        thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished());
        c.increment(2);
        h.join().unwrap();
    }

    #[test]
    fn every_increment_broadcasts() {
        let c = NaiveCounter::default();
        c.increment(1);
        c.increment(1);
        c.increment(1);
        assert_eq!(c.stats().notifies, 3);
    }

    #[test]
    fn timeout_expires() {
        let c = NaiveCounter::default();
        assert!(c.check_timeout(1, Duration::from_millis(20)).is_err());
    }

    #[test]
    fn overflow_is_fallible() {
        let c = NaiveCounter::default();
        c.increment(u64::MAX);
        assert!(c.try_increment(1).is_err());
        assert_eq!(c.debug_value(), u64::MAX);
    }

    #[test]
    fn poison_wakes_the_shared_queue() {
        let c = Arc::new(NaiveCounter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.wait(9));
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        c.poison(FailureInfo::new("naive failure"));
        assert!(matches!(h.join().unwrap(), Err(CheckError::Poisoned(_))));
        // Satisfied levels still succeed after poisoning.
        c.increment(9);
        assert!(c.wait(9).is_ok());
        assert!(c.wait(10).is_err());
    }

    #[test]
    fn many_waiters_all_resume() {
        let c = Arc::new(NaiveCounter::default());
        let mut handles = Vec::new();
        for level in 1..=16u64 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || c.check(level)));
        }
        while c.stats().live_waiters < 16 {
            thread::yield_now();
        }
        c.increment(16);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.stats().live_waiters, 0);
    }
}
