//! [`ParkingCounter`]: the Section 7 algorithm on `parking_lot` primitives.
//!
//! `parking_lot` queues waiters in userspace, which changes the constant
//! factors of suspension and wakeup; experiment E7 compares it against the
//! `std` condvar implementations. The packed-word fast path is the same as
//! [`crate::Counter`]'s, so only suspending/waking operations reach the
//! `parking_lot` mutex at all.

use crate::builder::{BuildConfig, Buildable, CounterBuilder};
use crate::error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
use crate::fastpath::{FastAdvance, FastIncrement, FastWord, FAST_CAP};
use crate::stats::{Stats, StatsSnapshot};
use crate::traits::{
    CounterDiagnostics, MonotonicCounter, Resettable, ResumableCounter, WaitingLevel,
};
use crate::Value;
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wait node with a `parking_lot` condition variable; otherwise identical to
/// the `std` node in `crate::node`.
struct PlNode {
    count: AtomicUsize,
    set: AtomicBool,
    poisoned: AtomicBool,
    cv: Condvar,
}

impl PlNode {
    fn new() -> Self {
        PlNode {
            count: AtomicUsize::new(0),
            set: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            cv: Condvar::new(),
        }
    }
}

struct Inner {
    /// Exact value once the packed hint saturates; see [`crate::fastpath`].
    wide: Value,
    waiting: BTreeMap<Value, Arc<PlNode>>,
    /// The first poisoning cause, if any. Set at most once.
    poisoned: Option<FailureInfo>,
}

/// A monotonic counter built on `parking_lot::{Mutex, Condvar}`.
///
/// Semantically interchangeable with [`crate::Counter`]; see the crate docs
/// for the implementation comparison table.
pub struct ParkingCounter {
    fast: FastWord,
    inner: Mutex<Inner>,
    stats: Stats,
    poison_enabled: bool,
}

impl Default for ParkingCounter {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl Buildable for ParkingCounter {
    fn from_config(cfg: &BuildConfig) -> Self {
        ParkingCounter {
            fast: FastWord::new(cfg.initial()),
            inner: Mutex::new(Inner {
                wide: cfg.initial(),
                waiting: BTreeMap::new(),
                poisoned: None,
            }),
            stats: Stats::with_enabled(cfg.stats_enabled()),
            poison_enabled: cfg.poison_propagates(),
        }
    }
}

impl ParkingCounter {
    /// Starts building a counter; see [`CounterBuilder`].
    pub fn builder() -> CounterBuilder<Self> {
        CounterBuilder::new()
    }

    /// Creates a counter with value zero and no waiting threads.
    #[deprecated(note = "use CounterBuilder: `ParkingCounter::builder().build()`")]
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Creates a counter starting at `value`.
    #[deprecated(note = "use CounterBuilder: `ParkingCounter::builder().initial(value).build()`")]
    pub fn with_value(value: Value) -> Self {
        Self::builder().initial(value).build()
    }

    fn remove_satisfied(
        waiting: &mut BTreeMap<Value, Arc<PlNode>>,
        value: Value,
    ) -> Vec<Arc<PlNode>> {
        match value.checked_add(1) {
            Some(next) => {
                let rest = waiting.split_off(&next);
                std::mem::replace(waiting, rest).into_values().collect()
            }
            None => std::mem::take(waiting).into_values().collect(),
        }
    }

    fn raise(&self, amount: Value) -> Result<Vec<Arc<PlNode>>, CounterOverflowError> {
        let mut inner = self.inner.lock();
        self.stats.record_slow_entry();
        let new_value = self.fast.locked_add(&mut inner.wide, amount)?;
        self.stats.record_increment();
        let satisfied = Self::remove_satisfied(&mut inner.waiting, new_value);
        for node in &satisfied {
            node.set.store(true, Relaxed);
            self.stats.record_notify();
        }
        if inner.waiting.is_empty() {
            self.fast.clear_waiters();
        }
        Ok(satisfied)
    }

    /// Shared tail of `check`/`check_timeout` under the already-held lock.
    fn enqueue(&self, inner: &mut Inner, level: Value) -> Arc<PlNode> {
        let mut inserted = false;
        let node = Arc::clone(inner.waiting.entry(level).or_insert_with(|| {
            inserted = true;
            Arc::new(PlNode::new())
        }));
        if inserted {
            self.stats.record_node_created();
        }
        node.count.fetch_add(1, Relaxed);
        self.stats.record_check_suspended();
        node
    }
}

impl MonotonicCounter for ParkingCounter {
    fn increment(&self, amount: Value) {
        match self.fast.try_increment(amount) {
            FastIncrement::Done => {
                self.stats.record_fast_increment();
                return;
            }
            FastIncrement::Overflow(e) => panic!("monotonic counter overflow: {e}"),
            FastIncrement::Contended => {}
        }
        let satisfied = self
            .raise(amount)
            .unwrap_or_else(|e| panic!("monotonic counter overflow: {e}"));
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        match self.fast.try_increment(amount) {
            FastIncrement::Done => {
                self.stats.record_fast_increment();
                return Ok(());
            }
            FastIncrement::Overflow(e) => return Err(e),
            FastIncrement::Contended => {}
        }
        let satisfied = self.raise(amount)?;
        for node in satisfied {
            node.cv.notify_all();
        }
        Ok(())
    }

    fn advance_to(&self, target: Value) {
        match self.fast.try_advance(target) {
            FastAdvance::Raised => {
                self.stats.record_fast_increment();
                return;
            }
            FastAdvance::NoOp => return,
            FastAdvance::Contended => {}
        }
        let satisfied = {
            let mut inner = self.inner.lock();
            self.stats.record_slow_entry();
            let Some(new_value) = self.fast.locked_advance(&mut inner.wide, target) else {
                return;
            };
            self.stats.record_increment();
            let satisfied = Self::remove_satisfied(&mut inner.waiting, new_value);
            for node in &satisfied {
                node.set.store(true, Relaxed);
                self.stats.record_notify();
            }
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            satisfied
        };
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        if self.fast.is_satisfied(level) {
            self.stats.record_fast_check();
            return Ok(());
        }
        let mut inner = self.inner.lock();
        self.stats.record_slow_entry();
        let value = self.fast.register_waiter(inner.wide);
        if value >= level {
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            self.stats.record_check_immediate();
            return Ok(());
        }
        if let Some(info) = &inner.poisoned {
            let info = info.clone();
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            return Err(CheckError::Poisoned(info));
        }
        let node = self.enqueue(&mut inner, level);
        while !node.set.load(Relaxed) && !node.poisoned.load(Relaxed) {
            node.cv.wait(&mut inner);
        }
        let poisoned = node.poisoned.load(Relaxed);
        self.stats.record_waiter_resumed();
        if node.count.fetch_sub(1, Relaxed) == 1 {
            self.stats.record_node_freed();
        }
        if poisoned {
            let info = inner
                .poisoned
                .clone()
                .expect("poisoned wait node without a recorded cause");
            return Err(CheckError::Poisoned(info));
        }
        Ok(())
    }

    fn wait_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckError> {
        if self.fast.is_satisfied(level) {
            self.stats.record_fast_check();
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        self.stats.record_slow_entry();
        let value = self.fast.register_waiter(inner.wide);
        if value >= level {
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            self.stats.record_check_immediate();
            return Ok(());
        }
        if let Some(info) = &inner.poisoned {
            let info = info.clone();
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            return Err(CheckError::Poisoned(info));
        }
        let node = self.enqueue(&mut inner, level);
        loop {
            // Satisfied first, then poisoned (the node already left the map
            // at poison time), then the deadline.
            if node.set.load(Relaxed) {
                self.stats.record_waiter_resumed();
                if node.count.fetch_sub(1, Relaxed) == 1 {
                    self.stats.record_node_freed();
                }
                return Ok(());
            }
            if node.poisoned.load(Relaxed) {
                self.stats.record_waiter_resumed();
                if node.count.fetch_sub(1, Relaxed) == 1 {
                    self.stats.record_node_freed();
                }
                let info = inner
                    .poisoned
                    .clone()
                    .expect("poisoned wait node without a recorded cause");
                return Err(CheckError::Poisoned(info));
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.record_waiter_resumed();
                if node.count.fetch_sub(1, Relaxed) == 1 {
                    inner.waiting.remove(&level);
                    self.stats.record_node_freed();
                    if inner.waiting.is_empty() {
                        self.fast.clear_waiters();
                    }
                }
                return Err(CheckError::Timeout(CheckTimeoutError { level }));
            }
            node.cv.wait_for(&mut inner, deadline - now);
        }
    }

    fn poison(&self, info: FailureInfo) {
        if !self.poison_enabled {
            return;
        }
        let swept = {
            let mut inner = self.inner.lock();
            if inner.poisoned.is_some() {
                return;
            }
            self.fast.set_poison();
            inner.poisoned = Some(info);
            let swept = Self::remove_satisfied(&mut inner.waiting, Value::MAX);
            for node in &swept {
                node.poisoned.store(true, Relaxed);
                self.stats.record_notify();
            }
            self.fast.clear_waiters();
            swept
        };
        for node in swept {
            node.cv.notify_all();
        }
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        if !self.fast.is_poisoned() {
            return None;
        }
        self.inner.lock().poisoned.clone()
    }
}

impl ResumableCounter for ParkingCounter {
    fn resume_from(value: Value) -> Self {
        Self::builder().initial(value).build()
    }
}

impl Resettable for ParkingCounter {
    fn reset(&mut self) {
        let inner = self.inner.get_mut();
        debug_assert!(inner.waiting.is_empty(), "reset called while threads wait");
        inner.wide = 0;
        inner.poisoned = None;
        self.fast.reset(0);
    }
}

impl CounterDiagnostics for ParkingCounter {
    fn debug_value(&self) -> Value {
        let hint = self.fast.value_hint();
        if hint < FAST_CAP {
            hint
        } else {
            self.inner.lock().wide
        }
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn impl_name(&self) -> &'static str {
        "parking_lot"
    }

    fn waiters(&self) -> Vec<WaitingLevel> {
        self.inner
            .lock()
            .waiting
            .iter()
            .map(|(level, n)| WaitingLevel {
                level: *level,
                threads: n.count.load(Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn wait_and_wake() {
        let c = Arc::new(ParkingCounter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check(7));
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        c.increment(7);
        h.join().unwrap();
        assert_eq!(c.stats().nodes_freed, 1);
    }

    #[test]
    fn same_level_shares_node() {
        let c = Arc::new(ParkingCounter::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || c.check(2)));
        }
        while c.stats().live_waiters < 4 {
            thread::yield_now();
        }
        assert_eq!(c.stats().live_nodes, 1);
        c.increment(2);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn timeout_expires_and_cleans_up() {
        let c = ParkingCounter::default();
        assert!(c.check_timeout(5, Duration::from_millis(20)).is_err());
        assert_eq!(c.stats().live_nodes, 0);
        c.increment(1);
        assert_eq!(c.stats().fast_increments, 1, "waiters bit must be clear");
    }

    #[test]
    fn reset_after_use() {
        let mut c = ParkingCounter::default();
        c.increment(3);
        c.reset();
        assert_eq!(c.debug_value(), 0);
    }

    #[test]
    fn poison_wakes_parked_waiters() {
        let c = Arc::new(ParkingCounter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.wait(11));
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        c.poison(FailureInfo::new("parked failure"));
        assert!(matches!(h.join().unwrap(), Err(CheckError::Poisoned(_))));
        assert_eq!(c.stats().live_nodes, 0);
        assert_eq!(c.poison_info().unwrap().message(), "parked failure");
    }

    #[test]
    fn waiter_free_workload_stays_on_fast_path() {
        let c = ParkingCounter::default();
        c.increment(2);
        c.check(1);
        let s = c.stats();
        assert_eq!(s.slow_path_entries, 0);
        assert_eq!(s.fast_increments, 1);
        assert_eq!(s.fast_checks, 1);
    }
}
