//! [`ParkingCounter`]: the Section 7 algorithm on `parking_lot` primitives.
//!
//! `parking_lot` queues waiters in userspace, which changes the constant
//! factors of suspension and wakeup; experiment E7 compares it against the
//! `std` condvar implementations.

use crate::error::{CheckTimeoutError, CounterOverflowError};
use crate::stats::{Stats, StatsSnapshot};
use crate::traits::MonotonicCounter;
use crate::Value;
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wait node with a `parking_lot` condition variable; otherwise identical to
/// the `std` node in `crate::node`.
struct PlNode {
    count: AtomicUsize,
    set: AtomicBool,
    cv: Condvar,
}

impl PlNode {
    fn new() -> Self {
        PlNode {
            count: AtomicUsize::new(0),
            set: AtomicBool::new(false),
            cv: Condvar::new(),
        }
    }
}

struct Inner {
    value: Value,
    waiting: BTreeMap<Value, Arc<PlNode>>,
}

/// A monotonic counter built on `parking_lot::{Mutex, Condvar}`.
///
/// Semantically interchangeable with [`crate::Counter`]; see the crate docs
/// for the implementation comparison table.
pub struct ParkingCounter {
    inner: Mutex<Inner>,
    stats: Stats,
}

impl Default for ParkingCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl ParkingCounter {
    /// Creates a counter with value zero and no waiting threads.
    pub fn new() -> Self {
        ParkingCounter {
            inner: Mutex::new(Inner {
                value: 0,
                waiting: BTreeMap::new(),
            }),
            stats: Stats::default(),
        }
    }

    fn remove_satisfied(
        waiting: &mut BTreeMap<Value, Arc<PlNode>>,
        value: Value,
    ) -> Vec<Arc<PlNode>> {
        match value.checked_add(1) {
            Some(next) => {
                let rest = waiting.split_off(&next);
                std::mem::replace(waiting, rest).into_values().collect()
            }
            None => std::mem::take(waiting).into_values().collect(),
        }
    }

    fn raise(&self, amount: Value) -> Result<Vec<Arc<PlNode>>, CounterOverflowError> {
        let mut inner = self.inner.lock();
        let new_value = inner
            .value
            .checked_add(amount)
            .ok_or(CounterOverflowError {
                value: inner.value,
                amount,
            })?;
        inner.value = new_value;
        self.stats.record_increment();
        let satisfied = Self::remove_satisfied(&mut inner.waiting, new_value);
        for node in &satisfied {
            node.set.store(true, Relaxed);
            self.stats.record_notify();
        }
        Ok(satisfied)
    }
}

impl MonotonicCounter for ParkingCounter {
    fn increment(&self, amount: Value) {
        let satisfied = self
            .raise(amount)
            .unwrap_or_else(|e| panic!("monotonic counter overflow: {e}"));
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        let satisfied = self.raise(amount)?;
        for node in satisfied {
            node.cv.notify_all();
        }
        Ok(())
    }

    fn advance_to(&self, target: Value) {
        let satisfied = {
            let mut inner = self.inner.lock();
            if target <= inner.value {
                return;
            }
            inner.value = target;
            self.stats.record_increment();
            let satisfied = Self::remove_satisfied(&mut inner.waiting, target);
            for node in &satisfied {
                node.set.store(true, Relaxed);
                self.stats.record_notify();
            }
            satisfied
        };
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    fn check(&self, level: Value) {
        let mut inner = self.inner.lock();
        if inner.value >= level {
            self.stats.record_check_immediate();
            return;
        }
        let mut inserted = false;
        let node = Arc::clone(inner.waiting.entry(level).or_insert_with(|| {
            inserted = true;
            Arc::new(PlNode::new())
        }));
        if inserted {
            self.stats.record_node_created();
        }
        node.count.fetch_add(1, Relaxed);
        self.stats.record_check_suspended();
        while !node.set.load(Relaxed) {
            node.cv.wait(&mut inner);
        }
        self.stats.record_waiter_resumed();
        if node.count.fetch_sub(1, Relaxed) == 1 {
            self.stats.record_node_freed();
        }
    }

    fn check_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        if inner.value >= level {
            self.stats.record_check_immediate();
            return Ok(());
        }
        let mut inserted = false;
        let node = Arc::clone(inner.waiting.entry(level).or_insert_with(|| {
            inserted = true;
            Arc::new(PlNode::new())
        }));
        if inserted {
            self.stats.record_node_created();
        }
        node.count.fetch_add(1, Relaxed);
        self.stats.record_check_suspended();
        loop {
            if node.set.load(Relaxed) {
                self.stats.record_waiter_resumed();
                if node.count.fetch_sub(1, Relaxed) == 1 {
                    self.stats.record_node_freed();
                }
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.record_waiter_resumed();
                if node.count.fetch_sub(1, Relaxed) == 1 {
                    inner.waiting.remove(&level);
                    self.stats.record_node_freed();
                }
                return Err(CheckTimeoutError { level });
            }
            node.cv.wait_for(&mut inner, deadline - now);
        }
    }

    fn reset(&mut self) {
        let inner = self.inner.get_mut();
        debug_assert!(inner.waiting.is_empty(), "reset called while threads wait");
        inner.value = 0;
    }

    fn debug_value(&self) -> Value {
        self.inner.lock().value
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn impl_name(&self) -> &'static str {
        "parking_lot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn wait_and_wake() {
        let c = Arc::new(ParkingCounter::new());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check(7));
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        c.increment(7);
        h.join().unwrap();
        assert_eq!(c.stats().nodes_freed, 1);
    }

    #[test]
    fn same_level_shares_node() {
        let c = Arc::new(ParkingCounter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || c.check(2)));
        }
        while c.stats().live_waiters < 4 {
            thread::yield_now();
        }
        assert_eq!(c.stats().live_nodes, 1);
        c.increment(2);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn timeout_expires_and_cleans_up() {
        let c = ParkingCounter::new();
        assert!(c.check_timeout(5, Duration::from_millis(20)).is_err());
        assert_eq!(c.stats().live_nodes, 0);
    }

    #[test]
    fn reset_after_use() {
        let mut c = ParkingCounter::new();
        c.increment(3);
        c.reset();
        assert_eq!(c.debug_value(), 0);
    }
}
