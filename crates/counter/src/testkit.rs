//! Shared test helpers for auditing counter *wrappers*.
//!
//! Wrapper types (chaos injection, tracing, clock tracking) must forward the
//! **entire** [`MonotonicCounter`] surface: a wrapper that silently relies on
//! a provided default for a method it means to intercept, or that drops a
//! forwarding when the trait grows, reintroduces exactly the silent-hang
//! failure modes the poisoning machinery exists to remove. This module
//! provides a [`RecordingCounter`] that logs every trait-method invocation,
//! and a driver ([`exercise_all`]) + strict assertion
//! ([`assert_all_forwarded`]) pair that downstream crates reuse as a shared
//! forwarding-conformance test.
//!
//! ```
//! use mc_counter::testkit::{self, RecordingCounter};
//!
//! let rec = RecordingCounter::new();
//! testkit::exercise_all(&rec); // drive the full surface, non-blockingly
//! testkit::assert_all_forwarded(&rec);
//! ```

use crate::error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
use crate::stats::StatsSnapshot;
use crate::traits::{
    CounterDiagnostics, MonotonicCounter, Resettable, ResumableCounter, WaitingLevel,
};
use crate::{Counter, Value};
use std::sync::Mutex;
use std::time::Duration;

/// Every [`MonotonicCounter`] method, including the provided ones: the names
/// [`assert_all_forwarded`] requires to appear in a [`RecordingCounter`] log.
pub const ALL_METHODS: [&str; 9] = [
    "increment",
    "try_increment",
    "advance_to",
    "wait",
    "wait_timeout",
    "check",
    "check_timeout",
    "poison",
    "poison_info",
];

/// A fully functional counter (backed by [`Counter`]) that records the name
/// of every [`MonotonicCounter`] method invoked on it.
///
/// Wrap it in the adapter under test, drive the adapter with
/// [`exercise_all`], then call [`assert_all_forwarded`]: any method the
/// adapter fails to forward is reported by name.
pub struct RecordingCounter {
    inner: Counter,
    calls: Mutex<Vec<&'static str>>,
}

impl Default for RecordingCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordingCounter {
    /// Creates a recording counter with value zero and an empty log.
    pub fn new() -> Self {
        RecordingCounter {
            inner: Counter::builder().build(),
            calls: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, name: &'static str) {
        self.calls
            .lock()
            .expect("recording log poisoned")
            .push(name);
    }

    /// The method names invoked so far, in call order.
    pub fn calls(&self) -> Vec<&'static str> {
        self.calls.lock().expect("recording log poisoned").clone()
    }

    /// The entries of [`ALL_METHODS`] *not* yet invoked.
    pub fn missing_calls(&self) -> Vec<&'static str> {
        let seen = self.calls();
        ALL_METHODS
            .iter()
            .copied()
            .filter(|m| !seen.contains(m))
            .collect()
    }
}

impl MonotonicCounter for RecordingCounter {
    fn increment(&self, amount: Value) {
        self.record("increment");
        self.inner.increment(amount);
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        self.record("try_increment");
        self.inner.try_increment(amount)
    }

    fn advance_to(&self, target: Value) {
        self.record("advance_to");
        self.inner.advance_to(target);
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        self.record("wait");
        self.inner.wait(level)
    }

    fn wait_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckError> {
        self.record("wait_timeout");
        self.inner.wait_timeout(level, timeout)
    }

    fn check(&self, level: Value) {
        self.record("check");
        self.inner.check(level);
    }

    fn check_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckTimeoutError> {
        self.record("check_timeout");
        self.inner.check_timeout(level, timeout)
    }

    fn poison(&self, info: FailureInfo) {
        self.record("poison");
        self.inner.poison(info);
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        self.record("poison_info");
        self.inner.poison_info()
    }
}

impl Resettable for RecordingCounter {
    fn reset(&mut self) {
        self.record("reset");
        self.inner.reset();
    }
}

impl ResumableCounter for RecordingCounter {
    fn resume_from(value: Value) -> Self {
        RecordingCounter {
            inner: Counter::resume_from(value),
            calls: Mutex::new(vec!["resume_from"]),
        }
    }
}

impl CounterDiagnostics for RecordingCounter {
    fn debug_value(&self) -> Value {
        self.inner.debug_value()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn impl_name(&self) -> &'static str {
        "recording"
    }

    fn waiters(&self) -> Vec<WaitingLevel> {
        self.inner.waiters()
    }
}

/// Drives every [`MonotonicCounter`] method on `counter` exactly as a
/// single-threaded program can — no call blocks — and asserts the expected
/// semantics along the way. Ends with the counter poisoned (cause message
/// `"testkit exercise"`), value 6.
pub fn exercise_all<C: MonotonicCounter + ?Sized>(counter: &C) {
    assert!(
        counter.try_increment(1).is_ok(),
        "try_increment must succeed"
    );
    counter.increment(2);
    counter.advance_to(5);
    assert!(counter.wait(5).is_ok(), "satisfied wait must return Ok");
    assert!(
        matches!(
            counter.wait_timeout(6, Duration::from_millis(1)),
            Err(CheckError::Timeout(_))
        ),
        "unsatisfied wait_timeout must time out"
    );
    counter.check(5);
    assert!(
        counter.check_timeout(6, Duration::from_millis(1)).is_err(),
        "unsatisfied check_timeout must time out"
    );
    assert!(
        counter.poison_info().is_none(),
        "poison_info must be None before poisoning"
    );
    counter.poison(FailureInfo::new("testkit exercise"));
    let info = counter
        .poison_info()
        .expect("poison_info must report the cause after poisoning");
    assert_eq!(info.message(), "testkit exercise");
    assert!(
        matches!(counter.wait(100), Err(CheckError::Poisoned(_))),
        "blocked wait on a poisoned counter must fail"
    );
    counter.increment(1);
    assert!(
        counter.wait(6).is_ok(),
        "satisfied wait must succeed even when poisoned"
    );
}

/// Drives the [`ResumableCounter`] surface: constructs via
/// `resume_from(4)` and asserts the recovered value behaves exactly like an
/// organically reached one — satisfied waits return immediately, higher
/// levels block (and time out), and further increments accumulate on top.
/// Requires [`CounterDiagnostics`] so the recovered value is observable.
pub fn exercise_resumable<C: ResumableCounter + CounterDiagnostics>() {
    let c = C::resume_from(4);
    assert_eq!(c.debug_value(), 4, "resumed value must be visible");
    assert!(
        c.wait(4).is_ok(),
        "the resumed value satisfies waits immediately"
    );
    assert!(
        matches!(
            c.wait_timeout(5, Duration::from_millis(1)),
            Err(CheckError::Timeout(_))
        ),
        "levels above the resumed value still block"
    );
    c.increment(2);
    assert!(
        c.wait(6).is_ok(),
        "increments accumulate on the resumed value"
    );
    assert_eq!(c.debug_value(), 6);
    assert!(c.waiters().is_empty(), "no waiter survives the exercise");
    assert!(
        c.poison_info().is_none(),
        "resuming must not carry a poison bit"
    );
    // Resuming from zero is indistinguishable from a fresh counter.
    assert_eq!(C::resume_from(0).debug_value(), 0);
}

/// Drives one full supervised-restart cycle — poison, clear-via-recovery,
/// reuse — the lifecycle a counter goes through under a supervision tree:
///
/// 1. a worker applies part of its work and dies, poisoning the counter;
/// 2. recovery constructs a replacement via
///    [`ResumableCounter::resume_from`] at the observed value (the poison
///    does not travel — "clearing" it is building the successor);
/// 3. the replacement is reused: it serves satisfied waits immediately,
///    accepts the remaining increments, and survives a *second* crash and
///    recovery on top.
pub fn exercise_restart<C: ResumableCounter + CounterDiagnostics>() {
    // A worker crashed mid-protocol: 3 of 5 promised increments applied.
    let failed = C::resume_from(0);
    failed.increment(3);
    failed.poison(FailureInfo::new("worker panicked mid-protocol").with_level(2));
    assert!(
        matches!(failed.wait(5), Err(CheckError::Poisoned(_))),
        "the unreachable level must fail with the cause"
    );
    assert!(
        failed.wait(3).is_ok(),
        "the already-reached prefix survives the poison (satisfied-first)"
    );
    let watermark = failed.debug_value();
    assert_eq!(watermark, 3, "the applied prefix is the resume point");

    // Clear-via-recovery: the replacement resumes from the watermark clean.
    let recovered = C::resume_from(watermark);
    assert!(
        recovered.poison_info().is_none(),
        "poison must not travel into the recovered counter"
    );
    assert_eq!(recovered.debug_value(), 3);

    // Reuse: the restarted worker delivers exactly the remaining amount.
    recovered.increment(2);
    assert!(recovered.wait(5).is_ok(), "the original target is reached");
    assert_eq!(recovered.debug_value(), 5, "no double-counted increments");
    assert!(recovered.waiters().is_empty());

    // A second crash/recovery cycle works on top of the first.
    recovered.poison(FailureInfo::new("second crash"));
    let second = C::resume_from(recovered.debug_value());
    assert!(second.poison_info().is_none());
    assert!(second.wait(5).is_ok());
    second.increment(1);
    assert_eq!(second.debug_value(), 6);
    assert!(
        second.try_increment(1).is_ok(),
        "a twice-recovered counter still accepts work"
    );
}

/// Panics with the missing method names unless every entry of
/// [`ALL_METHODS`] was invoked on `rec` — the strict half of the shared
/// forwarding-conformance test.
pub fn assert_all_forwarded(rec: &RecordingCounter) {
    let missing = rec.missing_calls();
    assert!(
        missing.is_empty(),
        "wrapper failed to forward MonotonicCounter methods: {missing:?} \
         (recorded calls: {:?})",
        rec.calls()
    );
}

/// Coerces a counter to [`crate::DynCounter`] and drives the full erased
/// surface. Call this once per implementation: it fails to compile if the
/// trait stops being object-safe, and fails at runtime if erased dispatch
/// misbehaves.
pub fn exercise_erased<C: MonotonicCounter + 'static>(counter: C) {
    let erased: crate::DynCounter = std::sync::Arc::new(counter);
    exercise_all(erased.as_ref());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_implementation_coerces_to_dyn_counter() {
        exercise_erased(crate::Counter::default());
        exercise_erased(crate::AtomicCounter::default());
        exercise_erased(crate::BTreeCounter::default());
        exercise_erased(crate::ParkingCounter::default());
        exercise_erased(crate::NaiveCounter::default());
        exercise_erased(crate::SpinCounter::default());
        exercise_erased(crate::MonitorCounter::default());
        exercise_erased(crate::TracingCounter::default());
        exercise_erased(crate::ShardedCounter::default());
    }

    #[test]
    fn exercise_all_hits_every_method_on_a_bare_recording_counter() {
        let rec = RecordingCounter::new();
        exercise_all(&rec);
        assert_all_forwarded(&rec);
        assert_eq!(rec.debug_value(), 6);
    }

    #[test]
    fn missing_calls_reports_undriven_methods() {
        let rec = RecordingCounter::new();
        rec.increment(1);
        let missing = rec.missing_calls();
        assert!(!missing.contains(&"increment"));
        assert!(missing.contains(&"poison"));
        assert_eq!(missing.len(), ALL_METHODS.len() - 1);
    }

    #[test]
    fn exercise_resumable_drives_the_resumable_surface() {
        exercise_resumable::<RecordingCounter>();
        let rec = RecordingCounter::resume_from(4);
        exercise_all_on_resumed(&rec);
        for m in ["resume_from", "wait", "wait_timeout", "increment"] {
            assert!(rec.calls().contains(&m), "missing {m}");
        }
    }

    // Drive the recorded methods `exercise_resumable` uses, on a shared
    // reference, so the log can be inspected afterwards.
    fn exercise_all_on_resumed(rec: &RecordingCounter) {
        assert!(rec.wait(4).is_ok());
        assert!(rec.wait_timeout(5, Duration::from_millis(1)).is_err());
        rec.increment(2);
        assert!(rec.wait(6).is_ok());
    }

    #[test]
    fn exercise_restart_drives_a_full_cycle() {
        exercise_restart::<RecordingCounter>();
        exercise_restart::<Counter>();
    }

    #[test]
    fn tracing_counter_forwards_the_full_surface() {
        // TracingCounter wraps the concrete `Counter` directly, so the
        // recording technique cannot interpose; instead verify behaviorally
        // that the full surface works through it.
        let c = crate::TracingCounter::default();
        exercise_all(&c);
        assert_eq!(c.debug_value(), 6);
    }
}
