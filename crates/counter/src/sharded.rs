//! [`ShardedCounter`]: striped increments for write-heavy contention.
//!
//! Every other packed-word implementation funnels all increments through one
//! CAS word, so under all-writer contention the cache line holding that word
//! ping-pongs between cores and throughput *drops* as threads are added. A
//! `ShardedCounter` splits the increment hot path across per-thread,
//! cache-line-padded cells:
//!
//! ```text
//!   increment(a) ──► cells[thread_slot].fetch_add(a)      (private line)
//!                              │
//!                              ▼   (combiner: eager when waiters exist,
//!                                   lazy at the adaptive flush threshold)
//!   published ◄──── FastWord  (value hint | poison | has-waiters)
//!                              │
//!   check(level) ───► one Acquire load of the published word
//! ```
//!
//! The *published* value lives in the same [`FastWord`] the other
//! implementations use, so the read side is completely unchanged: a satisfied
//! `check` is still a single `Acquire` load, and the suspend/wake slow path is
//! the Section 7 waitlist (one node per distinct level, satisfied nodes swept
//! on publication). Only the write side changes: an increment lands in a
//! striped cell and becomes *visible to checks* when a combiner publishes the
//! accumulated deltas into the word.
//!
//! # Publication rules (the combiner)
//!
//! Increments must not linger in cells while somebody waits — that would turn
//! the paper's "wake exactly when satisfied" semantics into "wake when the
//! flush timer feels like it". Publication is therefore **waiter-aware**:
//!
//! * **Eager** — when the packed word's has-waiters bit is set, every
//!   increment drains all cells and publishes under the lock (exactly the
//!   slow path every other implementation takes when waiters exist), so a
//!   waited-on level is crossed the moment the increment that crosses it
//!   returns.
//! * **Lazy** — with no waiters registered, a cell accumulates until its
//!   pending delta reaches the *adaptive flush threshold*; the flush drains
//!   all cells and publishes with one CAS (lock-free, nobody to wake). The
//!   threshold starts low and doubles on every quiet flush (up to the
//!   builder's `capacity` backlog bound), so sustained write storms publish
//!   rarely, while a counter that just lost its waiters stays fresh.
//!
//! Waits themselves self-serve: a `check` that is not satisfied by the
//! published value first drains and publishes the cells itself (lock-free in
//! the common case) and re-tests before suspending — so a value that has
//! logically been reached never blocks its own observer.
//!
//! # Why the waiter/flush race cannot lose a wakeup
//!
//! The hazard: an incrementer parks a delta in its cell and sees "no
//! waiters", while a checker simultaneously drains the cells, sees "level
//! unreached", and goes to sleep — with the parked delta satisfying its
//! level. The handshake mirrors the [`FastWord`] protocol one level up, with
//! `SeqCst` fences standing in for the single-word RMW trick:
//!
//! * The incrementer performs the cell RMW, then a `SeqCst` fence, then
//!   loads the packed word to test the has-waiters bit.
//! * The checker (holding the slow-path mutex) sets the has-waiters bit with
//!   an RMW, then a `SeqCst` fence, then drains the cells with RMW swaps.
//!
//! If the incrementer misses the bit, its cell RMW is ordered before the
//! checker's drain by the fence pair, so the drain collects the delta and the
//! checker's locked re-test sees the published value. If it sees the bit, it
//! takes the locked publish path, which the mutex serializes after the
//! checker's node is enqueued (the condvar releases the lock only once the
//! node is in the list), and the publish sweep signals the node. Either way
//! the wakeup is delivered.
//!
//! # Exactness
//!
//! The cells-only fast tier is restricted to a regime where overflow is
//! impossible: amounts at most 2^30, per-cell backlogs at most the capacity
//! bound (itself clamped to 2^30), and a published hint below 2^61 (half
//! the [`FastWord`] hint range). Everything outside that regime — huge
//! amounts, values near saturation — funnels through the lock, where
//! [`FastWord::locked_add`] keeps exact `u64` arithmetic and exact overflow
//! errors, pending deltas included (they are drained and published before
//! the fallible add).
//!
//! One racy corner remains: the regime gate is a load, so a delta can park
//! concurrently with an `advance_to`/`raise` that jumps the published value
//! near `u64::MAX`. The incrementer re-checks the gate after parking and
//! flushes through the lock immediately if it lost that race; if the delta
//! is nonetheless flushed against a value it no longer fits above,
//! publication saturates at `u64::MAX` (a valid linearization — the parked
//! increment overlapped the jump and is ordered before it) instead of
//! failing.

use crate::builder::{BuildConfig, Buildable, CounterBuilder, MetricsSink};
use crate::error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
use crate::fastpath::{FastAdvance, FastIncrement, FastWord};
use crate::node::WaitNode;
use crate::stats::{Stats, StatsSnapshot};
use crate::traits::{
    CounterDiagnostics, MonotonicCounter, Resettable, ResumableCounter, WaitingLevel,
};
use crate::Value;
use mc_metrics::{Event, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{
    fence, AtomicU64, AtomicUsize,
    Ordering::{AcqRel, Relaxed, SeqCst},
};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Largest amount the cells-only fast tier accepts; bigger increments take
/// the exact locked path. Keeps any conceivable pending sum far below the
/// regime where `u64` arithmetic could wrap.
const MAX_FAST_AMOUNT: Value = 1 << 30;

/// Published values at or above this route every increment through the lock:
/// pending sums then cannot push the true value anywhere near `u64::MAX`, so
/// overflow checking stays exact without per-increment global arithmetic.
const FAST_REGIME_LIMIT: Value = 1 << 61;

/// Lower bound of the adaptive flush threshold — a fresh counter (or one
/// that recently had waiters) publishes after this many pending units.
const MIN_FLUSH_THRESHOLD: u64 = 8;

/// Default upper bound of the adaptive flush threshold (per cell), i.e. the
/// default of the builder's `capacity` knob for sharded counters.
const DEFAULT_MAX_BACKLOG: u64 = 1024;

/// Hard ceiling on the builder's `capacity` knob. Per-cell backlogs must
/// stay far below the headroom between [`FAST_REGIME_LIMIT`] and
/// `u64::MAX`, or the "pending sums cannot overflow" regime argument the
/// combiner relies on stops holding; an unbounded user value like
/// `usize::MAX` would break it outright.
const MAX_BACKLOG_LIMIT: u64 = 1 << 30;

/// One increment stripe, padded to its own cache line so writers on
/// different shards never invalidate each other.
#[derive(Debug, Default)]
#[repr(align(128))]
struct Cell {
    pending: AtomicU64,
}

type WaitMap = BTreeMap<Value, Arc<WaitNode>>;

/// Combiner observability, attached when the builder carries a
/// [`MetricsSink`]. Records *why* the combiner published (a waiter forced an
/// eager flush vs. a cell crossed the lazy threshold) and how much backlog
/// each threshold flush carried — the two numbers that tell whether the
/// adaptive threshold is actually batching under a given workload.
#[derive(Debug)]
struct CombinerMetrics {
    /// Publications forced by a registered waiter (the eager path).
    eager_publishes: Arc<Event>,
    /// Publications triggered by a cell reaching the flush threshold.
    threshold_publishes: Arc<Event>,
    /// The triggering cell's pending delta at each threshold flush.
    flush_backlog: Arc<Histogram>,
}

impl CombinerMetrics {
    fn attach(sink: &MetricsSink) -> Self {
        CombinerMetrics {
            eager_publishes: sink.event("combiner.eager_publishes"),
            threshold_publishes: sink.event("combiner.threshold_publishes"),
            flush_backlog: sink.histogram("combiner.flush_backlog"),
        }
    }
}

struct Inner {
    /// Exact value once the packed hint saturates; see [`crate::fastpath`].
    wide: Value,
    waiting: WaitMap,
    /// The first poisoning cause, if any. Set at most once.
    poisoned: Option<FailureInfo>,
}

/// A monotonic counter whose increments are striped across cache-line-padded
/// per-thread cells, for write-heavy contention.
///
/// Semantically interchangeable with [`crate::Counter`]: checks and wake-ups
/// observe a single monotonically published value, waiters suspend on the
/// Section 7 waitlist, and poisoning behaves identically. The difference is
/// purely operational: uncontended *and contended* increments are one
/// `fetch_add` on a private cache line, and the running sum is published
/// into the packed fast word by a waiter-aware combiner (see the module
/// docs).
///
/// Construct via [`ShardedCounter::builder`]; the builder's `shards` knob
/// sets the stripe count (rounded up to a power of two, default derived from
/// [`std::thread::available_parallelism`]) and its `capacity` knob bounds
/// the per-cell unpublished backlog.
pub struct ShardedCounter {
    fast: FastWord,
    cells: Box<[Cell]>,
    /// `cells.len() - 1`; cell count is always a power of two.
    mask: usize,
    /// Adaptive lazy-flush threshold, in `[MIN_FLUSH_THRESHOLD,
    /// max_backlog]`. Doubled on quiet flushes, reset when a waiter
    /// registers.
    flush_threshold: AtomicU64,
    /// Upper bound for `flush_threshold` (the builder's `capacity`).
    max_backlog: u64,
    inner: Mutex<Inner>,
    stats: Stats,
    poison_enabled: bool,
    metrics: Option<CombinerMetrics>,
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCounter")
            .field("published", &self.fast.value_hint())
            .field("pending", &self.pending())
            .field("shards", &self.cells.len())
            .finish()
    }
}

/// Round-robin allocator for per-thread stripe slots: the first counter a
/// thread touches assigns it a process-wide slot, reused for every sharded
/// counter (distinct counters have distinct cell arrays, so sharing the slot
/// keeps a thread on one line per counter without per-counter registration).
fn thread_slot() -> usize {
    static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT_SLOT.fetch_add(1, Relaxed);
    }
    SLOT.with(|s| *s)
}

/// Default stripe count: the machine's parallelism rounded up to a power of
/// two, clamped to `[4, 64]` (a floor of 4 keeps striping observable on
/// small hosts; 64 bounds the drain cost and the footprint).
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 64)
}

impl ShardedCounter {
    /// Starts building a sharded counter: set `shards`, `capacity`,
    /// `initial`, then [`build`](CounterBuilder::build).
    pub fn builder() -> CounterBuilder<Self> {
        CounterBuilder::new()
    }

    /// Creates a counter with value zero and the default shard count.
    #[deprecated(note = "use CounterBuilder: `ShardedCounter::builder().build()`")]
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Creates a counter starting at `value` with the default shard count.
    #[deprecated(note = "use CounterBuilder: `ShardedCounter::builder().initial(value).build()`")]
    pub fn with_value(value: Value) -> Self {
        Self::builder().initial(value).build()
    }

    /// The number of increment stripes (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// Sum of the not-yet-published per-cell deltas. Diagnostics only: the
    /// snapshot is not atomic across cells.
    pub fn pending(&self) -> Value {
        self.cells.iter().map(|c| c.pending.load(Relaxed)).sum()
    }

    /// The current adaptive flush threshold (diagnostics/tests).
    pub fn flush_threshold(&self) -> u64 {
        self.flush_threshold.load(Relaxed)
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("counter lock poisoned")
    }

    fn cell(&self) -> &Cell {
        &self.cells[thread_slot() & self.mask]
    }

    /// Drains every cell. The caller must publish the returned sum (the
    /// deltas are no longer anywhere else); every call site publishes before
    /// returning to the user.
    fn drain_cells(&self) -> Value {
        self.cells.iter().map(|c| c.pending.swap(0, AcqRel)).sum()
    }

    /// Publishes `pending` into the fast word under the lock and sweeps the
    /// newly satisfied waiters. Returns the new published value and the
    /// swept nodes (signalled, not yet notified — the caller decides whether
    /// to notify under or after the lock). Infallible: pending sums stay far
    /// below overflow while the published value is in the fast regime, and
    /// the one way out of that regime mid-park (a concurrent jump, below)
    /// saturates instead of failing.
    ///
    /// Deliberately does **not** clear the waiters bit on an emptied map:
    /// `register_and_drain` calls this between setting the bit and the
    /// caller's node insertion, where clearing would let increments go lazy
    /// under a live waiter. Call sites where no registration is in flight
    /// clear the bit themselves.
    fn publish_locked(&self, inner: &mut Inner, pending: Value) -> (Value, Vec<Arc<WaitNode>>) {
        if pending == 0 {
            return (self.fast.locked_value(inner.wide), Vec::new());
        }
        // Deltas are parked only while the published value is inside the
        // fast regime, but the gate load in `try_increment` races concurrent
        // `advance_to`/`raise` jumps that can land the value near
        // `u64::MAX` before the delta is flushed. Such a delta necessarily
        // overlapped the jump (a non-overlapping increment re-reads the word
        // and takes the exact locked path), so linearizing it *before* the
        // jump — where it fits below the jump target and is subsumed by it —
        // is a valid history: saturate at `u64::MAX`, the counter's terminal
        // value, rather than panic in whichever thread flushes next.
        let new_value = match self.fast.locked_add(&mut inner.wide, pending) {
            Ok(value) => value,
            Err(_) => self
                .fast
                .locked_advance(&mut inner.wide, Value::MAX)
                .unwrap_or(Value::MAX),
        };
        let satisfied = Self::remove_satisfied(&mut inner.waiting, new_value);
        for node in &satisfied {
            node.signal();
            self.stats.record_notify();
        }
        (new_value, satisfied)
    }

    /// Drains the cells and publishes, taking the lock only when waiters (or
    /// word saturation) force it. Called from the lazy-flush trigger and from
    /// the self-service tier of `wait`.
    fn combine(&self) {
        let pending = self.drain_cells();
        if pending == 0 {
            return;
        }
        match self.fast.try_increment(pending) {
            FastIncrement::Done => {}
            // Waiters registered or hint saturated: publish under the lock
            // so the sweep runs (`publish_locked` absorbs the saturation
            // corner, so no error can surface here).
            FastIncrement::Contended | FastIncrement::Overflow(_) => {
                let satisfied = {
                    let mut inner = self.lock();
                    self.stats.record_slow_entry();
                    let satisfied = self.publish_locked(&mut inner, pending).1;
                    if inner.waiting.is_empty() {
                        self.fast.clear_waiters();
                    }
                    satisfied
                };
                for node in satisfied {
                    node.cv.notify_all();
                }
            }
        }
    }

    /// The eager publication path: the caller observed the has-waiters bit
    /// (or a published value outside the fast regime) after parking a delta,
    /// so drain and publish under the lock, waking whoever the new value
    /// satisfies.
    fn flush_for_waiters(&self) {
        let satisfied = {
            let mut inner = self.lock();
            self.stats.record_slow_entry();
            let pending = self.drain_cells();
            let satisfied = self.publish_locked(&mut inner, pending).1;
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            satisfied
        };
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    /// Grows the adaptive threshold after a flush no waiter was hurt by.
    fn relax_threshold(&self) {
        let cur = self.flush_threshold.load(Relaxed);
        if cur < self.max_backlog {
            // Racy doubling is fine: the threshold is a heuristic, and every
            // transition keeps it within [MIN_FLUSH_THRESHOLD, max_backlog].
            self.flush_threshold
                .store((cur * 2).min(self.max_backlog), Relaxed);
        }
    }

    /// Snaps the threshold back to eager when a waiter shows up, so the
    /// published value stays fresh while anybody might be watching.
    fn tighten_threshold(&self) {
        self.flush_threshold.store(MIN_FLUSH_THRESHOLD, Relaxed);
    }

    fn remove_satisfied(waiting: &mut WaitMap, value: Value) -> Vec<Arc<WaitNode>> {
        match value.checked_add(1) {
            Some(next) => {
                let rest = waiting.split_off(&next);
                std::mem::replace(waiting, rest).into_values().collect()
            }
            None => std::mem::take(waiting).into_values().collect(),
        }
    }

    /// Slow path of `increment`: drain, publish pending, then apply `amount`
    /// with exact overflow checking, sweeping and waking as one atomic step
    /// under the lock.
    fn raise(&self, amount: Value) -> Result<(), CounterOverflowError> {
        let satisfied = {
            let mut inner = self.lock();
            self.stats.record_slow_entry();
            let pending = self.drain_cells();
            let mut satisfied = self.publish_locked(&mut inner, pending).1;
            // The pending publication may have signalled waiters (already
            // removed from the map), so the overflow arm must still notify
            // them — an early `?` here would strand them in `Condvar::wait`.
            let new_value = match self.fast.locked_add(&mut inner.wide, amount) {
                Ok(value) => value,
                Err(e) => {
                    if inner.waiting.is_empty() {
                        self.fast.clear_waiters();
                    }
                    drop(inner);
                    for node in satisfied {
                        node.cv.notify_all();
                    }
                    return Err(e);
                }
            };
            self.stats.record_increment();
            let mut more = Self::remove_satisfied(&mut inner.waiting, new_value);
            for node in &more {
                node.signal();
                self.stats.record_notify();
            }
            satisfied.append(&mut more);
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            satisfied
        };
        for node in satisfied {
            node.cv.notify_all();
        }
        Ok(())
    }

    /// Registers the waiter bit, drains the cells (the fence pair with the
    /// increment fast path — see the module docs), publishes, and returns
    /// the resulting value. Lock held.
    fn register_and_drain(&self, inner: &mut Inner) -> Value {
        let registered = self.fast.register_waiter(inner.wide);
        fence(SeqCst);
        let pending = self.drain_cells();
        if pending == 0 {
            return registered;
        }
        let (value, satisfied) = self.publish_locked(inner, pending);
        for node in satisfied {
            // Notifying while holding the lock is safe (waiters re-acquire
            // it inside `Condvar::wait` anyway) and keeps this path simple.
            node.cv.notify_all();
        }
        value
    }
}

impl MonotonicCounter for ShardedCounter {
    fn increment(&self, amount: Value) {
        self.try_increment(amount)
            .unwrap_or_else(|e| panic!("monotonic counter overflow: {e}"));
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        // Fast-regime gate: one read-mostly load. Outside it (huge amounts,
        // waiters already known, values near saturation) take the exact
        // locked path directly instead of parking the delta.
        if amount > MAX_FAST_AMOUNT || self.fast.value_hint() >= FAST_REGIME_LIMIT {
            return self.raise(amount);
        }
        let cell = &self.cell().pending;
        let pend = cell.fetch_add(amount, AcqRel) + amount;
        self.stats.record_fast_increment();
        // Dekker handshake with a registering waiter: cell RMW, fence, then
        // the waiters-bit test (the waiter does bit RMW, fence, cell drain).
        fence(SeqCst);
        if self.fast.value_hint() >= FAST_REGIME_LIMIT {
            // A concurrent advance/raise jumped the published value past the
            // regime gate while we parked. Flush through the lock right away
            // so the delta is folded in (or saturated, see `publish_locked`)
            // instead of lingering in a cell outside the bounded regime.
            self.flush_for_waiters();
        } else if self.fast.has_waiters() {
            if let Some(m) = &self.metrics {
                m.eager_publishes.incr();
            }
            self.flush_for_waiters();
        } else if pend >= self.flush_threshold.load(Relaxed) {
            if let Some(m) = &self.metrics {
                m.threshold_publishes.incr();
                m.flush_backlog.record(pend);
            }
            self.combine();
            self.relax_threshold();
        }
        Ok(())
    }

    fn advance_to(&self, target: Value) {
        // Published ≥ target ⇒ the true value is too: nothing to do.
        if self.fast.is_satisfied(target) {
            return;
        }
        // Self-service combine: the logical value may already satisfy the
        // target even though the published word lags.
        self.combine();
        match self.fast.try_advance(target) {
            FastAdvance::Raised => {
                self.stats.record_fast_increment();
                return;
            }
            FastAdvance::NoOp => return,
            FastAdvance::Contended => {}
        }
        let satisfied = {
            let mut inner = self.lock();
            self.stats.record_slow_entry();
            let pending = self.drain_cells();
            let mut satisfied = self.publish_locked(&mut inner, pending).1;
            let Some(new_value) = self.fast.locked_advance(&mut inner.wide, target) else {
                if inner.waiting.is_empty() {
                    self.fast.clear_waiters();
                }
                for node in satisfied {
                    node.cv.notify_all();
                }
                return;
            };
            self.stats.record_increment();
            let mut more = Self::remove_satisfied(&mut inner.waiting, new_value);
            for node in &more {
                node.signal();
                self.stats.record_notify();
            }
            satisfied.append(&mut more);
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            satisfied
        };
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        // Tier 1: one Acquire load of the published word (identical to every
        // other packed-word implementation — sharding does not touch this).
        if self.fast.is_satisfied(level) {
            self.stats.record_fast_check();
            return Ok(());
        }
        // Tier 2: self-service combine — publish the cells and re-test, so a
        // logically reached value never suspends its observer. Lock-free
        // while no waiters are registered.
        self.combine();
        if self.fast.is_satisfied(level) {
            self.stats.record_fast_check();
            return Ok(());
        }
        // Tier 3: the Section 7 waitlist.
        self.tighten_threshold();
        let mut inner = self.lock();
        self.stats.record_slow_entry();
        let value = self.register_and_drain(&mut inner);
        if value >= level {
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            self.stats.record_check_immediate();
            return Ok(());
        }
        if let Some(info) = &inner.poisoned {
            let info = info.clone();
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            return Err(CheckError::Poisoned(info));
        }
        let mut inserted = false;
        let node = Arc::clone(inner.waiting.entry(level).or_insert_with(|| {
            inserted = true;
            Arc::new(WaitNode::new(level))
        }));
        if inserted {
            self.stats.record_node_created();
        }
        node.add_waiter();
        self.stats.record_check_suspended();
        while !node.is_set() && !node.is_poisoned() {
            inner = node
                .cv
                .wait(inner)
                .expect("counter lock poisoned while waiting");
        }
        let poisoned = node.is_poisoned();
        self.stats.record_waiter_resumed();
        if node.remove_waiter() {
            self.stats.record_node_freed();
        }
        if poisoned {
            let info = inner
                .poisoned
                .clone()
                .expect("poisoned wait node without a recorded cause");
            return Err(CheckError::Poisoned(info));
        }
        Ok(())
    }

    fn wait_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckError> {
        if self.fast.is_satisfied(level) {
            self.stats.record_fast_check();
            return Ok(());
        }
        self.combine();
        if self.fast.is_satisfied(level) {
            self.stats.record_fast_check();
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        self.tighten_threshold();
        let mut inner = self.lock();
        self.stats.record_slow_entry();
        let value = self.register_and_drain(&mut inner);
        if value >= level {
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            self.stats.record_check_immediate();
            return Ok(());
        }
        if let Some(info) = &inner.poisoned {
            let info = info.clone();
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            return Err(CheckError::Poisoned(info));
        }
        let mut inserted = false;
        let node = Arc::clone(inner.waiting.entry(level).or_insert_with(|| {
            inserted = true;
            Arc::new(WaitNode::new(level))
        }));
        if inserted {
            self.stats.record_node_created();
        }
        node.add_waiter();
        self.stats.record_check_suspended();
        loop {
            // Satisfied first, then poisoned, then the deadline — the same
            // precedence as every other implementation.
            if node.is_set() {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    self.stats.record_node_freed();
                }
                return Ok(());
            }
            if node.is_poisoned() {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    self.stats.record_node_freed();
                }
                let info = inner
                    .poisoned
                    .clone()
                    .expect("poisoned wait node without a recorded cause");
                return Err(CheckError::Poisoned(info));
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    inner.waiting.remove(&level);
                    self.stats.record_node_freed();
                    if inner.waiting.is_empty() {
                        self.fast.clear_waiters();
                    }
                }
                return Err(CheckError::Timeout(CheckTimeoutError { level }));
            }
            let (guard, _) = node
                .cv
                .wait_timeout(inner, deadline - now)
                .expect("counter lock poisoned while waiting");
            inner = guard;
        }
    }

    fn poison(&self, info: FailureInfo) {
        if !self.poison_enabled {
            return;
        }
        let swept = {
            let mut inner = self.lock();
            if inner.poisoned.is_some() {
                return;
            }
            // Publish pending deltas first: waiters whose levels the true
            // value already satisfies wake successfully (satisfied-first
            // semantics), only genuinely unsatisfiable ones are poisoned.
            let pending = self.drain_cells();
            let mut swept = self.publish_locked(&mut inner, pending).1;
            self.fast.set_poison();
            inner.poisoned = Some(info);
            let rest = Self::remove_satisfied(&mut inner.waiting, Value::MAX);
            for node in &rest {
                node.poison();
                self.stats.record_notify();
            }
            swept.extend(rest);
            self.fast.clear_waiters();
            swept
        };
        for node in swept {
            node.cv.notify_all();
        }
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        if !self.fast.is_poisoned() {
            return None;
        }
        self.lock().poisoned.clone()
    }
}

impl Buildable for ShardedCounter {
    fn from_config(cfg: &BuildConfig) -> Self {
        let shards = cfg
            .shards()
            .unwrap_or_else(default_shards)
            .clamp(1, 1024)
            .next_power_of_two();
        let max_backlog = cfg
            .capacity()
            .map(|c| (c as u64).clamp(MIN_FLUSH_THRESHOLD, MAX_BACKLOG_LIMIT))
            .unwrap_or(DEFAULT_MAX_BACKLOG);
        ShardedCounter {
            fast: FastWord::new(cfg.initial()),
            cells: (0..shards).map(|_| Cell::default()).collect(),
            mask: shards - 1,
            flush_threshold: AtomicU64::new(MIN_FLUSH_THRESHOLD),
            max_backlog,
            inner: Mutex::new(Inner {
                wide: cfg.initial(),
                waiting: BTreeMap::new(),
                poisoned: None,
            }),
            stats: Stats::with_enabled(cfg.stats_enabled()),
            poison_enabled: cfg.poison_propagates(),
            metrics: cfg.metrics().map(CombinerMetrics::attach),
        }
    }
}

impl ResumableCounter for ShardedCounter {
    fn resume_from(value: Value) -> Self {
        Self::builder().initial(value).build()
    }
}

impl Resettable for ShardedCounter {
    fn reset(&mut self) {
        let inner = self.inner.get_mut().expect("counter lock poisoned");
        debug_assert!(inner.waiting.is_empty(), "reset called while threads wait");
        for cell in self.cells.iter_mut() {
            *cell.pending.get_mut() = 0;
        }
        inner.wide = 0;
        inner.poisoned = None;
        self.fast.reset(0);
        *self.flush_threshold.get_mut() = MIN_FLUSH_THRESHOLD;
    }
}

impl CounterDiagnostics for ShardedCounter {
    fn debug_value(&self) -> Value {
        // Published plus unpublished. Racy across cells (diagnostics only),
        // exact whenever the counter is quiescent.
        let hint = self.fast.value_hint();
        let published = if hint < crate::fastpath::FAST_CAP {
            hint
        } else {
            self.lock().wide
        };
        published + self.pending()
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn impl_name(&self) -> &'static str {
        "sharded"
    }

    fn waiters(&self) -> Vec<WaitingLevel> {
        self.lock()
            .waiting
            .values()
            .map(|n| WaitingLevel {
                level: n.level,
                threads: n.waiter_count(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MonotonicCounter;
    use std::thread;

    #[test]
    fn increments_park_in_cells_until_the_threshold() {
        let c = ShardedCounter::builder().build();
        c.increment(1);
        assert_eq!(c.pending(), 1, "small increments stay in the cell");
        assert_eq!(c.debug_value(), 1, "debug_value includes pending");
        // Cross the minimum threshold: everything publishes.
        c.increment(MIN_FLUSH_THRESHOLD);
        assert_eq!(c.pending(), 0, "threshold flush drains the cells");
        assert_eq!(c.debug_value(), MIN_FLUSH_THRESHOLD + 1);
    }

    #[test]
    fn satisfied_check_is_fast_even_with_pending() {
        let c = ShardedCounter::builder().build();
        c.increment(20); // crosses the threshold, publishes
        c.check(20);
        let s = c.stats();
        assert_eq!(s.fast_checks, 1);
        assert_eq!(s.slow_path_entries, 0);
    }

    #[test]
    fn check_self_serves_pending_deltas() {
        let c = ShardedCounter::builder().build();
        c.increment(3); // below threshold: parked
                        // The published word says 0, but the check must not suspend.
        c.check(3);
        assert_eq!(c.pending(), 0, "the check published the cells itself");
        let s = c.stats();
        assert_eq!(s.suspensions, 0);
    }

    #[test]
    fn threshold_adapts_up_and_snaps_back() {
        let c = ShardedCounter::builder().capacity(64).build();
        assert_eq!(c.flush_threshold(), MIN_FLUSH_THRESHOLD);
        for _ in 0..100 {
            c.increment(MIN_FLUSH_THRESHOLD);
        }
        assert!(
            c.flush_threshold() > MIN_FLUSH_THRESHOLD,
            "quiet flushes must relax the threshold"
        );
        assert!(c.flush_threshold() <= 64, "capacity bounds the threshold");
        // An (unsatisfied) wait snaps it back to eager.
        let _ = c.wait_timeout(u64::MAX / 2, Duration::from_millis(1));
        assert_eq!(c.flush_threshold(), MIN_FLUSH_THRESHOLD);
    }

    #[test]
    fn waiter_forces_eager_publication() {
        let c = Arc::new(ShardedCounter::builder().build());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check(3));
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        // Each increment must publish eagerly now: one single-unit increment
        // at a time, far below any threshold.
        c.increment(1);
        c.increment(1);
        c.increment(1);
        h.join().unwrap();
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn no_lost_increments_across_threads() {
        let c = Arc::new(ShardedCounter::builder().shards(8).build());
        let threads = 8;
        let per_thread = 10_000u64;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for _ in 0..per_thread {
                    c.increment(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.debug_value(), threads as u64 * per_thread);
        c.check(threads as u64 * per_thread);
    }

    #[test]
    fn writers_race_waiters_without_losing_wakeups() {
        for _ in 0..20 {
            let c = Arc::new(ShardedCounter::builder().shards(4).build());
            let mut handles = Vec::new();
            for level in 1..=8u64 {
                let c = Arc::clone(&c);
                handles.push(thread::spawn(move || {
                    c.check_timeout(level * 4, Duration::from_secs(10))
                }));
            }
            for _ in 0..8 {
                let c = Arc::clone(&c);
                handles.push(thread::spawn(move || {
                    for _ in 0..4 {
                        c.increment(1);
                    }
                    Ok(())
                }));
            }
            for h in handles {
                assert_eq!(h.join().unwrap(), Ok(()));
            }
            assert_eq!(c.debug_value(), 32);
        }
    }

    #[test]
    fn exact_overflow_errors_with_pending_deltas() {
        let c = ShardedCounter::builder().build();
        c.increment(5); // parked
        c.increment(u64::MAX - 6); // huge: locked path, publishes the 5 first
        assert_eq!(c.debug_value(), u64::MAX - 1);
        let err = c.try_increment(2).unwrap_err();
        assert_eq!(err.value, u64::MAX - 1);
        assert_eq!(err.amount, 2);
        c.increment(1);
        assert_eq!(c.debug_value(), u64::MAX);
        c.check(u64::MAX);
    }

    #[test]
    fn advance_to_respects_pending_deltas() {
        let c = ShardedCounter::builder().build();
        c.increment(5); // parked: published word still 0
        c.advance_to(3); // below the true value: must be a no-op
        assert_eq!(c.debug_value(), 5, "advance below the true value raised it");
        c.advance_to(9);
        assert_eq!(c.debug_value(), 9);
    }

    #[test]
    fn poison_publishes_before_sweeping() {
        let c = Arc::new(ShardedCounter::builder().build());
        let sat = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.wait(2))
        };
        let unsat = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.wait(100))
        };
        while c.stats().live_waiters < 2 {
            thread::yield_now();
        }
        // Parked via the eager path (waiters exist), so both are published;
        // then poison. The level-2 waiter must succeed, the level-100 one
        // must fail.
        c.increment(2);
        c.poison(FailureInfo::new("writer died"));
        assert_eq!(sat.join().unwrap(), Ok(()));
        assert!(matches!(
            unsat.join().unwrap(),
            Err(CheckError::Poisoned(_))
        ));
    }

    /// Regression: an overflowing `raise` used to early-return after the
    /// pending publication had already signalled-and-removed waiters,
    /// skipping their `notify_all` — the waiter below would hang forever.
    #[test]
    fn overflowing_raise_still_wakes_swept_waiters() {
        let c = Arc::new(ShardedCounter::builder().build());
        let waiter = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.wait(1))
        };
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        // Park a delta directly in a cell, bypassing the eager flush — the
        // in-flight window between an increment's fetch_add and its
        // waiters-bit test.
        c.cells[0].pending.fetch_add(1, AcqRel);
        // The huge increment drains and publishes the delta (satisfying the
        // waiter) and then overflows in the same critical section.
        let err = c.try_increment(u64::MAX).unwrap_err();
        assert_eq!(err.value, 1);
        assert_eq!(err.amount, u64::MAX);
        assert_eq!(waiter.join().unwrap(), Ok(()));
    }

    /// Regression: a delta parked behind a stale fast-regime gate used to
    /// panic the next flusher when a concurrent jump pushed the published
    /// value to `u64::MAX`; publication now saturates.
    #[test]
    fn flush_after_value_jump_saturates_instead_of_panicking() {
        let c = ShardedCounter::builder().build();
        c.advance_to(u64::MAX);
        // Simulate the racy incrementer whose gate load predated the jump.
        c.cells[0].pending.fetch_add(5, AcqRel);
        c.combine();
        assert_eq!(c.debug_value(), u64::MAX);
        c.check(u64::MAX);
        // Exact overflow errors continue at the terminal value.
        let err = c.try_increment(1).unwrap_err();
        assert_eq!(err.value, u64::MAX);
        assert_eq!(err.amount, 1);
    }

    #[test]
    fn capacity_is_clamped_to_safe_bounds() {
        let huge = ShardedCounter::builder().capacity(usize::MAX).build();
        assert_eq!(huge.max_backlog, MAX_BACKLOG_LIMIT);
        let tiny = ShardedCounter::builder().capacity(0).build();
        assert_eq!(tiny.max_backlog, MIN_FLUSH_THRESHOLD);
    }

    #[test]
    fn shard_count_is_power_of_two_and_clamped() {
        assert_eq!(ShardedCounter::builder().shards(3).build().shard_count(), 4);
        assert_eq!(ShardedCounter::builder().shards(1).build().shard_count(), 1);
        let d = ShardedCounter::builder().build().shard_count();
        assert!(d.is_power_of_two() && (4..=64).contains(&d));
    }

    #[test]
    fn combiner_metrics_distinguish_eager_from_threshold() {
        let registry = Arc::new(mc_metrics::Registry::new());
        let c = Arc::new(
            ShardedCounter::builder()
                .metrics(&registry, "sc")
                .shards(1)
                .build(),
        );
        // Lazy regime: crossing the threshold publishes and records backlog.
        c.increment(MIN_FLUSH_THRESHOLD);
        assert_eq!(registry.event("sc.combiner.threshold_publishes").get(), 1);
        let backlog = registry.histogram("sc.combiner.flush_backlog").snapshot();
        assert_eq!(backlog.count(), 1);
        assert!(backlog.max >= MIN_FLUSH_THRESHOLD);
        // Eager regime: a registered waiter forces per-increment publication.
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check(MIN_FLUSH_THRESHOLD + 2));
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        c.increment(1);
        c.increment(1);
        h.join().unwrap();
        assert!(registry.event("sc.combiner.eager_publishes").get() >= 1);
    }

    #[test]
    fn reset_clears_cells_and_threshold() {
        let mut c = ShardedCounter::builder().build();
        c.increment(3);
        for _ in 0..50 {
            c.increment(MIN_FLUSH_THRESHOLD);
        }
        c.reset();
        assert_eq!(c.debug_value(), 0);
        assert_eq!(c.pending(), 0);
        assert_eq!(c.flush_threshold(), MIN_FLUSH_THRESHOLD);
        c.increment(1);
        c.check(1);
    }
}
