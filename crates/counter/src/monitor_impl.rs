//! [`MonitorCounter`]: a counter expressed as a predicate monitor.
//!
//! The paper's Section 8 places counters alongside monitors in the design
//! space; this implementation demonstrates the layering directly — a counter
//! *is* expressible as a monitor on its value with the predicate
//! `value >= level`, at the cost of the monitor's single suspension queue:
//! like [`crate::NaiveCounter`], every state change wakes every waiter.
//! Included for the E7 ablation discussion.

use crate::error::{CheckTimeoutError, CounterOverflowError};
use crate::stats::{Stats, StatsSnapshot};
use crate::traits::{CounterDiagnostics, MonotonicCounter, Resettable};
use crate::Value;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A monotonic counter implemented in monitor style: one mutex-guarded value,
/// one condition variable, predicate waits.
pub struct MonitorCounter {
    value: Mutex<Value>,
    cv: Condvar,
    stats: Stats,
}

impl Default for MonitorCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl MonitorCounter {
    /// Creates a counter with value zero.
    pub fn new() -> Self {
        Self::with_value(0)
    }

    /// Creates a counter starting at `value`.
    pub fn with_value(value: Value) -> Self {
        MonitorCounter {
            value: Mutex::new(value),
            cv: Condvar::new(),
            stats: Stats::default(),
        }
    }

    /// Monitor-style update: mutate under the lock, then signal all waiters
    /// so they re-evaluate their predicates.
    fn update(
        &self,
        f: impl FnOnce(&mut Value) -> Result<(), CounterOverflowError>,
    ) -> Result<(), CounterOverflowError> {
        let mut value = self.value.lock().expect("counter lock poisoned");
        self.stats.record_slow_entry();
        f(&mut value)?;
        drop(value);
        self.stats.record_notify();
        self.cv.notify_all();
        Ok(())
    }
}

impl MonotonicCounter for MonitorCounter {
    fn increment(&self, amount: Value) {
        self.try_increment(amount)
            .unwrap_or_else(|e| panic!("monotonic counter overflow: {e}"));
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        let r = self.update(|value| {
            *value = value.checked_add(amount).ok_or(CounterOverflowError {
                value: *value,
                amount,
            })?;
            Ok(())
        });
        if r.is_ok() {
            self.stats.record_increment();
        }
        r
    }

    fn check(&self, level: Value) {
        let mut value = self.value.lock().expect("counter lock poisoned");
        self.stats.record_slow_entry();
        if *value >= level {
            self.stats.record_check_immediate();
            return;
        }
        self.stats.record_check_suspended();
        while *value < level {
            value = self.cv.wait(value).expect("counter lock poisoned");
        }
        self.stats.record_waiter_resumed();
    }

    fn check_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut value = self.value.lock().expect("counter lock poisoned");
        self.stats.record_slow_entry();
        if *value >= level {
            self.stats.record_check_immediate();
            return Ok(());
        }
        self.stats.record_check_suspended();
        while *value < level {
            let now = Instant::now();
            if now >= deadline {
                self.stats.record_waiter_resumed();
                return Err(CheckTimeoutError { level });
            }
            let (guard, _) = self
                .cv
                .wait_timeout(value, deadline - now)
                .expect("counter lock poisoned");
            value = guard;
        }
        self.stats.record_waiter_resumed();
        Ok(())
    }

    fn advance_to(&self, target: Value) {
        let mut value = self.value.lock().expect("counter lock poisoned");
        self.stats.record_slow_entry();
        if target <= *value {
            return;
        }
        *value = target;
        self.stats.record_increment();
        drop(value);
        self.stats.record_notify();
        self.cv.notify_all();
    }
}

impl Resettable for MonitorCounter {
    fn reset(&mut self) {
        *self.value.get_mut().expect("counter lock poisoned") = 0;
    }
}

impl CounterDiagnostics for MonitorCounter {
    fn debug_value(&self) -> Value {
        *self.value.lock().expect("counter lock poisoned")
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn impl_name(&self) -> &'static str {
        "monitor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wait_and_wake() {
        let c = Arc::new(MonitorCounter::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.check(3));
        c.increment(3);
        h.join().unwrap();
    }

    #[test]
    fn every_increment_signals() {
        let c = MonitorCounter::new();
        c.increment(1);
        c.increment(1);
        assert_eq!(c.stats().notifies, 2);
    }

    #[test]
    fn overflow_does_not_signal() {
        let c = MonitorCounter::new();
        c.increment(u64::MAX);
        let before = c.stats().notifies;
        assert!(c.try_increment(1).is_err());
        assert_eq!(c.stats().notifies, before, "failed update must not signal");
    }
}
