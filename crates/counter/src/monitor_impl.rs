//! [`MonitorCounter`]: a counter expressed as a predicate monitor.
//!
//! The paper's Section 8 places counters alongside monitors in the design
//! space; this implementation demonstrates the layering directly — a counter
//! *is* expressible as a monitor on its value with the predicate
//! `value >= level`, at the cost of the monitor's single suspension queue:
//! like [`crate::NaiveCounter`], every state change wakes every waiter.
//! Included for the E7 ablation discussion.

use crate::builder::{BuildConfig, Buildable, CounterBuilder};
use crate::error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
use crate::stats::{Stats, StatsSnapshot};
use crate::traits::{CounterDiagnostics, MonotonicCounter, Resettable, ResumableCounter};
use crate::Value;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

struct State {
    value: Value,
    poisoned: Option<FailureInfo>,
}

/// A monotonic counter implemented in monitor style: one mutex-guarded value,
/// one condition variable, predicate waits.
pub struct MonitorCounter {
    state: Mutex<State>,
    cv: Condvar,
    stats: Stats,
    poison_enabled: bool,
}

impl Default for MonitorCounter {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl Buildable for MonitorCounter {
    fn from_config(cfg: &BuildConfig) -> Self {
        MonitorCounter {
            state: Mutex::new(State {
                value: cfg.initial(),
                poisoned: None,
            }),
            cv: Condvar::new(),
            stats: Stats::with_enabled(cfg.stats_enabled()),
            poison_enabled: cfg.poison_propagates(),
        }
    }
}

impl MonitorCounter {
    /// Starts building a counter; see [`CounterBuilder`].
    pub fn builder() -> CounterBuilder<Self> {
        CounterBuilder::new()
    }

    /// Creates a counter with value zero.
    #[deprecated(note = "use CounterBuilder: `MonitorCounter::builder().build()`")]
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Creates a counter starting at `value`.
    #[deprecated(note = "use CounterBuilder: `MonitorCounter::builder().initial(value).build()`")]
    pub fn with_value(value: Value) -> Self {
        Self::builder().initial(value).build()
    }

    /// Monitor-style update: mutate under the lock, then signal all waiters
    /// so they re-evaluate their predicates.
    fn update(
        &self,
        f: impl FnOnce(&mut Value) -> Result<(), CounterOverflowError>,
    ) -> Result<(), CounterOverflowError> {
        let mut state = self.state.lock().expect("counter lock poisoned");
        self.stats.record_slow_entry();
        f(&mut state.value)?;
        drop(state);
        self.stats.record_notify();
        self.cv.notify_all();
        Ok(())
    }
}

impl MonotonicCounter for MonitorCounter {
    fn increment(&self, amount: Value) {
        self.try_increment(amount)
            .unwrap_or_else(|e| panic!("monotonic counter overflow: {e}"));
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        let r = self.update(|value| {
            *value = value.checked_add(amount).ok_or(CounterOverflowError {
                value: *value,
                amount,
            })?;
            Ok(())
        });
        if r.is_ok() {
            self.stats.record_increment();
        }
        r
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        let mut state = self.state.lock().expect("counter lock poisoned");
        self.stats.record_slow_entry();
        if state.value >= level {
            self.stats.record_check_immediate();
            return Ok(());
        }
        self.stats.record_check_suspended();
        while state.value < level {
            if let Some(info) = &state.poisoned {
                let info = info.clone();
                self.stats.record_waiter_resumed();
                return Err(CheckError::Poisoned(info));
            }
            state = self.cv.wait(state).expect("counter lock poisoned");
        }
        self.stats.record_waiter_resumed();
        Ok(())
    }

    fn wait_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("counter lock poisoned");
        self.stats.record_slow_entry();
        if state.value >= level {
            self.stats.record_check_immediate();
            return Ok(());
        }
        self.stats.record_check_suspended();
        while state.value < level {
            if let Some(info) = &state.poisoned {
                let info = info.clone();
                self.stats.record_waiter_resumed();
                return Err(CheckError::Poisoned(info));
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.record_waiter_resumed();
                return Err(CheckError::Timeout(CheckTimeoutError { level }));
            }
            let (guard, _) = self
                .cv
                .wait_timeout(state, deadline - now)
                .expect("counter lock poisoned");
            state = guard;
        }
        self.stats.record_waiter_resumed();
        Ok(())
    }

    fn poison(&self, info: FailureInfo) {
        if !self.poison_enabled {
            return;
        }
        let mut state = self.state.lock().expect("counter lock poisoned");
        if state.poisoned.is_some() {
            return;
        }
        state.poisoned = Some(info);
        self.stats.record_notify();
        drop(state);
        self.cv.notify_all();
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        self.state
            .lock()
            .expect("counter lock poisoned")
            .poisoned
            .clone()
    }

    fn advance_to(&self, target: Value) {
        let mut state = self.state.lock().expect("counter lock poisoned");
        self.stats.record_slow_entry();
        if target <= state.value {
            return;
        }
        state.value = target;
        self.stats.record_increment();
        drop(state);
        self.stats.record_notify();
        self.cv.notify_all();
    }
}

impl ResumableCounter for MonitorCounter {
    fn resume_from(value: Value) -> Self {
        Self::builder().initial(value).build()
    }
}

impl Resettable for MonitorCounter {
    fn reset(&mut self) {
        let state = self.state.get_mut().expect("counter lock poisoned");
        state.value = 0;
        state.poisoned = None;
    }
}

impl CounterDiagnostics for MonitorCounter {
    fn debug_value(&self) -> Value {
        self.state.lock().expect("counter lock poisoned").value
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn impl_name(&self) -> &'static str {
        "monitor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wait_and_wake() {
        let c = Arc::new(MonitorCounter::default());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.check(3));
        c.increment(3);
        h.join().unwrap();
    }

    #[test]
    fn every_increment_signals() {
        let c = MonitorCounter::default();
        c.increment(1);
        c.increment(1);
        assert_eq!(c.stats().notifies, 2);
    }

    #[test]
    fn poison_fails_the_predicate_wait() {
        let c = Arc::new(MonitorCounter::default());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.wait(5));
        while c.stats().live_waiters == 0 {
            std::thread::yield_now();
        }
        c.poison(FailureInfo::new("monitor failure"));
        assert!(matches!(h.join().unwrap(), Err(CheckError::Poisoned(_))));
        assert_eq!(c.poison_info().unwrap().message(), "monitor failure");
    }

    #[test]
    fn overflow_does_not_signal() {
        let c = MonitorCounter::default();
        c.increment(u64::MAX);
        let before = c.stats().notifies;
        assert!(c.try_increment(1).is_err());
        assert_eq!(c.stats().notifies, before, "failed update must not signal");
    }
}
