//! # Monotonic counters
//!
//! A faithful, production-quality Rust implementation of the synchronization
//! primitive introduced by John Thornley and K. Mani Chandy in *"Monotonic
//! Counters: A New Mechanism for Thread Synchronization"* (IPPS 2000).
//!
//! A monotonic counter is an object with a nonnegative integer value (initially
//! zero) and two operations:
//!
//! * [`increment`](MonotonicCounter::increment)`(amount)` — atomically
//!   increases the value, waking every thread suspended on a level that the
//!   new value satisfies.
//! * [`check`](MonotonicCounter::check)`(level)` — suspends the calling thread
//!   until `value >= level`.
//!
//! There is deliberately **no decrement** and **no non-blocking probe**:
//! because the value only ever grows, a synchronization condition that has
//! become enabled can never become disabled again, so a `check` can never
//! "miss" an `increment` and no decision can be made on a racy instantaneous
//! value. This is what makes counter synchronization *deterministic* (see the
//! paper's Section 6 and the `mc-detcheck` crate).
//!
//! ## Implementations
//!
//! The crate provides several interchangeable implementations of the
//! [`MonotonicCounter`] trait, used by the paper-reproduction benchmarks to
//! ablate the design of Section 7:
//!
//! | Type | Fast path | Wait structure | Corresponds to |
//! |------|-----------|----------------|----------------|
//! | [`Counter`] | packed-word | sorted singly-linked list of condvar nodes | the paper's Section 7 implementation (including Figure 2's draining nodes), with lock-free uncontended paths layered on top |
//! | [`BTreeCounter`] | packed-word | `BTreeMap` of condvar nodes | same algorithm, O(log L) level lookup |
//! | [`NaiveCounter`] | — | one condvar, broadcast on every increment | the strawman the paper improves on: O(threads) wakeups |
//! | [`ParkingCounter`] | packed-word | `BTreeMap` of `parking_lot` condvar nodes | modern userspace-queue substrate |
//! | [`AtomicCounter`] | packed-word | `BTreeMap` slow path | the minimal reference for the shared fast-path protocol |
//! | [`SpinCounter`] | always | none — waiters busy-spin | the no-suspension-queue end of the design space |
//! | [`MonitorCounter`] | — | one predicate monitor | counters expressed via Section 8's monitor comparison |
//! | [`ShardedCounter`] | packed-word + striped cells | sorted list of condvar nodes | high-contention extension: increments land in per-thread cells and a combiner publishes into the packed word |
//!
//! The queue-structured implementations share the key complexity property of
//! Section 7: storage and wakeup work are proportional to the **number of
//! distinct levels being waited on**, not to the number of waiting threads.
//! [`NaiveCounter`] and [`MonitorCounter`] are the single-queue baselines
//! that lack it, and [`SpinCounter`] trades queues for CPU.
//!
//! "Packed-word" implementations share one protocol (the private `fastpath`
//! module): a single `AtomicU64` packs the counter value with a has-waiters
//! bit, so a `check` whose level is already satisfied is one atomic load and
//! an `increment` with no registered waiters is one CAS — the mutex and node
//! structure are touched only when a thread actually suspends or must be
//! woken. [`StatsSnapshot`] exposes per-tier hit counters
//! (`fast_increments`, `fast_checks`, `slow_path_entries`).
//!
//! ## API surface
//!
//! The trait surface is split so the type system enforces the paper's "no
//! probe" rule:
//!
//! * [`MonotonicCounter`] — exactly the synchronization operations
//!   (`increment`, `try_increment`, `check`, `check_timeout`, `advance_to`,
//!   plus the failure-aware `wait`/`wait_timeout`/`poison`);
//! * [`Resettable`] — phase reuse (`reset`), which takes `&mut self` because
//!   it must not race with other operations;
//! * [`CounterDiagnostics`] — observation for tests and benchmarks
//!   (`debug_value`, `stats`, `impl_name`, `waiters`), fenced off so generic
//!   synchronization code cannot branch on the instantaneous value.
//!
//! ## Failure propagation
//!
//! The paper's deadlock-freedom result assumes every thread delivers its
//! increments. When a thread may fail, three layers turn the silent hang
//! into a propagated error:
//!
//! * **Poisoning** — [`MonotonicCounter::poison`] records a [`FailureInfo`]
//!   and wakes every blocked waiter with [`CheckError::Poisoned`]; `check`
//!   re-panics with the original cause. Satisfied levels keep succeeding —
//!   poison only fails waits that would block forever.
//! * **Obligations** — [`Obligation`] RAII guards
//!   ([`CounterExt::obligation`]) deliver their increment on normal drop and
//!   poison the counter when dropped during a panic unwind.
//! * **Supervision** — the [`Supervisor`] registry snapshots registered
//!   counters (value, outstanding obligations, waiting levels), diagnoses
//!   stalls as *stuck* (no obligations can satisfy the waited level) versus
//!   merely *slow*, and can poison provably-stuck counters.
//!
//! ## Construction
//!
//! Every implementation is built through one fluent path, [`CounterBuilder`]
//! (reachable as `Type::builder()`), which exposes the knobs shared across
//! implementations: initial value, shard count, capacity, statistics
//! collection, and [`PoisonPolicy`]. The legacy `new`/`with_value`
//! constructors remain as deprecated shims.
//!
//! ## Quickstart
//!
//! ```
//! use mc_counter::{Counter, MonotonicCounter};
//! use std::sync::Arc;
//!
//! let c = Arc::new(Counter::builder().build());
//! let c2 = Arc::clone(&c);
//! let handle = std::thread::spawn(move || {
//!     c2.check(3); // suspends until the counter reaches 3
//!     "data is ready"
//! });
//! c.increment(1);
//! c.increment(2); // reaches 3: the waiter wakes
//! assert_eq!(handle.join().unwrap(), "data is ready");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod atomic;
mod btree;
mod builder;
mod counter;
mod error;
mod fastpath;
mod list;
mod metered;
mod monitor_impl;
mod multi;
mod naive;
mod node;
mod obligation;
mod parking;
mod sharded;
mod spin;
mod stats;
mod supervisor;
pub mod testkit;
mod trace;
mod traits;

pub use atomic::AtomicCounter;
pub use btree::BTreeCounter;
pub use builder::{BuildConfig, Buildable, CounterBuilder, MetricsSink, PoisonPolicy};
pub use counter::Counter;
pub use error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
pub use metered::{MeteredCounter, SAMPLE_EVERY};
pub use monitor_impl::MonitorCounter;
pub use multi::{check_all, CounterSet};
pub use naive::NaiveCounter;
pub use obligation::Obligation;
pub use parking::ParkingCounter;
pub use sharded::ShardedCounter;
pub use spin::SpinCounter;
pub use stats::StatsSnapshot;
pub use supervisor::{
    CounterRecovery, CounterReport, RecoveredCounter, RecoveryReport, RestartableObligation,
    StallReport, StallVerdict, SupervisedCounter, SupervisedObligation, Supervisor,
    SupervisorConfig,
};
pub use trace::{CounterSnapshot, NodeSnapshot, TracingCounter};
pub use traits::{
    CounterDiagnostics, CounterExt, HealthStatus, MonotonicCounter, Resettable, ResumableCounter,
    WaitingLevel,
};

/// The integer type used for counter values and levels.
///
/// The paper uses `unsigned int`; we use 64 bits so that realistic long-running
/// programs (e.g. a broadcast counter incremented once per item) cannot
/// overflow in practice. Overflow on [`MonotonicCounter::increment`] panics.
pub type Value = u64;

/// A shared, type-erased monotonic counter.
///
/// [`MonotonicCounter`] is object-safe and already requires `Send + Sync`, so
/// any implementation can be handed around as one of these when the concrete
/// type should not leak into signatures (plugin boundaries, heterogeneous
/// collections, config-selected implementations).
pub type DynCounter = std::sync::Arc<dyn MonotonicCounter>;
