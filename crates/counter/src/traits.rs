//! The core counter traits.
//!
//! [`MonotonicCounter`] is exactly the paper's Section 2 programming surface
//! (plus the timeout/advance extensions discussed there): the operations a
//! *program* may use without breaking the determinacy results. Everything
//! that exists for other reasons lives in separate traits:
//!
//! * [`Resettable`] — phase-reuse (`Reset` in the paper's Section 2), which
//!   must not race with other operations and therefore wants `&mut self`;
//! * [`CounterDiagnostics`] — observation hooks for tests and the experiment
//!   harness, deliberately fenced off from the synchronization API so that
//!   code written against `dyn MonotonicCounter` *cannot* branch on the
//!   instantaneous value (the paper's "no probe" rule, now enforced by the
//!   type system rather than by documentation).

use crate::error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
use crate::stats::StatsSnapshot;
use crate::Value;
use std::time::Duration;

/// A monotonic counter: a nonnegative, monotonically increasing value with
/// atomic [`increment`](Self::increment) and suspending
/// [`check`](Self::check) operations.
///
/// The interface intentionally mirrors the paper's Section 2 `Counter` class:
///
/// * the value starts at zero and **only increases** — there is no decrement;
/// * there is **no non-blocking probe**: a thread cannot branch on the
///   instantaneous value, so no decision in a counter-synchronized program can
///   depend on thread timing (this is what enables the determinacy results of
///   Section 6);
/// * `check(level)` returns only when `value >= level`, and because the value
///   is monotonic the condition can never be un-satisfied afterwards.
///
/// Reuse (`reset`) and observation (`debug_value`, `stats`, `impl_name`) are
/// deliberately **not** part of this trait — see [`Resettable`] and
/// [`CounterDiagnostics`].
///
/// The trait is object-safe, so heterogeneous collections of counters
/// (`Box<dyn MonotonicCounter>`) work.
pub trait MonotonicCounter: Send + Sync {
    /// Atomically increases the counter value by `amount`, waking every thread
    /// suspended in a [`check`](Self::check) whose level the new value
    /// satisfies.
    ///
    /// `amount` may be zero, in which case no state changes and no thread is
    /// woken (the paper's semantics: the value "increases by a specified
    /// amount", and zero is a valid amount used by the blocked broadcast
    /// pattern of Section 5.3 for the final partial block).
    ///
    /// # Panics
    ///
    /// Panics if the addition overflows [`Value`]. Use
    /// [`try_increment`](Self::try_increment) for a fallible variant.
    fn increment(&self, amount: Value);

    /// Like [`increment`](Self::increment), but returns an error instead of
    /// panicking when the addition would overflow. On error the counter is
    /// unchanged and no thread is woken.
    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError>;

    /// Suspends the calling thread until the counter value is greater than or
    /// equal to `level`, or until the counter is poisoned.
    ///
    /// This is the fallible core of [`check`](Self::check). Returns `Ok(())`
    /// immediately when the value already satisfies `level` — **even if the
    /// counter has been poisoned**, because satisfied levels owe nothing to
    /// the failed thread (and this keeps the satisfied fast path a single
    /// atomic load). A wait that would block on a poisoned counter instead
    /// returns [`CheckError::Poisoned`] with the captured cause, since the
    /// increments it depends on will never arrive.
    fn wait(&self, level: Value) -> Result<(), CheckError>;

    /// Like [`wait`](Self::wait), but additionally gives up with
    /// [`CheckError::Timeout`] after `timeout`.
    fn wait_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckError>;

    /// Marks the counter as failed, waking **every** currently suspended
    /// waiter with [`CheckError::Poisoned`] and failing every future wait
    /// that would block. The first poisoning wins; later calls are no-ops.
    ///
    /// Poisoning does not change the value, and increments continue to apply
    /// afterwards — a poisoned counter still satisfies levels its value
    /// reaches, it just refuses to *suspend* anyone on promises a dead thread
    /// can no longer keep.
    fn poison(&self, info: FailureInfo);

    /// The cause of the poisoning, if the counter has been poisoned.
    fn poison_info(&self) -> Option<FailureInfo>;

    /// Suspends the calling thread until the counter value is greater than or
    /// equal to `level`.
    ///
    /// Returns immediately when the value already satisfies `level` — in
    /// particular `check(0)` never suspends. Threads waiting on the same level
    /// share one suspension queue; threads waiting on distinct levels occupy
    /// distinct queues (the "dynamically varying number of thread suspension
    /// queues" of the paper's Sections 1 and 7).
    ///
    /// # Panics
    ///
    /// Panics with the propagated [`FailureInfo`] cause if the counter is
    /// poisoned while this level is unsatisfied: the failure of the thread
    /// that owed the increments resurfaces in every thread that depended on
    /// them, instead of a silent hang. Use [`wait`](Self::wait) to handle
    /// poisoning as a value.
    fn check(&self, level: Value) {
        if let Err(CheckError::Poisoned(info)) = self.wait(level) {
            panic!("monotonic counter poisoned: {info}");
        }
    }

    /// Like [`check`](Self::check), but gives up after `timeout`.
    ///
    /// This is an extension for testability (deadlock detection in test
    /// harnesses); the paper's programming model never needs it because
    /// counter programs whose sequential executions terminate cannot deadlock.
    ///
    /// # Panics
    ///
    /// Panics like [`check`](Self::check) when the counter is poisoned.
    fn check_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckTimeoutError> {
        match self.wait_timeout(level, timeout) {
            Ok(()) => Ok(()),
            Err(CheckError::Timeout(e)) => Err(e),
            Err(CheckError::Poisoned(info)) => {
                panic!("monotonic counter poisoned: {info}");
            }
        }
    }

    /// Raises the value to `target` if it is currently lower; no-op
    /// otherwise. Waiters at levels `<= target` wake exactly as for
    /// [`increment`](Self::increment).
    ///
    /// An extension beyond the paper, in the spirit of its single-assignment
    /// lineage (Section 8): `advance_to` keeps the value monotonic — and
    /// therefore keeps every determinacy property — while being idempotent
    /// and commutative, so several threads can publish the same milestone
    /// without coordinating amounts (e.g. "phase 3 reached" from whichever
    /// worker gets there first).
    fn advance_to(&self, target: Value);
}

/// Phase-reuse for counters: reset the value to zero between algorithm
/// phases.
///
/// Per the paper's Section 2, `Reset` exists only "as a means of efficiently
/// reusing counters between different phases of an algorithm" and **must not
/// race with other operations**; taking `&mut self` makes that rule a
/// compile-time guarantee in Rust. Split from [`MonotonicCounter`] so that
/// shared-counter code (which only ever holds `&C` or `Arc<C>`) cannot even
/// name the operation.
pub trait Resettable {
    /// Resets the value to zero.
    fn reset(&mut self);
}

/// Construction from a recovered value: the hook the durability layer
/// (`mc-durable`) uses to rebuild an arbitrary counter implementation from
/// persisted state.
///
/// This is **not** a synchronization operation — it constructs a *new*
/// counter whose value starts at `value`, exactly as if that many increments
/// had already been delivered. Because counters are monotonic, resuming from
/// any durably recorded value is always safe: no waiter decision that was
/// enabled before the crash can become disabled after recovery.
///
/// Every implementation in this crate provides it via its `with_value`
/// constructor.
pub trait ResumableCounter: MonotonicCounter + Sized {
    /// Creates a counter whose value starts at `value`.
    fn resume_from(value: Value) -> Self;
}

/// The availability of a counter's backing resources, as reported by
/// [`CounterDiagnostics::health`].
///
/// Purely in-memory counters are always [`Healthy`](HealthStatus::Healthy).
/// Wrappers backed by fallible external resources (the durability layer's
/// WAL) report [`Degraded`](HealthStatus::Degraded) while serving from
/// memory during a resource outage, and [`Poisoned`](HealthStatus::Poisoned)
/// once the counter has terminally failed. Poisoned always wins over
/// degraded: a poisoned counter's degradation details no longer matter to a
/// supervisor deciding what to do with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Every acknowledged operation is fully backed (for durable counters:
    /// fsync-durable on disk).
    Healthy,
    /// The backing resource is unavailable; operations are served from
    /// memory and queued for replay. Self-healing: the owner is probing the
    /// resource and returns to [`Healthy`](HealthStatus::Healthy) when it
    /// recovers.
    Degraded {
        /// When the counter entered degraded mode.
        since: std::time::Instant,
        /// Unsynced records queued for replay (collapsed: pending monotone
        /// advances count as one record, plus any queued poison events).
        queued: u64,
    },
    /// The counter is poisoned: waits fail with the captured cause.
    Poisoned,
}

impl HealthStatus {
    /// Whether this is [`HealthStatus::Healthy`].
    pub fn is_healthy(&self) -> bool {
        matches!(self, HealthStatus::Healthy)
    }

    /// Whether this is [`HealthStatus::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, HealthStatus::Degraded { .. })
    }

    /// Whether this is [`HealthStatus::Poisoned`].
    pub fn is_poisoned(&self) -> bool {
        matches!(self, HealthStatus::Poisoned)
    }

    /// A stable machine-readable label for this status, independent of the
    /// variant's payload: `"healthy"`, `"degraded"`, or `"poisoned"`. Used as
    /// a metric-name component by the observability layer, so it must never
    /// change shape between releases.
    pub fn as_label(&self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded { .. } => "degraded",
            HealthStatus::Poisoned => "poisoned",
        }
    }
}

impl std::fmt::Display for HealthStatus {
    /// A stable one-line rendering: the [`as_label`](Self::as_label) word,
    /// with degraded carrying `(<elapsed>ms elapsed, <n> queued)`. Consumed
    /// by log scrapers and the metrics exporter — durations are canonical
    /// integer milliseconds, never `Debug` output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthStatus::Healthy => write!(f, "healthy"),
            HealthStatus::Degraded { since, queued } => write!(
                f,
                "degraded ({}ms elapsed, {queued} queued)",
                since.elapsed().as_millis()
            ),
            HealthStatus::Poisoned => write!(f, "poisoned"),
        }
    }
}

/// One occupied suspension queue, as reported by
/// [`CounterDiagnostics::waiters`]: a level and how many threads are
/// suspended waiting for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitingLevel {
    /// The level the threads are waiting for.
    pub level: Value,
    /// How many threads are suspended at this level.
    pub threads: usize,
}

/// Observation hooks for tests, benchmarks, and the experiment harness.
///
/// None of these are synchronization operations — the paper excludes `Probe`
/// so that no program decision can depend on the instantaneous,
/// timing-dependent value. Keeping them in their own trait means a function
/// generic over [`MonotonicCounter`] alone provably cannot break that rule.
pub trait CounterDiagnostics {
    /// Returns the current value, for diagnostics and tests **only**. Do not
    /// branch on this in production code.
    fn debug_value(&self) -> Value;

    /// Returns a snapshot of this counter's internal statistics
    /// (suspension-queue counts, wakeups, fast/slow-path hits, ...), used by
    /// the Section 7 experiments. Implementations with no meaningful queue
    /// structure may return partial data.
    fn stats(&self) -> StatsSnapshot;

    /// A short human-readable name for the implementation, used in benchmark
    /// tables.
    fn impl_name(&self) -> &'static str;

    /// The currently occupied suspension queues, in ascending level order,
    /// for stall diagnostics (the supervisor's wait-graph reports).
    ///
    /// Implementations without introspectable queue structure (spin loops,
    /// plain monitors) return an empty list — the supervisor then reports
    /// value and obligations only.
    fn waiters(&self) -> Vec<WaitingLevel> {
        Vec::new()
    }

    /// The availability of this counter's backing resources. The default —
    /// always [`HealthStatus::Healthy`] — is correct for every in-memory
    /// implementation; wrappers over fallible resources (the durability
    /// layer) override it. Note the poison state is reported separately via
    /// [`MonotonicCounter::poison_info`](crate::MonotonicCounter::poison_info);
    /// the supervisor combines both, with poisoned taking precedence.
    fn health(&self) -> HealthStatus {
        HealthStatus::Healthy
    }

    /// The highest value known to have reached stable storage, for counters
    /// backed by a durable medium (`mc-durable`'s `DurableCounter`). The
    /// default — `None` — is correct for every in-memory implementation.
    /// Supervision trees propagate this into a restarted worker's resume
    /// context, so a replacement can distinguish "applied in memory" from
    /// "acknowledged durable" when deciding where to pick up.
    fn durable_watermark(&self) -> Option<Value> {
        None
    }
}

/// Convenience extensions over any [`MonotonicCounter`].
pub trait CounterExt: MonotonicCounter {
    /// Increment by one: the most common broadcast step
    /// (`kCount.Increment(1)` in the paper's examples).
    fn bump(&self) {
        self.increment(1);
    }

    /// Executes `f` as the `index`-th sequentially ordered critical section
    /// guarded by this counter (the Section 5.2 pattern): waits until the
    /// counter reaches `index`, runs `f`, then increments by one to admit
    /// section `index + 1`.
    fn sequenced<R>(&self, index: Value, f: impl FnOnce() -> R) -> R {
        self.check(index);
        let r = f();
        self.increment(1);
        r
    }

    /// Takes on the obligation to increment this counter by `amount`: returns
    /// an RAII guard that delivers the increment when dropped normally and
    /// **poisons** the counter when dropped during a panic unwind — so a
    /// crashing thread converts the hang it would have caused into a
    /// propagated failure.
    fn obligation(&self, amount: Value) -> crate::Obligation<'_, Self> {
        crate::Obligation::new(self, amount)
    }
}

impl<C: MonotonicCounter + ?Sized> CounterExt for C {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counter;
    use std::sync::Arc;

    #[test]
    fn core_trait_is_object_safe() {
        let c: Box<dyn MonotonicCounter> = Box::new(Counter::default());
        c.increment(2);
        c.check(2);
    }

    #[test]
    fn diagnostics_trait_is_object_safe() {
        let c: Box<dyn CounterDiagnostics> = Box::new(Counter::default());
        assert_eq!(c.debug_value(), 0);
        assert_eq!(c.impl_name(), "waitlist");
    }

    #[test]
    fn both_trait_objects_via_supertrait_free_composition() {
        // A concrete counter serves both surfaces; the split only prevents
        // *generic* synchronization code from reaching the diagnostics.
        let c = Arc::new(Counter::default());
        let sync: Arc<dyn MonotonicCounter> = Arc::clone(&c) as _;
        sync.increment(3);
        let diag: &dyn CounterDiagnostics = &*c;
        assert_eq!(diag.debug_value(), 3);
    }

    #[test]
    fn bump_increments_by_one() {
        let c = Counter::default();
        c.bump();
        c.bump();
        assert_eq!(c.debug_value(), 2);
    }

    #[test]
    fn sequenced_orders_sections() {
        let c = Arc::new(Counter::default());
        let out = Arc::new(std::sync::Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            // Spawn in reverse order to make unordered execution likely
            // without the counter.
            for i in (0..8u64).rev() {
                let c = Arc::clone(&c);
                let out = Arc::clone(&out);
                s.spawn(move || {
                    c.sequenced(i, || out.lock().unwrap().push(i));
                });
            }
        });
        assert_eq!(*out.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sequenced_returns_closure_value() {
        let c = Counter::default();
        let v = c.sequenced(0, || 7 * 6);
        assert_eq!(v, 42);
        assert_eq!(c.debug_value(), 1);
    }
}
