//! The packed-word fast path shared by the lock-based counter
//! implementations.
//!
//! One `AtomicU64` packs the counter state the hot paths need:
//!
//! ```text
//!   bit 63 .. 2                      bit 1       bit 0
//! +-------------------------------+----------+---------------+
//! |  value hint (62 bits)         | poison P | has_waiters W |
//! +-------------------------------+----------+---------------+
//! ```
//!
//! * A `check(level)` that observes `hint >= level` returns after a single
//!   `Acquire` load: monotonicity means a satisfied level can never become
//!   unsatisfied, so no lock and no re-check are needed.
//! * An `increment` that observes `W == 0` (and no overflow hazard) publishes
//!   the new value with one CAS: with no waiters registered there is nobody
//!   to wake, so the Section 7 wait list is never touched.
//! * Everything else — a check that must suspend, an increment while waiters
//!   exist, values beyond the 63-bit hint range — funnels into the existing
//!   mutex-protected wait-list slow path.
//!
//! # Why a wakeup can never be missed
//!
//! The classic hazard is the race between an incrementer deciding "no
//! waiters, skip the lock" and a checker deciding "value too low, go to
//! sleep". Both decisions here are made on the *same* atomic word, with
//! read-modify-write operations, so the hardware's per-word coherence order
//! decides the race — no fence subtleties, no store-buffering reordering
//! (which would need `SeqCst` if value and flag were separate words, as a
//! previous revision of `AtomicCounter` did):
//!
//! * The checker (holding the slow-path mutex) announces itself with
//!   [`FastWord::register_waiter`] — `fetch_or(W)` — and examines the word
//!   that RMW *returned* before deciding to sleep.
//! * The incrementer's CAS either lands **before** that `fetch_or` in the
//!   word's modification order — then the returned word already contains the
//!   new value and the checker returns instead of sleeping — or it lands
//!   **after**, in which case the CAS fails against the `W` bit it now
//!   sees, and the incrementer falls into the slow path, where the mutex
//!   forces it to wait until the checker is enqueued (the condvar releases
//!   the lock only once the node is in the list), and its sweep signals the
//!   node.
//!
//! Either way the wakeup is delivered. `AcqRel`/`Acquire` orderings suffice
//! because every decision reads the result of an RMW on the single word.
//!
//! # The poison bit
//!
//! Bit 1 mirrors the slow path's poisoned state (set under the lock, never
//! cleared except by `reset`). The satisfied-check fast tier deliberately
//! ignores it: a level the hint already satisfies is *genuinely* satisfied —
//! monotonicity holds regardless of poisoning — so `is_satisfied` stays one
//! `Acquire` load with no extra atomics. Only waits that would block consult
//! the poison state, and they are on the slow path anyway. Fast increments
//! also proceed while only `P` is set (there are no waiters to wake; the
//! flag bits are preserved by every CAS), so a poisoned counter keeps exact
//! increment accounting.
//!
//! # The 62-bit hint and `u64::MAX` semantics
//!
//! Packing leaves 62 bits for the value, but the public API promises exact
//! `u64` arithmetic (overflow errors at `u64::MAX`, `check(u64::MAX)`
//! satisfiable). The word therefore stores a **hint**: `min(value,
//! [`FAST_CAP`])`. While the true value is below [`FAST_CAP`] the hint is
//! exact and fast paths are allowed; once an increment would reach
//! [`FAST_CAP`] the transition happens under the lock, the hint sticks at
//! [`FAST_CAP`], and the true value lives in the slow path's `wide` field.
//! The hint is always `<=` the true value, so a fast `check` can only
//! *under*-approximate — it may fall into the slow path needlessly (for
//! astronomically large values), never return early wrongly. Reaching
//! `FAST_CAP = 2^62 - 1` by honest counting is out of reach in practice, so
//! real workloads never leave the fast regime.

use crate::error::CounterOverflowError;
use crate::Value;
use std::sync::atomic::{
    AtomicU64,
    Ordering::{AcqRel, Acquire, Relaxed},
};

/// First value the packed hint cannot represent; the hint saturates here and
/// the true value moves under the slow-path lock.
pub(crate) const FAST_CAP: Value = (1 << 62) - 1;

/// Number of flag bits below the hint.
const SHIFT: u32 = 2;

const WAITERS_BIT: u64 = 0b01;
const POISON_BIT: u64 = 0b10;
const FLAG_MASK: u64 = WAITERS_BIT | POISON_BIT;

/// Outcome of a lock-free increment attempt.
pub(crate) enum FastIncrement {
    /// The increment was applied; no waiters existed, nothing to wake.
    Done,
    /// The addition would overflow [`Value`]; the counter is unchanged. Only
    /// returned while the hint is exact, so the reported value is exact too.
    Overflow(CounterOverflowError),
    /// Waiters are registered, the word is saturated, or the result would
    /// saturate: the caller must take the slow path.
    Contended,
}

/// Outcome of a lock-free `advance_to` attempt.
pub(crate) enum FastAdvance {
    /// The value was raised to the target; no waiters existed.
    Raised,
    /// The target is already satisfied; `advance_to` is a no-op.
    NoOp,
    /// The caller must take the slow path.
    Contended,
}

/// The packed `(value_hint, has_waiters)` word. See the module docs for the
/// protocol.
#[derive(Debug)]
pub(crate) struct FastWord {
    packed: AtomicU64,
}

impl FastWord {
    /// Word for a counter starting at `value` (hint saturates at
    /// [`FAST_CAP`]; the caller keeps the true value in its `wide` field).
    pub(crate) fn new(value: Value) -> Self {
        FastWord {
            packed: AtomicU64::new(value.min(FAST_CAP) << SHIFT),
        }
    }

    fn decode(word: u64, wide: Value) -> Value {
        let hint = word >> SHIFT;
        if hint >= FAST_CAP {
            wide
        } else {
            hint
        }
    }

    /// Current value hint (always `<=` the true value; exact below
    /// [`FAST_CAP`]). `Acquire`: pairs with the `AcqRel` RMWs of increments
    /// so data written before an increment is visible after a satisfied
    /// check.
    pub(crate) fn value_hint(&self) -> Value {
        self.packed.load(Acquire) >> SHIFT
    }

    /// Whether `check(level)` may return immediately without the lock.
    ///
    /// One `Acquire` load; the poison bit is deliberately not consulted —
    /// an already-satisfied level stays satisfied (monotonicity), poisoned
    /// or not, so the satisfied-check hot path costs no extra atomics.
    pub(crate) fn is_satisfied(&self, level: Value) -> bool {
        self.value_hint() >= level
    }

    /// Whether the waiters bit is currently set. One `Acquire` load; the
    /// sharded counter's increment fast path reads it (after a `SeqCst`
    /// fence) to decide between eager and lazy publication.
    pub(crate) fn has_waiters(&self) -> bool {
        self.packed.load(Acquire) & WAITERS_BIT != 0
    }

    /// Whether the poison bit is set. One `Acquire` load; used by
    /// `poison_info` to skip the lock on the overwhelmingly common
    /// not-poisoned case.
    pub(crate) fn is_poisoned(&self) -> bool {
        self.packed.load(Acquire) & POISON_BIT != 0
    }

    /// Sets the poison bit. Must be called with the slow-path lock held,
    /// after storing the `FailureInfo`; the bit is a hint that `poison_info`
    /// may need the lock, never a substitute for the locked state.
    pub(crate) fn set_poison(&self) {
        self.packed.fetch_or(POISON_BIT, AcqRel);
    }

    /// Lock-free increment attempt. Never touches the wait list: succeeds
    /// only while no waiter is registered and the result stays below
    /// [`FAST_CAP`].
    pub(crate) fn try_increment(&self, amount: Value) -> FastIncrement {
        let mut word = self.packed.load(Relaxed);
        loop {
            if word & WAITERS_BIT != 0 {
                return FastIncrement::Contended;
            }
            let value = word >> SHIFT;
            if value >= FAST_CAP {
                return FastIncrement::Contended;
            }
            let new = match value.checked_add(amount) {
                Some(new) => new,
                None => return FastIncrement::Overflow(CounterOverflowError { value, amount }),
            };
            if new >= FAST_CAP {
                // The hint->wide transition must happen under the lock.
                return FastIncrement::Contended;
            }
            match self.packed.compare_exchange_weak(
                word,
                (new << SHIFT) | (word & FLAG_MASK),
                AcqRel,
                Relaxed,
            ) {
                Ok(_) => return FastIncrement::Done,
                Err(current) => word = current,
            }
        }
    }

    /// Lock-free `advance_to` attempt, same preconditions as
    /// [`try_increment`](Self::try_increment).
    pub(crate) fn try_advance(&self, target: Value) -> FastAdvance {
        let mut word = self.packed.load(Relaxed);
        loop {
            if word & WAITERS_BIT != 0 {
                return FastAdvance::Contended;
            }
            let value = word >> SHIFT;
            if value >= FAST_CAP {
                return FastAdvance::Contended;
            }
            if target <= value {
                return FastAdvance::NoOp;
            }
            if target >= FAST_CAP {
                return FastAdvance::Contended;
            }
            match self.packed.compare_exchange_weak(
                word,
                (target << SHIFT) | (word & FLAG_MASK),
                AcqRel,
                Relaxed,
            ) {
                Ok(_) => return FastAdvance::Raised,
                Err(current) => word = current,
            }
        }
    }

    /// Sets the waiters bit and returns the *previous* packed word.
    ///
    /// Must be called with the slow-path lock held, before the caller decides
    /// to suspend. The returned word is the linearization pivot of the
    /// missed-wakeup argument: decode it (against `wide`) and re-test the
    /// level — any fast increment not visible in it is ordered after the
    /// `fetch_or` and therefore guaranteed to observe the waiters bit.
    pub(crate) fn register_waiter(&self, wide: Value) -> Value {
        Self::decode(self.packed.fetch_or(WAITERS_BIT, AcqRel), wide)
    }

    /// Clears the waiters bit. Call with the lock held, only when the
    /// unsatisfied wait list has just become empty (sweep, or the last timed
    /// waiter abandoning); draining nodes never need the bit — their wakeup
    /// is already signalled.
    pub(crate) fn clear_waiters(&self) {
        self.packed.fetch_and(!WAITERS_BIT, AcqRel);
    }

    /// True value while holding the slow-path lock.
    pub(crate) fn locked_value(&self, wide: Value) -> Value {
        Self::decode(self.packed.load(Acquire), wide)
    }

    /// Slow-path add, lock held. Returns the new true value.
    ///
    /// The add is applied with `fetch_update`, **never** a blind store:
    /// while the waiters bit is clear, fast-path CASes may still race this
    /// operation, and a plain store would erase their increments. Saturated
    /// words can't race (fast paths bail out at [`FAST_CAP`]), so reading
    /// `wide` inside the closure is stable under the lock.
    pub(crate) fn locked_add(
        &self,
        wide: &mut Value,
        amount: Value,
    ) -> Result<Value, CounterOverflowError> {
        let result = self.packed.fetch_update(AcqRel, Acquire, |word| {
            let value = Self::decode(word, *wide);
            value
                .checked_add(amount)
                .map(|new| (new.min(FAST_CAP) << SHIFT) | (word & FLAG_MASK))
        });
        match result {
            Ok(prev) => {
                // The closure's successful run checked this very addition.
                let new = Self::decode(prev, *wide) + amount;
                if new >= FAST_CAP {
                    *wide = new;
                }
                Ok(new)
            }
            Err(prev) => Err(CounterOverflowError {
                value: Self::decode(prev, *wide),
                amount,
            }),
        }
    }

    /// Slow-path `advance_to`, lock held. Returns the new value if raised,
    /// `None` when the target was already satisfied.
    pub(crate) fn locked_advance(&self, wide: &mut Value, target: Value) -> Option<Value> {
        let result = self.packed.fetch_update(AcqRel, Acquire, |word| {
            let value = Self::decode(word, *wide);
            (target > value).then(|| (target.min(FAST_CAP) << SHIFT) | (word & FLAG_MASK))
        });
        match result {
            Ok(_) => {
                if target >= FAST_CAP {
                    *wide = target;
                }
                Some(target)
            }
            Err(_) => None,
        }
    }

    /// Resets to `value`, clearing both flag bits (exclusive access; used by
    /// `Resettable`). The caller resets its `wide` field and poisoned state
    /// alongside.
    pub(crate) fn reset(&mut self, value: Value) {
        *self.packed.get_mut() = value.min(FAST_CAP) << SHIFT;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn new_word_decodes_exactly_below_cap() {
        let w = FastWord::new(41);
        assert_eq!(w.value_hint(), 41);
        assert!(w.is_satisfied(41));
        assert!(!w.is_satisfied(42));
        assert!(!w.has_waiters());
    }

    #[test]
    fn new_word_saturates_at_cap() {
        let w = FastWord::new(u64::MAX);
        assert_eq!(w.value_hint(), FAST_CAP);
        // Saturated: exact value must come from the lock-held `wide` copy.
        assert_eq!(w.locked_value(u64::MAX), u64::MAX);
    }

    #[test]
    fn fast_increment_applies_and_accumulates() {
        let w = FastWord::new(0);
        assert!(matches!(w.try_increment(5), FastIncrement::Done));
        assert!(matches!(w.try_increment(0), FastIncrement::Done));
        assert!(matches!(w.try_increment(7), FastIncrement::Done));
        assert_eq!(w.value_hint(), 12);
    }

    #[test]
    fn fast_increment_bails_when_waiters_registered() {
        let w = FastWord::new(3);
        w.register_waiter(0);
        assert!(matches!(w.try_increment(1), FastIncrement::Contended));
        assert_eq!(w.value_hint(), 3, "contended attempt must not mutate");
        w.clear_waiters();
        assert!(matches!(w.try_increment(1), FastIncrement::Done));
    }

    #[test]
    fn fast_increment_bails_near_cap_and_reports_overflow() {
        let w = FastWord::new(10);
        assert!(matches!(
            w.try_increment(FAST_CAP),
            FastIncrement::Contended
        ));
        match w.try_increment(u64::MAX) {
            FastIncrement::Overflow(e) => {
                assert_eq!(e.value, 10);
                assert_eq!(e.amount, u64::MAX);
            }
            _ => panic!("expected overflow"),
        }
    }

    #[test]
    fn register_waiter_returns_pre_rmw_value() {
        let w = FastWord::new(9);
        assert_eq!(w.register_waiter(0), 9);
        assert!(w.has_waiters());
        // Idempotent; still reports the value.
        assert_eq!(w.register_waiter(0), 9);
    }

    #[test]
    fn locked_add_preserves_waiters_bit() {
        let w = FastWord::new(0);
        let mut wide = 0;
        w.register_waiter(wide);
        assert_eq!(w.locked_add(&mut wide, 4), Ok(4));
        assert!(w.has_waiters());
        assert_eq!(w.value_hint(), 4);
    }

    #[test]
    fn locked_add_crosses_into_wide_and_back_out_never() {
        let w = FastWord::new(0);
        let mut wide = 0;
        assert_eq!(w.locked_add(&mut wide, u64::MAX - 1), Ok(u64::MAX - 1));
        assert_eq!(w.value_hint(), FAST_CAP, "hint saturated");
        assert_eq!(wide, u64::MAX - 1);
        assert_eq!(w.locked_value(wide), u64::MAX - 1);
        // Exact arithmetic continues in the wide regime.
        assert_eq!(w.locked_add(&mut wide, 1), Ok(u64::MAX));
        let err = w.locked_add(&mut wide, 1).unwrap_err();
        assert_eq!(err.value, u64::MAX);
        assert_eq!(err.amount, 1);
        assert_eq!(w.locked_value(wide), u64::MAX);
    }

    #[test]
    fn locked_advance_raises_only_forward() {
        let w = FastWord::new(5);
        let mut wide = 0;
        assert_eq!(w.locked_advance(&mut wide, 3), None);
        assert_eq!(w.locked_advance(&mut wide, 8), Some(8));
        assert_eq!(w.value_hint(), 8);
        assert_eq!(w.locked_advance(&mut wide, u64::MAX), Some(u64::MAX));
        assert_eq!(w.locked_value(wide), u64::MAX);
    }

    #[test]
    fn fast_advance_semantics() {
        let w = FastWord::new(5);
        assert!(matches!(w.try_advance(3), FastAdvance::NoOp));
        assert!(matches!(w.try_advance(9), FastAdvance::Raised));
        assert_eq!(w.value_hint(), 9);
        assert!(matches!(w.try_advance(u64::MAX), FastAdvance::Contended));
        w.register_waiter(0);
        assert!(matches!(w.try_advance(100), FastAdvance::Contended));
    }

    #[test]
    fn reset_clears_value_and_flags() {
        let mut w = FastWord::new(0);
        w.try_increment(9);
        w.register_waiter(0);
        w.set_poison();
        w.reset(2);
        assert_eq!(w.value_hint(), 2);
        assert!(!w.has_waiters());
        assert!(!w.is_poisoned());
    }

    #[test]
    fn poison_bit_survives_fast_increments() {
        let w = FastWord::new(3);
        w.set_poison();
        assert!(w.is_poisoned());
        // Fast increments still run (no waiters to wake) and preserve P.
        assert!(matches!(w.try_increment(2), FastIncrement::Done));
        assert_eq!(w.value_hint(), 5);
        assert!(w.is_poisoned());
        assert!(matches!(w.try_advance(8), FastAdvance::Raised));
        assert!(w.is_poisoned());
        assert!(w.is_satisfied(8), "satisfied check ignores the poison bit");
    }

    #[test]
    fn poison_bit_survives_locked_paths() {
        let w = FastWord::new(0);
        let mut wide = 0;
        w.set_poison();
        w.locked_add(&mut wide, 4).unwrap();
        assert!(w.is_poisoned());
        assert_eq!(w.value_hint(), 4);
        w.locked_advance(&mut wide, 9).unwrap();
        assert!(w.is_poisoned());
        // clear_waiters must not clear the poison bit.
        w.register_waiter(wide);
        w.clear_waiters();
        assert!(w.is_poisoned());
    }

    #[test]
    fn waiters_and_poison_bits_are_independent() {
        let w = FastWord::new(1);
        w.register_waiter(0);
        assert!(w.has_waiters());
        assert!(!w.is_poisoned());
        w.set_poison();
        assert!(w.has_waiters());
        assert!(w.is_poisoned());
        // Waiters bit still forces increments into the slow path.
        assert!(matches!(w.try_increment(1), FastIncrement::Contended));
        w.clear_waiters();
        assert!(!w.has_waiters());
        assert!(w.is_poisoned());
        assert_eq!(w.value_hint(), 1, "flag churn must not disturb the hint");
    }

    /// Fast CASes racing a locked `fetch_update` add must never lose an
    /// increment — the reason `locked_add` is an RMW and not a store.
    #[test]
    fn concurrent_fast_and_locked_adds_preserve_sum() {
        let w = Arc::new(FastWord::new(0));
        let fast_threads = 4;
        let per_thread = 10_000u64;
        let mut handles = Vec::new();
        for _ in 0..fast_threads {
            let w = Arc::clone(&w);
            handles.push(thread::spawn(move || {
                for _ in 0..per_thread {
                    assert!(matches!(w.try_increment(1), FastIncrement::Done));
                }
            }));
        }
        // "Slow path" adds interleave; uncontended wide stays at 0.
        let mut wide = 0;
        for _ in 0..per_thread {
            w.locked_add(&mut wide, 1).unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(w.value_hint(), (fast_threads as u64 + 1) * per_thread);
    }
}
