//! Structure tracing for reproducing the paper's **Figure 2**.
//!
//! Figure 2 shows the internal structure of a counter `c` across seven states:
//!
//! | state | action | value | waiting list (level, count, set) |
//! |-------|--------|-------|----------------------------------|
//! | (a) | construction | 0 | — |
//! | (b) | `c.Check(5)` by T1 | 0 | (5, 1, unset) |
//! | (c) | `c.Check(9)` by T2 | 0 | (5, 1, unset) → (9, 1, unset) |
//! | (d) | `c.Check(5)` by T3 | 0 | (5, 2, unset) → (9, 1, unset) |
//! | (e) | `c.Increment(7)` by T0 | 7 | (5, 2, **set**) → (9, 1, unset) |
//! | (f) | first level-5 waiter resumes | 7 | (5, 1, **set**) → (9, 1, unset) |
//! | (g) | second level-5 waiter resumes | 7 | (9, 1, unset) |
//!
//! A [`TracingCounter`] appends a [`CounterSnapshot`] to its log at every
//! structural transition *while holding the counter's lock*, so the exact
//! sequence of states is captured even though thread scheduling is
//! nondeterministic.

use crate::builder::{BuildConfig, Buildable, CounterBuilder};
use crate::counter::{Counter, Inner};
use crate::error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
use crate::stats::StatsSnapshot;
use crate::traits::{
    CounterDiagnostics, MonotonicCounter, Resettable, ResumableCounter, WaitingLevel,
};
use crate::Value;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The state of one wait node, as drawn in Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// The level threads at this node wait for.
    pub level: Value,
    /// Number of threads still registered at the node.
    pub count: usize,
    /// Whether the node's condition has been signalled ("set" in the figure).
    pub set: bool,
}

/// The full structure of a counter at one instant: its value and its wait
/// nodes in ascending level order (unsatisfied nodes and satisfied nodes that
/// are still draining, exactly as Figure 2 draws them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// The counter value.
    pub value: Value,
    /// Wait nodes in ascending level order.
    pub nodes: Vec<NodeSnapshot>,
}

impl CounterSnapshot {
    /// Convenience constructor for writing expected snapshots in tests:
    /// `CounterSnapshot::of(7, &[(5, 2, true), (9, 1, false)])`.
    pub fn of(value: Value, nodes: &[(Value, usize, bool)]) -> Self {
        CounterSnapshot {
            value,
            nodes: nodes
                .iter()
                .map(|&(level, count, set)| NodeSnapshot { level, count, set })
                .collect(),
        }
    }
}

impl fmt::Display for CounterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {}", self.value)?;
        if self.nodes.is_empty() {
            write!(f, " | waiting: (empty)")?;
        } else {
            write!(f, " | waiting:")?;
            for n in &self.nodes {
                write!(
                    f,
                    " -> [level {} | {} | count {}]",
                    n.level,
                    if n.set { "set" } else { "not set" },
                    n.count
                )?;
            }
        }
        Ok(())
    }
}

/// Shared log of snapshots, appended under the counter's lock.
#[derive(Debug, Default)]
pub(crate) struct TraceLog {
    snapshots: Mutex<Vec<CounterSnapshot>>,
}

impl TraceLog {
    pub(crate) fn push(&self, snap: CounterSnapshot) {
        self.snapshots
            .lock()
            .expect("trace log poisoned")
            .push(snap);
    }
}

/// Builds a snapshot from a counter's locked state. The value is passed
/// separately because `Inner` only stores the exact value in the saturated
/// regime; the caller decodes it from the packed word under the lock.
pub(crate) fn snapshot_of(inner: &Inner, value: Value) -> CounterSnapshot {
    let mut nodes: Vec<NodeSnapshot> = inner
        .waiting
        .nodes()
        .iter()
        .chain(inner.draining.iter())
        .map(|n| NodeSnapshot {
            level: n.level,
            count: n.waiter_count(),
            set: n.is_set(),
        })
        .collect();
    nodes.sort_by_key(|n| n.level);
    CounterSnapshot { value, nodes }
}

/// A [`Counter`] that records a [`CounterSnapshot`] at every structural
/// transition: construction, waiter registration, increment, and waiter
/// resumption. Used to reproduce Figure 2 and to debug synchronization
/// structure; not intended for performance-sensitive code.
pub struct TracingCounter {
    counter: Counter,
    log: Arc<TraceLog>,
}

impl Default for TracingCounter {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl Buildable for TracingCounter {
    fn from_config(cfg: &BuildConfig) -> Self {
        let (counter, log) = Counter::new_traced(cfg);
        TracingCounter { counter, log }
    }
}

impl TracingCounter {
    /// Starts building a counter; see [`CounterBuilder`]. The log starts with
    /// the construction state (Figure 2 (a)).
    pub fn builder() -> CounterBuilder<Self> {
        CounterBuilder::new()
    }

    /// Creates a traced counter; the log starts with the construction state
    /// (Figure 2 (a)).
    #[deprecated(note = "use CounterBuilder: `TracingCounter::builder().build()`")]
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Creates a traced counter starting at `value`; the log's construction
    /// state records that value.
    #[deprecated(note = "use CounterBuilder: `TracingCounter::builder().initial(value).build()`")]
    pub fn with_value(value: Value) -> Self {
        Self::builder().initial(value).build()
    }

    /// The sequence of structure snapshots recorded so far, oldest first.
    pub fn log(&self) -> Vec<CounterSnapshot> {
        self.log
            .snapshots
            .lock()
            .expect("trace log poisoned")
            .clone()
    }

    /// The current structure of the counter.
    pub fn snapshot(&self) -> CounterSnapshot {
        self.counter.with_inner(snapshot_of)
    }
}

impl MonotonicCounter for TracingCounter {
    fn increment(&self, amount: Value) {
        self.counter.increment(amount);
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        self.counter.try_increment(amount)
    }

    fn advance_to(&self, target: Value) {
        self.counter.advance_to(target);
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        self.counter.wait(level)
    }

    fn wait_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckError> {
        self.counter.wait_timeout(level, timeout)
    }

    fn poison(&self, info: FailureInfo) {
        self.counter.poison(info);
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        self.counter.poison_info()
    }

    fn check(&self, level: Value) {
        self.counter.check(level);
    }

    fn check_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckTimeoutError> {
        self.counter.check_timeout(level, timeout)
    }
}

impl ResumableCounter for TracingCounter {
    fn resume_from(value: Value) -> Self {
        Self::builder().initial(value).build()
    }
}

impl Resettable for TracingCounter {
    fn reset(&mut self) {
        self.counter.reset();
    }
}

impl CounterDiagnostics for TracingCounter {
    fn debug_value(&self) -> Value {
        self.counter.debug_value()
    }

    fn stats(&self) -> StatsSnapshot {
        self.counter.stats()
    }

    fn impl_name(&self) -> &'static str {
        "waitlist-traced"
    }

    fn waiters(&self) -> Vec<WaitingLevel> {
        self.counter.waiters()
    }

    fn durable_watermark(&self) -> Option<Value> {
        self.counter.durable_watermark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn construction_records_state_a() {
        let c = TracingCounter::default();
        assert_eq!(c.log(), vec![CounterSnapshot::of(0, &[])]);
    }

    #[test]
    fn snapshot_display_matches_figure_vocabulary() {
        let snap = CounterSnapshot::of(7, &[(5, 2, true), (9, 1, false)]);
        let s = snap.to_string();
        assert_eq!(
            s,
            "value 7 | waiting: -> [level 5 | set | count 2] -> [level 9 | not set | count 1]"
        );
    }

    #[test]
    fn empty_snapshot_display() {
        assert_eq!(
            CounterSnapshot::of(0, &[]).to_string(),
            "value 0 | waiting: (empty)"
        );
    }

    /// The full Figure 2 reproduction: states (a) through (g).
    #[test]
    fn figure2_sequence_is_reproduced() {
        let c = Arc::new(TracingCounter::default());

        // (b) T1: Check(5). Wait until the node is registered.
        let t1 = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.check(5))
        };
        while c.snapshot().nodes.first().map(|n| n.count) != Some(1) {
            thread::yield_now();
        }
        assert_eq!(c.snapshot(), CounterSnapshot::of(0, &[(5, 1, false)]));

        // (c) T2: Check(9).
        let t2 = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.check(9))
        };
        while c.snapshot().nodes.len() != 2 {
            thread::yield_now();
        }
        assert_eq!(
            c.snapshot(),
            CounterSnapshot::of(0, &[(5, 1, false), (9, 1, false)])
        );

        // (d) T3: Check(5) — joins T1's node.
        let t3 = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.check(5))
        };
        while c.snapshot().nodes.first().map(|n| n.count) != Some(2) {
            thread::yield_now();
        }
        assert_eq!(
            c.snapshot(),
            CounterSnapshot::of(0, &[(5, 2, false), (9, 1, false)])
        );

        // (e) T0: Increment(7) — level 5 satisfied and set, level 9 not.
        c.increment(7);
        // (f), (g): T1 and T3 resume and drain the level-5 node.
        t1.join().unwrap();
        t3.join().unwrap();
        assert_eq!(c.snapshot(), CounterSnapshot::of(7, &[(9, 1, false)]));

        // The log must contain the exact sequence (a)-(g); states (a)-(d)
        // were asserted live above, so check the transition tail recorded
        // under the lock.
        let log = c.log();
        let expected_tail = [
            CounterSnapshot::of(7, &[(5, 2, true), (9, 1, false)]), // (e)
            CounterSnapshot::of(7, &[(5, 1, true), (9, 1, false)]), // (f)
            CounterSnapshot::of(7, &[(9, 1, false)]),               // (g)
        ];
        assert_eq!(&log[log.len() - 3..], &expected_tail, "full log: {log:#?}");

        // Release T2 so the test ends cleanly.
        c.increment(2);
        t2.join().unwrap();
        assert_eq!(c.snapshot(), CounterSnapshot::of(9, &[]));
    }
}
