//! [`AtomicCounter`]: the minimal reference implementation of the packed-word
//! fast path.
//!
//! This counter is the [`crate::fastpath::FastWord`] protocol with the
//! smallest possible slow path bolted on — no tracing hooks, no ablation
//! switch, just a `BTreeMap` of wait nodes behind one mutex. It exists to
//! validate the shared fast-path module in isolation: any behavioral
//! difference between this and [`crate::Counter`] (which layers tracing and
//! the mutex-only ablation mode on the same protocol) is a bug in the layers,
//! not the protocol.
//!
//! Historically this implementation carried its own two-flag SeqCst
//! store-buffering handshake; the packed single-word protocol subsumed it
//! (same fast-path cost, weaker orderings, and one fewer word to reason
//! about). See the `fastpath` module docs for the missed-wakeup argument.

use crate::builder::{BuildConfig, Buildable, CounterBuilder};
use crate::error::{CheckError, CheckTimeoutError, CounterOverflowError, FailureInfo};
use crate::fastpath::{FastAdvance, FastIncrement, FastWord, FAST_CAP};
use crate::node::WaitNode;
use crate::stats::{Stats, StatsSnapshot};
use crate::traits::{
    CounterDiagnostics, MonotonicCounter, Resettable, ResumableCounter, WaitingLevel,
};
use crate::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

type WaitMap = BTreeMap<Value, Arc<WaitNode>>;

struct Inner {
    /// Exact value once the packed hint saturates; see [`crate::fastpath`].
    wide: Value,
    waiting: WaitMap,
    /// The first poisoning cause, if any. Set at most once.
    poisoned: Option<FailureInfo>,
}

/// A monotonic counter whose uncontended `check` and `increment` are
/// lock-free atomic operations: the pure fast-path reference.
///
/// Semantically interchangeable with [`crate::Counter`].
pub struct AtomicCounter {
    fast: FastWord,
    inner: Mutex<Inner>,
    stats: Stats,
    poison_enabled: bool,
}

impl Default for AtomicCounter {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl Buildable for AtomicCounter {
    fn from_config(cfg: &BuildConfig) -> Self {
        AtomicCounter {
            fast: FastWord::new(cfg.initial()),
            inner: Mutex::new(Inner {
                wide: cfg.initial(),
                waiting: BTreeMap::new(),
                poisoned: None,
            }),
            stats: Stats::with_enabled(cfg.stats_enabled()),
            poison_enabled: cfg.poison_propagates(),
        }
    }
}

impl AtomicCounter {
    /// Starts building a counter; see [`CounterBuilder`].
    pub fn builder() -> CounterBuilder<Self> {
        CounterBuilder::new()
    }

    /// Creates a counter with value zero and no waiting threads.
    #[deprecated(note = "use CounterBuilder: `AtomicCounter::builder().build()`")]
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Creates a counter starting at `value`.
    #[deprecated(note = "use CounterBuilder: `AtomicCounter::builder().initial(value).build()`")]
    pub fn with_value(value: Value) -> Self {
        Self::builder().initial(value).build()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("counter lock poisoned")
    }

    fn remove_satisfied(waiting: &mut WaitMap, value: Value) -> Vec<Arc<WaitNode>> {
        match value.checked_add(1) {
            Some(next) => {
                let rest = waiting.split_off(&next);
                std::mem::replace(waiting, rest).into_values().collect()
            }
            None => std::mem::take(waiting).into_values().collect(),
        }
    }

    /// Slow path of `increment`/`advance_to`: apply the raise under the lock,
    /// sweep satisfied nodes, and notify them.
    fn raise(&self, amount: Value) -> Result<(), CounterOverflowError> {
        let satisfied = {
            let mut inner = self.lock();
            self.stats.record_slow_entry();
            let new_value = self.fast.locked_add(&mut inner.wide, amount)?;
            self.stats.record_increment();
            let satisfied = Self::remove_satisfied(&mut inner.waiting, new_value);
            for node in &satisfied {
                node.signal();
                self.stats.record_notify();
            }
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            satisfied
        };
        for node in satisfied {
            node.cv.notify_all();
        }
        Ok(())
    }
}

impl MonotonicCounter for AtomicCounter {
    fn increment(&self, amount: Value) {
        self.try_increment(amount)
            .unwrap_or_else(|e| panic!("monotonic counter overflow: {e}"));
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        match self.fast.try_increment(amount) {
            FastIncrement::Done => {
                self.stats.record_fast_increment();
                Ok(())
            }
            FastIncrement::Overflow(e) => Err(e),
            FastIncrement::Contended => self.raise(amount),
        }
    }

    fn advance_to(&self, target: Value) {
        match self.fast.try_advance(target) {
            FastAdvance::Raised => {
                self.stats.record_fast_increment();
                return;
            }
            FastAdvance::NoOp => return,
            FastAdvance::Contended => {}
        }
        let satisfied = {
            let mut inner = self.lock();
            self.stats.record_slow_entry();
            let Some(new_value) = self.fast.locked_advance(&mut inner.wide, target) else {
                return;
            };
            self.stats.record_increment();
            let satisfied = Self::remove_satisfied(&mut inner.waiting, new_value);
            for node in &satisfied {
                node.signal();
                self.stats.record_notify();
            }
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            satisfied
        };
        for node in satisfied {
            node.cv.notify_all();
        }
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        // Lock-free fast path: monotonicity makes this sound — a satisfied
        // level can never become unsatisfied (and a satisfied level owes
        // nothing to a failed thread, so the poison bit is not consulted).
        if self.fast.is_satisfied(level) {
            self.stats.record_fast_check();
            return Ok(());
        }
        let mut inner = self.lock();
        self.stats.record_slow_entry();
        // Publish intent to wait, then re-read the value from the returned
        // word: the single-word RMW handshake with fast increments (see the
        // fastpath module docs) guarantees no missed wakeup.
        let value = self.fast.register_waiter(inner.wide);
        if value >= level {
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            self.stats.record_check_immediate();
            return Ok(());
        }
        if let Some(info) = &inner.poisoned {
            let info = info.clone();
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            return Err(CheckError::Poisoned(info));
        }
        let mut inserted = false;
        let node = Arc::clone(inner.waiting.entry(level).or_insert_with(|| {
            inserted = true;
            Arc::new(WaitNode::new(level))
        }));
        if inserted {
            self.stats.record_node_created();
        }
        node.add_waiter();
        self.stats.record_check_suspended();
        while !node.is_set() && !node.is_poisoned() {
            inner = node
                .cv
                .wait(inner)
                .expect("counter lock poisoned while waiting");
        }
        let poisoned = node.is_poisoned();
        self.stats.record_waiter_resumed();
        if node.remove_waiter() {
            self.stats.record_node_freed();
        }
        if poisoned {
            let info = inner
                .poisoned
                .clone()
                .expect("poisoned wait node without a recorded cause");
            return Err(CheckError::Poisoned(info));
        }
        Ok(())
    }

    fn wait_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckError> {
        if self.fast.is_satisfied(level) {
            self.stats.record_fast_check();
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        self.stats.record_slow_entry();
        let value = self.fast.register_waiter(inner.wide);
        if value >= level {
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            self.stats.record_check_immediate();
            return Ok(());
        }
        if let Some(info) = &inner.poisoned {
            let info = info.clone();
            if inner.waiting.is_empty() {
                self.fast.clear_waiters();
            }
            return Err(CheckError::Poisoned(info));
        }
        let mut inserted = false;
        let node = Arc::clone(inner.waiting.entry(level).or_insert_with(|| {
            inserted = true;
            Arc::new(WaitNode::new(level))
        }));
        if inserted {
            self.stats.record_node_created();
        }
        node.add_waiter();
        self.stats.record_check_suspended();
        loop {
            // Satisfied first, then poisoned (the node already left the map
            // at poison time), then the deadline.
            if node.is_set() {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    self.stats.record_node_freed();
                }
                return Ok(());
            }
            if node.is_poisoned() {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    self.stats.record_node_freed();
                }
                let info = inner
                    .poisoned
                    .clone()
                    .expect("poisoned wait node without a recorded cause");
                return Err(CheckError::Poisoned(info));
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    inner.waiting.remove(&level);
                    self.stats.record_node_freed();
                    if inner.waiting.is_empty() {
                        self.fast.clear_waiters();
                    }
                }
                return Err(CheckError::Timeout(CheckTimeoutError { level }));
            }
            let (guard, _) = node
                .cv
                .wait_timeout(inner, deadline - now)
                .expect("counter lock poisoned while waiting");
            inner = guard;
        }
    }

    fn poison(&self, info: FailureInfo) {
        if !self.poison_enabled {
            return;
        }
        let swept = {
            let mut inner = self.lock();
            if inner.poisoned.is_some() {
                return;
            }
            self.fast.set_poison();
            inner.poisoned = Some(info);
            let swept = Self::remove_satisfied(&mut inner.waiting, Value::MAX);
            for node in &swept {
                node.poison();
                self.stats.record_notify();
            }
            self.fast.clear_waiters();
            swept
        };
        for node in swept {
            node.cv.notify_all();
        }
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        if !self.fast.is_poisoned() {
            return None;
        }
        self.lock().poisoned.clone()
    }
}

impl ResumableCounter for AtomicCounter {
    fn resume_from(value: Value) -> Self {
        Self::builder().initial(value).build()
    }
}

impl Resettable for AtomicCounter {
    fn reset(&mut self) {
        let inner = self.inner.get_mut().expect("counter lock poisoned");
        debug_assert!(inner.waiting.is_empty(), "reset called while threads wait");
        inner.wide = 0;
        inner.poisoned = None;
        self.fast.reset(0);
    }
}

impl CounterDiagnostics for AtomicCounter {
    fn debug_value(&self) -> Value {
        let hint = self.fast.value_hint();
        if hint < FAST_CAP {
            hint
        } else {
            self.lock().wide
        }
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn impl_name(&self) -> &'static str {
        "atomic-fastpath"
    }

    fn waiters(&self) -> Vec<WaitingLevel> {
        self.lock()
            .waiting
            .values()
            .map(|n| WaitingLevel {
                level: n.level,
                threads: n.waiter_count(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fast_path_check_takes_no_suspension() {
        let c = AtomicCounter::default();
        c.increment(5);
        c.check(5);
        c.check(0);
        let s = c.stats();
        assert_eq!(s.immediate_checks, 2);
        assert_eq!(s.fast_checks, 2);
        assert_eq!(s.suspensions, 0);
        assert_eq!(s.slow_path_entries, 0);
    }

    #[test]
    fn slow_path_wait_and_wake() {
        let c = Arc::new(AtomicCounter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check(9));
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        c.increment(9);
        h.join().unwrap();
        assert_eq!(c.stats().nodes_freed, 1);
        // After the sweep the waiters bit must be clear again: the next
        // increment goes back to the single-CAS fast path.
        let fast_before = c.stats().fast_increments;
        c.increment(1);
        assert_eq!(c.stats().fast_increments, fast_before + 1);
        assert_eq!(c.debug_value(), 10);
    }

    #[test]
    fn hammer_concurrent_increments_and_checks() {
        // Race increments against checks at all levels; every check must
        // terminate. Run several rounds to exercise the waiters-bit protocol.
        for _ in 0..20 {
            let c = Arc::new(AtomicCounter::default());
            let mut handles = Vec::new();
            for level in 1..=8u64 {
                let c = Arc::clone(&c);
                handles.push(thread::spawn(move || c.check(level * 4)));
            }
            for _ in 0..8 {
                let c = Arc::clone(&c);
                handles.push(thread::spawn(move || {
                    for _ in 0..4 {
                        c.increment(1);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.debug_value(), 32);
        }
    }

    #[test]
    fn overflow_detected_in_cas_loop() {
        let c = AtomicCounter::default();
        c.increment(u64::MAX - 1);
        assert!(c.try_increment(5).is_err());
        c.increment(1);
        assert_eq!(c.debug_value(), u64::MAX);
    }

    #[test]
    fn timeout_clears_flag_when_last_waiter_leaves() {
        let c = AtomicCounter::default();
        assert!(c.check_timeout(3, Duration::from_millis(20)).is_err());
        assert_eq!(c.stats().live_nodes, 0);
        // Counter still fully functional and back on the fast path.
        c.increment(3);
        c.check(3);
        assert_eq!(c.stats().fast_increments, 1);
    }

    #[test]
    fn poison_propagates_through_the_fast_word() {
        let c = Arc::new(AtomicCounter::default());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.wait(6));
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        c.poison(FailureInfo::new("atomic failure"));
        assert!(matches!(h.join().unwrap(), Err(CheckError::Poisoned(_))));
        assert_eq!(c.stats().live_nodes, 0);
        // The fast satisfied-check still works with the poison bit set.
        c.increment(6);
        c.check(6);
        assert!(c.wait(7).is_err());
    }

    #[test]
    fn exact_values_above_the_hint_cap() {
        let c = AtomicCounter::builder().initial(FAST_CAP).build();
        assert_eq!(c.debug_value(), FAST_CAP);
        c.increment(1);
        assert_eq!(c.debug_value(), FAST_CAP + 1);
        c.check(FAST_CAP + 1);
        c.advance_to(u64::MAX);
        assert_eq!(c.debug_value(), u64::MAX);
    }
}
