//! [`AtomicCounter`]: an extension beyond the paper — a monotonic counter
//! with a lock-free fast path for both operations.
//!
//! The monotonicity that the paper exploits for determinacy also enables a
//! cheap implementation trick: once an atomic load of the value satisfies a
//! level, the level is satisfied forever, so a `check` that observes
//! `value >= level` may return without ever taking the lock; likewise an
//! `increment` that observes no waiters never takes the lock. Only the
//! suspension slow path uses the Section 7 node structure.

use crate::error::{CheckTimeoutError, CounterOverflowError};
use crate::node::WaitNode;
use crate::stats::{Stats, StatsSnapshot};
use crate::traits::MonotonicCounter;
use crate::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

type WaitMap = BTreeMap<Value, Arc<WaitNode>>;

/// A monotonic counter whose uncontended `check` and `increment` are
/// lock-free atomic operations.
///
/// Semantically interchangeable with [`crate::Counter`]. The waiter/waker
/// handshake uses the classic store-buffering pattern, so both sides use
/// sequentially consistent atomics:
///
/// * a would-be waiter (under the lock) **stores** the waiter flag and then
///   **loads** the value;
/// * an incrementer **stores** the value (CAS) and then **loads** the flag.
///
/// In the sequentially consistent total order at least one side sees the
/// other: either the waiter observes the new value and never suspends, or the
/// incrementer observes the flag and takes the lock to sweep — where it must
/// wait for the waiter (which holds the lock while registering), so the
/// waiter's node is signalled. A wakeup can therefore never be missed.
pub struct AtomicCounter {
    value: AtomicU64,
    has_waiters: AtomicBool,
    waiting: Mutex<WaitMap>,
    stats: Stats,
}

impl Default for AtomicCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicCounter {
    /// Creates a counter with value zero and no waiting threads.
    pub fn new() -> Self {
        AtomicCounter {
            value: AtomicU64::new(0),
            has_waiters: AtomicBool::new(false),
            waiting: Mutex::new(BTreeMap::new()),
            stats: Stats::default(),
        }
    }

    /// Checked atomic add via CAS loop; returns the new value.
    fn add_value(&self, amount: Value) -> Result<Value, CounterOverflowError> {
        let mut cur = self.value.load(SeqCst);
        loop {
            let new = cur
                .checked_add(amount)
                .ok_or(CounterOverflowError { value: cur, amount })?;
            match self.value.compare_exchange_weak(cur, new, SeqCst, SeqCst) {
                Ok(_) => return Ok(new),
                Err(actual) => cur = actual,
            }
        }
    }

    fn remove_satisfied(waiting: &mut WaitMap, value: Value) -> Vec<Arc<WaitNode>> {
        match value.checked_add(1) {
            Some(next) => {
                let rest = waiting.split_off(&next);
                std::mem::replace(waiting, rest).into_values().collect()
            }
            None => std::mem::take(waiting).into_values().collect(),
        }
    }

    /// Slow path of increment: sweep satisfied nodes and notify them.
    fn sweep(&self) {
        let satisfied = {
            let mut waiting = self.waiting.lock().expect("counter lock poisoned");
            // Re-load under the lock: concurrent increments may have raised
            // the value further; sweeping for the freshest value is both
            // correct (monotonic) and does their work early.
            let value = self.value.load(SeqCst);
            let satisfied = Self::remove_satisfied(&mut waiting, value);
            for node in &satisfied {
                node.signal();
                self.stats.record_notify();
            }
            if waiting.is_empty() {
                self.has_waiters.store(false, SeqCst);
            }
            satisfied
        };
        for node in satisfied {
            node.cv.notify_all();
        }
    }
}

impl MonotonicCounter for AtomicCounter {
    fn increment(&self, amount: Value) {
        self.try_increment(amount)
            .unwrap_or_else(|e| panic!("monotonic counter overflow: {e}"));
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        self.add_value(amount)?;
        self.stats.record_increment();
        if self.has_waiters.load(SeqCst) {
            self.sweep();
        }
        Ok(())
    }

    fn advance_to(&self, target: Value) {
        let prev = self.value.fetch_max(target, SeqCst);
        if prev >= target {
            return;
        }
        self.stats.record_increment();
        if self.has_waiters.load(SeqCst) {
            self.sweep();
        }
    }

    fn check(&self, level: Value) {
        // Lock-free fast path: monotonicity makes this sound — a satisfied
        // level can never become unsatisfied.
        if self.value.load(SeqCst) >= level {
            self.stats.record_check_immediate();
            return;
        }
        let mut waiting = self.waiting.lock().expect("counter lock poisoned");
        self.has_waiters.store(true, SeqCst);
        if self.value.load(SeqCst) >= level {
            if waiting.is_empty() {
                self.has_waiters.store(false, SeqCst);
            }
            self.stats.record_check_immediate();
            return;
        }
        let mut inserted = false;
        let node = Arc::clone(waiting.entry(level).or_insert_with(|| {
            inserted = true;
            Arc::new(WaitNode::new(level))
        }));
        if inserted {
            self.stats.record_node_created();
        }
        node.add_waiter();
        self.stats.record_check_suspended();
        while !node.is_set() {
            waiting = node
                .cv
                .wait(waiting)
                .expect("counter lock poisoned while waiting");
        }
        self.stats.record_waiter_resumed();
        if node.remove_waiter() {
            self.stats.record_node_freed();
        }
    }

    fn check_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckTimeoutError> {
        if self.value.load(SeqCst) >= level {
            self.stats.record_check_immediate();
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut waiting = self.waiting.lock().expect("counter lock poisoned");
        self.has_waiters.store(true, SeqCst);
        if self.value.load(SeqCst) >= level {
            if waiting.is_empty() {
                self.has_waiters.store(false, SeqCst);
            }
            self.stats.record_check_immediate();
            return Ok(());
        }
        let mut inserted = false;
        let node = Arc::clone(waiting.entry(level).or_insert_with(|| {
            inserted = true;
            Arc::new(WaitNode::new(level))
        }));
        if inserted {
            self.stats.record_node_created();
        }
        node.add_waiter();
        self.stats.record_check_suspended();
        loop {
            if node.is_set() {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    self.stats.record_node_freed();
                }
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.record_waiter_resumed();
                if node.remove_waiter() {
                    waiting.remove(&level);
                    self.stats.record_node_freed();
                    if waiting.is_empty() {
                        self.has_waiters.store(false, SeqCst);
                    }
                }
                return Err(CheckTimeoutError { level });
            }
            let (guard, _) = node
                .cv
                .wait_timeout(waiting, deadline - now)
                .expect("counter lock poisoned while waiting");
            waiting = guard;
        }
    }

    fn reset(&mut self) {
        debug_assert!(
            self.waiting
                .get_mut()
                .expect("counter lock poisoned")
                .is_empty(),
            "reset called while threads wait"
        );
        *self.value.get_mut() = 0;
    }

    fn debug_value(&self) -> Value {
        self.value.load(SeqCst)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn impl_name(&self) -> &'static str {
        "atomic-fastpath"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fast_path_check_takes_no_suspension() {
        let c = AtomicCounter::new();
        c.increment(5);
        c.check(5);
        c.check(0);
        let s = c.stats();
        assert_eq!(s.immediate_checks, 2);
        assert_eq!(s.suspensions, 0);
    }

    #[test]
    fn slow_path_wait_and_wake() {
        let c = Arc::new(AtomicCounter::new());
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || c2.check(9));
        while c.stats().live_waiters == 0 {
            thread::yield_now();
        }
        c.increment(9);
        h.join().unwrap();
        assert_eq!(c.stats().nodes_freed, 1);
        // After the sweep the flag must be clear again: the next increment
        // should not need the lock (observable only via correctness here).
        c.increment(1);
        assert_eq!(c.debug_value(), 10);
    }

    #[test]
    fn hammer_concurrent_increments_and_checks() {
        // Race increments against checks at all levels; every check must
        // terminate. Run several rounds to exercise the flag protocol.
        for _ in 0..20 {
            let c = Arc::new(AtomicCounter::new());
            let mut handles = Vec::new();
            for level in 1..=8u64 {
                let c = Arc::clone(&c);
                handles.push(thread::spawn(move || c.check(level * 4)));
            }
            for _ in 0..8 {
                let c = Arc::clone(&c);
                handles.push(thread::spawn(move || {
                    for _ in 0..4 {
                        c.increment(1);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.debug_value(), 32);
        }
    }

    #[test]
    fn overflow_detected_in_cas_loop() {
        let c = AtomicCounter::new();
        c.increment(u64::MAX - 1);
        assert!(c.try_increment(5).is_err());
        c.increment(1);
        assert_eq!(c.debug_value(), u64::MAX);
    }

    #[test]
    fn timeout_clears_flag_when_last_waiter_leaves() {
        let c = AtomicCounter::new();
        assert!(c.check_timeout(3, Duration::from_millis(20)).is_err());
        assert_eq!(c.stats().live_nodes, 0);
        // Counter still fully functional.
        c.increment(3);
        c.check(3);
    }
}
