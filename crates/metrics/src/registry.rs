//! The global-free metric [`Registry`] and its exporters.

use crate::{Event, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// One registered metric: either an [`Event`] counter or a [`Histogram`].
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotone event counter.
    Event(Arc<Event>),
    /// A log-bucketed histogram.
    Histogram(Arc<Histogram>),
}

/// A name→metric map with **no global instance**: create as many as the
/// process needs and pass them explicitly. The mutex guards only
/// registration and snapshotting; instruments hold `Arc`s obtained at attach
/// time, so the record path never takes it.
///
/// Names are dot-separated lowercase paths (`durable.fsync_ns`); the
/// Prometheus exporter maps them to `snake_case` identifiers.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        // A panicking registrant leaves the map structurally valid.
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The event counter registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a histogram.
    pub fn event(&self, name: &str) -> Arc<Event> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Event(Arc::new(Event::new())))
        {
            Metric::Event(e) => Arc::clone(e),
            Metric::Histogram(_) => panic!("metric '{name}' is registered as a histogram"),
        }
    }

    /// The histogram registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as an event counter.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            Metric::Event(_) => panic!("metric '{name}' is registered as an event counter"),
        }
    }

    /// The registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.lock();
        RegistrySnapshot {
            metrics: map
                .iter()
                .map(|(name, m)| {
                    let snap = match m {
                        Metric::Event(e) => MetricSnapshot::Event(e.get()),
                        Metric::Histogram(h) => MetricSnapshot::Histogram(Box::new(h.snapshot())),
                    };
                    (name.clone(), snap)
                })
                .collect(),
        }
    }

    /// Renders every metric in the Prometheus text exposition format:
    /// events as `counter` samples, histograms as `summary` quantiles plus
    /// `_sum`/`_count`/`_max`.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Renders every metric as one JSON object:
    /// `{"events": {...}, "histograms": {...}}`.
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

/// A point-in-time copy of a whole [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Name → metric snapshot, sorted by name.
    pub metrics: BTreeMap<String, MetricSnapshot>,
}

/// The snapshot of one metric.
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// An event counter's total.
    Event(u64),
    /// A histogram's buckets and derived statistics (boxed: a snapshot
    /// carries all 65 buckets and would otherwise dominate the enum).
    Histogram(Box<HistogramSnapshot>),
}

/// Maps a dotted metric name to a Prometheus identifier: `mc_` prefix,
/// non-alphanumerics to `_`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("mc_");
    for ch in name.chars() {
        out.push(if ch.is_ascii_alphanumeric() { ch } else { '_' });
    }
    out
}

impl RegistrySnapshot {
    /// See [`Registry::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, m) in &self.metrics {
            let id = prometheus_name(name);
            match m {
                MetricSnapshot::Event(total) => {
                    out.push_str(&format!("# TYPE {id} counter\n{id} {total}\n"));
                }
                MetricSnapshot::Histogram(h) => {
                    out.push_str(&format!("# TYPE {id} summary\n"));
                    for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
                        out.push_str(&format!("{id}{{quantile=\"{q}\"}} {v}\n"));
                    }
                    out.push_str(&format!("{id}_sum {}\n", h.sum));
                    out.push_str(&format!("{id}_count {}\n", h.count()));
                    out.push_str(&format!("{id}_max {}\n", h.max));
                }
            }
        }
        out
    }

    /// See [`Registry::render_json`].
    pub fn render_json(&self) -> String {
        fn quote(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        let mut events = Vec::new();
        let mut hists = Vec::new();
        for (name, m) in &self.metrics {
            match m {
                MetricSnapshot::Event(total) => {
                    events.push(format!("    {}: {total}", quote(name)));
                }
                MetricSnapshot::Histogram(h) => {
                    hists.push(format!(
                        "    {}: {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \
                         \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                        quote(name),
                        h.count(),
                        h.sum,
                        h.mean(),
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.max
                    ));
                }
            }
        }
        format!(
            "{{\n  \"events\": {{\n{}\n  }},\n  \"histograms\": {{\n{}\n  }}\n}}",
            events.join(",\n"),
            hists.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_get_or_create() {
        let r = Registry::new();
        let a = r.event("x.hits");
        let b = r.event("x.hits");
        a.incr();
        assert_eq!(b.get(), 1);
        assert_eq!(r.names(), vec!["x.hits".to_string()]);
    }

    #[test]
    fn histogram_is_get_or_create() {
        let r = Registry::new();
        r.histogram("x.ns").record(5);
        assert_eq!(r.histogram("x.ns").snapshot().count(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as a histogram")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.histogram("x");
        r.event("x");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.event("durable.fsyncs").add(3);
        r.histogram("durable.fsync_ns").record(1000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE mc_durable_fsyncs counter"));
        assert!(text.contains("mc_durable_fsyncs 3"));
        assert!(text.contains("# TYPE mc_durable_fsync_ns summary"));
        assert!(text.contains("mc_durable_fsync_ns{quantile=\"0.5\"}"));
        assert!(text.contains("mc_durable_fsync_ns_count 1"));
    }

    #[test]
    fn json_rendering_shape() {
        let r = Registry::new();
        r.event("a.hits").incr();
        r.histogram("a.ns").record(7);
        let json = r.render_json();
        assert!(json.contains("\"a.hits\": 1"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"max\": 7"));
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let r = Registry::new();
        let e = r.event("n");
        e.incr();
        let snap = r.snapshot();
        e.incr();
        match snap.metrics.get("n") {
            Some(MetricSnapshot::Event(1)) => {}
            other => panic!("unexpected snapshot: {other:?}"),
        }
    }
}
