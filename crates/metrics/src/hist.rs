//! Log-bucketed latency histograms.
//!
//! A [`Histogram`] has one bucket per power of two of nanoseconds: value `v`
//! lands in bucket `bit_width(v)` (bucket 0 holds exactly zero, bucket `i`
//! holds `[2^(i-1), 2^i)`). Sixty-five buckets therefore cover the full
//! `u64` range — from sub-nanosecond to centuries — with a worst-case
//! quantile error of 2x, which is exactly the resolution the experiment
//! tables argue in ("one CAS vs three orders of magnitude", not "17ns vs
//! 19ns").
//!
//! Recording touches three `Relaxed` atomics (bucket, sum, max) and never
//! blocks; snapshots read without stopping writers; two histograms (or
//! snapshots) merge by bucket-wise addition, losing nothing.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Number of buckets: one for zero plus one per possible bit width of a
/// `u64` nanosecond value.
pub const BUCKETS: usize = 65;

/// The bucket a value lands in: its bit width (0 for 0).
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i` (its largest representable
/// member), used as the quantile estimate for values inside it.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free, mergeable, log-bucketed histogram of `u64` samples
/// (conventionally nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Saturating sum of all recorded samples.
    sum: AtomicU64,
    /// Largest recorded sample.
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        // Saturating: a histogram that has absorbed ~584 years of latency
        // pins its sum at the ceiling instead of wrapping into nonsense.
        let mut cur = self.sum.load(Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self.sum.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.max.fetch_max(v, Relaxed);
    }

    /// Records a [`Duration`] in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds every sample of `other` into `self` (bucket-wise addition; the
    /// merge loses no counts). `other` keeps its contents.
    pub fn merge_from(&self, other: &Histogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Folds a [`HistogramSnapshot`] into `self`.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        for (b, &n) in self.buckets.iter().zip(snap.buckets.iter()) {
            if n > 0 {
                b.fetch_add(n, Relaxed);
            }
        }
        let mut cur = self.sum.load(Relaxed);
        loop {
            let next = cur.saturating_add(snap.sum);
            match self.sum.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.max.fetch_max(snap.max, Relaxed);
    }

    /// A point-in-time copy of the bucket counts. Writers are never stopped,
    /// so a snapshot taken under contention may split a concurrent `record`
    /// between `count` and `sum` — each field is individually exact for some
    /// prefix of the record stream, and never panics or loses completed
    /// records.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; BUCKETS] = std::array::from_fn(|i| self.buckets[i].load(Relaxed));
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// An owned, immutable copy of a [`Histogram`]'s state, with quantile
/// estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` holds `[2^(i-1), 2^i)`).
    pub buckets: [u64; BUCKETS],
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the `ceil(q * count)`-th sample, capped at the
    /// exact observed max. Returns 0 for an empty histogram. Estimates from
    /// one snapshot are monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, &n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_of_is_bit_width() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn bucket_upper_bounds_nest() {
        for i in 1..BUCKETS {
            assert!(bucket_upper(i) > bucket_upper(i - 1));
        }
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_bracket_a_known_distribution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket [64, 128)
        }
        for _ in 0..10 {
            h.record(10_000); // bucket [8192, 16384)
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.max, 10_000);
        // p50 and p90 land in the 100ns bucket: upper bound 127.
        assert_eq!(s.p50(), 127);
        assert_eq!(s.p90(), 127);
        // p99 lands in the tail bucket, capped at the exact max.
        assert_eq!(s.p99(), 10_000);
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99() && s.p99() <= s.max);
    }

    #[test]
    fn merge_is_lossless() {
        let a = Histogram::new();
        let b = Histogram::new();
        for i in 0..100u64 {
            a.record(i);
            b.record(i * 1000);
        }
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count(), 200);
        assert_eq!(s.max, 99_000);
    }

    #[test]
    fn record_duration_uses_nanos() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(2));
        assert_eq!(h.snapshot().sum, 2_000);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.snapshot().sum, u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 7 + i % 13);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
