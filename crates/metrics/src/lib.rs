//! # mc-metrics — the observability core
//!
//! The paper's Sections 7 and 8 argue *quantitatively*: counters win because
//! the hot paths are cheap. This crate makes those claims continuously
//! measurable from inside the running system, without compromising the hot
//! paths it observes:
//!
//! * [`Event`] — a cache-line-padded atomic event counter. Recording is one
//!   `Relaxed` `fetch_add` on a line nothing else writes.
//! * [`Histogram`] — a fixed-size log-bucketed latency histogram (one bucket
//!   per power of two of nanoseconds). Recording is three `Relaxed` atomic
//!   RMWs; snapshots derive p50/p90/p99/max without stopping writers, and
//!   histograms merge losslessly across threads or processes.
//! * [`Registry`] — a **global-free** name→metric map. There is no process
//!   singleton: components receive an `Arc<Registry>` explicitly (or none at
//!   all, in which case they record nothing), so tests and benchmarks can run
//!   any number of isolated metric domains in one process. The registry
//!   renders [Prometheus text](Registry::render_prometheus) and
//!   [JSON](Registry::render_json).
//!
//! Everything is lock-free on the record path: the registry's mutex guards
//! only name lookup at attach time — instruments hold `Arc`s to their metrics
//! and never touch the map again.
//!
//! ```
//! use mc_metrics::Registry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let flushes = registry.event("durable.fsyncs");
//! let latency = registry.histogram("durable.fsync_ns");
//!
//! flushes.incr();
//! latency.record(1_500);
//!
//! let snap = latency.snapshot();
//! assert_eq!(snap.count(), 1);
//! assert!(registry.render_prometheus().contains("durable_fsyncs"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod hist;
mod registry;

pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Metric, MetricSnapshot, Registry, RegistrySnapshot};

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A monotonically increasing event counter, padded to its own cache line so
/// concurrent recorders on different metrics never share a line with each
/// other (or with the data structure being observed).
///
/// Recording is a single `Relaxed` `fetch_add`; reads are `Relaxed` loads.
/// The counter is monotone, so torn cross-metric snapshots are still each
/// individually exact — the same reasoning the monotonic counter primitive
/// itself rests on.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct Event {
    hits: AtomicU64,
}

impl Event {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Event::default()
    }

    /// Records one occurrence.
    #[inline]
    pub fn incr(&self) {
        self.hits.fetch_add(1, Relaxed);
    }

    /// Records `n` occurrences at once.
    #[inline]
    pub fn add(&self, n: u64) {
        self.hits.fetch_add(n, Relaxed);
    }

    /// The total recorded so far.
    #[inline]
    pub fn get(&self) -> u64 {
        self.hits.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn event_counts_exactly() {
        let e = Event::new();
        e.incr();
        e.add(41);
        assert_eq!(e.get(), 42);
    }

    #[test]
    fn event_is_exact_under_contention() {
        let e = Arc::new(Event::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let e = Arc::clone(&e);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        e.incr();
                    }
                });
            }
        });
        assert_eq!(e.get(), 40_000);
    }

    #[test]
    fn event_is_padded() {
        assert!(std::mem::align_of::<Event>() >= 128);
    }
}
