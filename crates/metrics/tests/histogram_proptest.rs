//! Property battery for the lock-free histogram: concurrent recording and
//! merging never lose counts, quantile estimates are monotone and bounded,
//! and snapshots taken under full write contention never panic.

use mc_metrics::{Histogram, BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every recorded sample lands in exactly one bucket: the snapshot's
    /// total count equals the number of records, its sum their saturating
    /// sum, its max their max.
    fn counts_are_exact(samples in vec(0u64..1 << 40, 0..200)) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        let expected_sum = samples
            .iter()
            .fold(0u64, |acc, &s| acc.saturating_add(s));
        prop_assert_eq!(snap.sum, expected_sum);
        prop_assert_eq!(snap.max, samples.iter().copied().max().unwrap_or(0));
    }

    /// Recording the same samples from four threads concurrently loses
    /// nothing relative to recording them sequentially.
    fn concurrent_record_never_loses_counts(samples in vec(0u64..1 << 32, 1..100)) {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                let samples = samples.clone();
                scope.spawn(move || {
                    for s in samples {
                        h.record(s);
                    }
                });
            }
        });
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), 4 * samples.len() as u64);
        prop_assert_eq!(snap.max, samples.iter().copied().max().unwrap_or(0));
    }

    /// Merging two histograms is lossless: the merged bucket vector is the
    /// element-wise sum, so no cross-thread aggregation can drop samples.
    fn merge_never_loses_counts(
        left in vec(0u64..1 << 48, 0..150),
        right in vec(0u64..1 << 48, 0..150),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        for &s in &left {
            a.record(s);
        }
        for &s in &right {
            b.record(s);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        a.merge_from(&b);
        let merged = a.snapshot();
        prop_assert_eq!(merged.count(), (left.len() + right.len()) as u64);
        for i in 0..BUCKETS {
            prop_assert_eq!(merged.buckets[i], sa.buckets[i] + sb.buckets[i]);
        }
        prop_assert_eq!(merged.max, sa.max.max(sb.max));
    }

    /// Quantile estimates are monotone in q, bracket the true order
    /// statistic to within the 2x bucket resolution, and never exceed the
    /// exact observed max.
    fn quantiles_monotone_and_bounded(samples in vec(0u64..1 << 40, 1..200)) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut prev = 0;
        for &q in &qs {
            let v = snap.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prop_assert!(v <= snap.max);
            prev = v;
        }
        // The 1.0-quantile estimate is within the containing bucket of the
        // true max (capped at it exactly).
        prop_assert_eq!(snap.quantile(1.0), snap.max);
    }

    /// Snapshots taken while four writers hammer the histogram never panic
    /// and never report more samples than have been started.
    fn snapshot_under_contention_never_panics(seed in 0u64..1000) {
        let h = Arc::new(Histogram::new());
        let per_thread = 2_000u64;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record((seed + t * 31 + i) % 10_000);
                    }
                });
            }
            for _ in 0..50 {
                let snap = h.snapshot();
                prop_assert!(snap.count() <= 4 * per_thread);
                let _ = (snap.p50(), snap.p90(), snap.p99(), snap.mean());
            }
        });
        let done = h.snapshot();
        prop_assert_eq!(done.count(), 4 * per_thread);
    }
}
