//! The Section 6 determinacy claims, tested across perturbed schedules.

use mc_chaos::{explore, Chaos, ChaosCounter};
use mc_counter::{Counter, CounterExt, MonotonicCounter, ShardedCounter};
use std::sync::{Arc, Mutex};

/// The Section 5.2 ordered accumulation, run under a chaos-wrapped counter:
/// one distinct outcome across every perturbed schedule.
#[test]
fn ordered_accumulation_deterministic_across_seeds() {
    let outcomes = explore(0..40, |seed| {
        let chaos = Arc::new(Chaos::new(seed));
        let counter = Arc::new(ChaosCounter::new(Counter::default(), chaos));
        let log = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for i in (0..12u64).rev() {
                let (counter, log) = (Arc::clone(&counter), Arc::clone(&log));
                s.spawn(move || {
                    counter.sequenced(i, || log.lock().unwrap().push(i));
                });
            }
        });
        Arc::try_unwrap(log).unwrap().into_inner().unwrap()
    });
    assert!(outcomes.is_deterministic(), "{outcomes}");
    assert_eq!(outcomes.unique(), Some(&(0..12u64).collect::<Vec<_>>()));
}

/// The Section 6 two-thread example under perturbation: always (3+1)*2.
#[test]
fn section6_example_deterministic_across_seeds() {
    let outcomes = explore(0..60, |seed| {
        let chaos = Arc::new(Chaos::new(seed));
        let c = Arc::new(ChaosCounter::new(Counter::default(), chaos));
        let x = Arc::new(Mutex::new(3i64));
        std::thread::scope(|s| {
            let (c1, x1) = (Arc::clone(&c), Arc::clone(&x));
            s.spawn(move || {
                c1.check(0);
                *x1.lock().unwrap() += 1;
                c1.increment(1);
            });
            let (c2, x2) = (Arc::clone(&c), Arc::clone(&x));
            s.spawn(move || {
                c2.check(1);
                *x2.lock().unwrap() *= 2;
                c2.increment(1);
            });
        });
        let result = *x.lock().unwrap();
        result
    });
    assert!(outcomes.is_deterministic(), "{outcomes}");
    assert_eq!(outcomes.unique(), Some(&8));
}

/// Contrast: the same program with the counter chain removed (both threads
/// check 0) is schedule-sensitive — perturbation exposes both interleavings
/// within a modest seed budget.
#[test]
fn unchained_variant_shows_both_interleavings() {
    let outcomes = explore(0..200, |seed| {
        let chaos = Arc::new(Chaos::new(seed));
        let c = Arc::new(ChaosCounter::new(Counter::default(), Arc::clone(&chaos)));
        let x = Arc::new(Mutex::new(3i64));
        std::thread::scope(|s| {
            let (c1, x1, ch1) = (Arc::clone(&c), Arc::clone(&x), Arc::clone(&chaos));
            s.spawn(move || {
                c1.check(0);
                ch1.point();
                *x1.lock().unwrap() += 1;
                c1.increment(1);
            });
            let (c2, x2, ch2) = (Arc::clone(&c), Arc::clone(&x), Arc::clone(&chaos));
            s.spawn(move || {
                c2.check(0); // no ordering against the other thread
                ch2.point();
                *x2.lock().unwrap() *= 2;
                c2.increment(1);
            });
        });
        let result = *x.lock().unwrap();
        result
    });
    // (3+1)*2 = 8 and 3*2+1 = 7 are the two legal interleavings.
    for (outcome, _, _) in outcomes.iter() {
        assert!(
            *outcome == 7 || *outcome == 8,
            "impossible result {outcome}"
        );
    }
    assert_eq!(
        outcomes.distinct(),
        2,
        "perturbation should expose both interleavings: {outcomes}"
    );
}

/// The broadcast pattern under chaos: every reader sees the exact sequence
/// regardless of perturbation (uses the chaos points manually around a
/// plain Broadcast, since Broadcast owns its internal counter).
#[test]
fn broadcast_delivery_deterministic_across_seeds() {
    use mc_patterns::Broadcast;
    let outcomes = explore(0..20, |seed| {
        let chaos = Arc::new(Chaos::new(seed));
        let b = Arc::new(Broadcast::new(100));
        let sums = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            let (bw, ch) = (Arc::clone(&b), Arc::clone(&chaos));
            s.spawn(move || {
                let mut w = bw.writer_with_block(8);
                for i in 0..100u64 {
                    ch.point();
                    w.push(i * 3);
                }
            });
            for _ in 0..3 {
                let (br, ch, sums) = (Arc::clone(&b), Arc::clone(&chaos), Arc::clone(&sums));
                s.spawn(move || {
                    let mut sum = 0u64;
                    for &item in br.reader() {
                        ch.point();
                        sum += item;
                    }
                    sums.lock().unwrap().push(sum);
                });
            }
        });
        let mut sums = Arc::try_unwrap(sums).unwrap().into_inner().unwrap();
        sums.sort_unstable();
        sums
    });
    assert!(outcomes.is_deterministic(), "{outcomes}");
    let expected: u64 = (0..100u64).map(|i| i * 3).sum();
    assert_eq!(outcomes.unique(), Some(&vec![expected; 3]));
}

/// Floyd-Warshall with chaos-wrapped counters: identical matrices across
/// seeds.
#[test]
fn floyd_warshall_like_chain_deterministic() {
    // A reduced row-publication chain (the FW sync skeleton) under chaos:
    // each "iteration" publishes the next row value.
    let outcomes = explore(0..25, |seed| {
        let chaos = Arc::new(Chaos::new(seed));
        let c = Arc::new(ChaosCounter::new(Counter::default(), chaos));
        let rows = Arc::new(Mutex::new(vec![0u64; 9]));
        std::thread::scope(|s| {
            for t in 0..3 {
                let (c, rows) = (Arc::clone(&c), Arc::clone(&rows));
                s.spawn(move || {
                    for k in 0..8u64 {
                        c.check(k);
                        let prev = rows.lock().unwrap()[k as usize];
                        // Owner of "row k+1" publishes it.
                        if k % 3 == t {
                            rows.lock().unwrap()[k as usize + 1] = prev * 2 + k;
                            c.increment(1);
                        }
                    }
                });
            }
        });
        Arc::try_unwrap(rows).unwrap().into_inner().unwrap()
    });
    assert!(outcomes.is_deterministic(), "{outcomes}");
}

/// The sharded counter's combiner racing its waiters under perturbed
/// schedules: the ordered accumulation stays deterministic even though
/// increments park in striped cells before publication, and a waiter-free
/// burst between rounds forces the lazy-combine path into the mix.
#[test]
fn sharded_combiner_vs_waiters_deterministic_across_seeds() {
    let outcomes = explore(0..40, |seed| {
        let chaos = Arc::new(Chaos::new(seed));
        let sharded = ShardedCounter::builder().shards(4).build();
        let counter = Arc::new(ChaosCounter::new(sharded, chaos));
        let log = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            // A lazy burst first: deltas sit in cells until the combiner (or
            // a later waiter registration) publishes them.
            {
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..100 {
                        counter.increment(1);
                    }
                });
            }
            for i in (0..12u64).rev() {
                let (counter, log) = (Arc::clone(&counter), Arc::clone(&log));
                s.spawn(move || {
                    // Sequence above the burst so every waiter must observe
                    // published-burst state plus the chain.
                    counter.check(100 + i);
                    log.lock().unwrap().push(i);
                    counter.increment(1);
                });
            }
        });
        Arc::try_unwrap(log).unwrap().into_inner().unwrap()
    });
    assert!(outcomes.is_deterministic(), "{outcomes}");
    assert_eq!(outcomes.unique(), Some(&(0..12u64).collect::<Vec<_>>()));
}
