//! Bounded dynamic exploration of synchronization skeletons.
//!
//! The static verifier (`mc-verify`) proves properties over **all**
//! interleavings; this module samples interleavings of the same
//! [`Skeleton`] IR with a seeded random scheduler, and can replay an
//! explicit schedule — including the witness schedules the static analyses
//! emit — so static counterexamples are confirmed dynamically.
//!
//! An interleaving's observable *outcome* is its dataflow: which write each
//! read observed, each variable's final writer, and whether every thread
//! completed. A skeleton is dynamically deterministic over a seed set when
//! all sampled schedules produce the same outcome.

use std::fmt;

use mc_verify::{greedy_cut_limited, Op, OpRef, Skeleton};

/// The schedule-observable result of one interleaving.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SkeletonOutcome {
    /// True if every thread ran to completion.
    pub completed: bool,
    /// For each executed read (in position order): the write it observed,
    /// if any.
    pub reads: Vec<(OpRef, Option<OpRef>)>,
    /// Final writer of each variable, by variable index.
    pub final_writes: Vec<Option<OpRef>>,
    /// Where each thread stopped (its length if it completed).
    pub stopped_at: Vec<usize>,
}

impl fmt::Display for SkeletonOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "completed={}, {} reads, final writers {:?}",
            self.completed,
            self.reads.len(),
            self.final_writes
        )
    }
}

/// Interpreter state while executing a skeleton one operation at a time.
struct Interp<'a> {
    sk: &'a Skeleton,
    positions: Vec<usize>,
    values: Vec<u64>,
    last_write: Vec<Option<OpRef>>,
    reads: Vec<(OpRef, Option<OpRef>)>,
}

impl<'a> Interp<'a> {
    fn new(sk: &'a Skeleton) -> Self {
        Interp {
            sk,
            positions: vec![0; sk.num_threads()],
            values: vec![0; sk.num_counters()],
            last_write: vec![None; sk.num_vars()],
            reads: Vec::new(),
        }
    }

    /// Threads whose next operation is executable right now.
    fn enabled(&self) -> Vec<usize> {
        (0..self.sk.num_threads())
            .filter(|&t| {
                let i = self.positions[t];
                if i >= self.sk.ops(t).len() {
                    return false;
                }
                match self.sk.ops(t)[i] {
                    Op::Check { counter, level } => self.values[counter.0] >= level,
                    _ => true,
                }
            })
            .collect()
    }

    /// Execute thread `t`'s next operation. Panics if not enabled.
    fn step(&mut self, t: usize) -> OpRef {
        let i = self.positions[t];
        let r = OpRef {
            thread: t,
            index: i,
        };
        match self.sk.op(r) {
            Op::Inc { counter, amount } => {
                self.values[counter.0] = self.values[counter.0]
                    .checked_add(amount)
                    .expect("counter overflow in skeleton interpreter");
            }
            Op::Check { counter, level } => {
                assert!(
                    self.values[counter.0] >= level,
                    "stepped a disabled check: {}",
                    self.sk.describe(r)
                );
            }
            Op::Read { var } => self.reads.push((r, self.last_write[var.0])),
            Op::Write { var } => self.last_write[var.0] = Some(r),
        }
        self.positions[t] = i + 1;
        r
    }

    fn outcome(self) -> SkeletonOutcome {
        let completed = self
            .positions
            .iter()
            .enumerate()
            .all(|(t, &p)| p >= self.sk.ops(t).len());
        // Reads are pushed in interleaving order; normalize to position
        // order so outcomes compare by dataflow, not by schedule.
        let mut reads = self.reads;
        reads.sort_unstable_by_key(|(r, _)| *r);
        SkeletonOutcome {
            completed,
            reads,
            final_writes: self.last_write,
            stopped_at: self.positions,
        }
    }
}

/// SplitMix64 step (same generator as [`crate::Chaos`]).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Execute one maximal interleaving chosen by a seeded uniform scheduler:
/// at each step, a uniformly random enabled thread executes its next
/// operation, until no thread is enabled.
pub fn run_random(sk: &Skeleton, seed: u64) -> SkeletonOutcome {
    let mut state = seed;
    let mut interp = Interp::new(sk);
    loop {
        let enabled = interp.enabled();
        if enabled.is_empty() {
            return interp.outcome();
        }
        let pick = (splitmix(&mut state) % enabled.len() as u64) as usize;
        interp.step(enabled[pick]);
    }
}

/// Sample one outcome per seed and collect the distinct ones, with a
/// witness seed for each.
pub fn explore_skeleton(
    sk: &Skeleton,
    seeds: impl IntoIterator<Item = u64>,
) -> crate::Outcomes<SkeletonOutcome> {
    crate::explore(seeds, |seed| run_random(sk, seed))
}

/// An error replaying an explicit schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The schedule asks a thread to execute an operation out of program
    /// order.
    OutOfOrder {
        /// The offending schedule entry.
        at: OpRef,
        /// The position the thread was actually at.
        expected_index: usize,
    },
    /// The schedule executes a check whose level is not yet satisfied.
    CheckNotSatisfied {
        /// The offending schedule entry.
        at: OpRef,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::OutOfOrder { at, expected_index } => write!(
                f,
                "schedule entry {at} is out of program order (thread is at index {expected_index})"
            ),
            ReplayError::CheckNotSatisfied { at } => {
                write!(f, "schedule executes unsatisfied check at {at}")
            }
        }
    }
}

/// Execute an explicit schedule (e.g. a witness emitted by `mc-verify`),
/// validating that every step is executable, then let every thread run to
/// quiescence greedily. Returns the outcome of the completed run.
pub fn replay_schedule(sk: &Skeleton, schedule: &[OpRef]) -> Result<SkeletonOutcome, ReplayError> {
    let mut interp = Interp::new(sk);
    for &r in schedule {
        if interp.positions[r.thread] != r.index {
            return Err(ReplayError::OutOfOrder {
                at: r,
                expected_index: interp.positions[r.thread],
            });
        }
        if let Op::Check { counter, level } = sk.op(r) {
            if interp.values[counter.0] < level {
                return Err(ReplayError::CheckNotSatisfied { at: r });
            }
        }
        interp.step(r.thread);
    }
    // Drain: run the remainder greedily so the outcome covers a maximal
    // execution extending the prescribed prefix.
    loop {
        let enabled = interp.enabled();
        if enabled.is_empty() {
            return Ok(interp.outcome());
        }
        interp.step(enabled[0]);
    }
}

/// Why a static finding could not be reproduced dynamically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfirmError {
    /// A witness schedule did not replay.
    Replay {
        /// Which finding's witness failed.
        finding: String,
        /// The replay failure.
        error: ReplayError,
    },
    /// The witness replayed but the execution did not exhibit the reported
    /// violation.
    Mismatch {
        /// Which finding failed to reproduce.
        finding: String,
        /// What differed.
        detail: String,
    },
}

impl fmt::Display for ConfirmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfirmError::Replay { finding, error } => {
                write!(f, "{finding}: witness does not replay: {error}")
            }
            ConfirmError::Mismatch { finding, detail } => {
                write!(f, "{finding}: witness replayed but {detail}")
            }
        }
    }
}

/// What [`confirm_rejection`] reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfirmedRejection {
    /// The deadlock witness replayed and left the reported threads stuck.
    pub deadlock: bool,
    /// Number of race witnesses that replayed with the reversed pair.
    pub races: usize,
    /// The sequential schedule failed at exactly the reported check.
    pub seq_eq: bool,
}

impl ConfirmedRejection {
    /// Total findings reproduced.
    pub fn total(&self) -> usize {
        self.deadlock as usize + self.races + self.seq_eq as usize
    }
}

/// Dynamically reproduce every finding of a static [`Rejection`] on its
/// skeleton:
///
/// * each **race** witness must replay, executing the textually-later
///   access (`first`) before ending with the textually-earlier one
///   (`second`) — demonstrating the pair really is unordered in this
///   executable interleaving;
/// * the **deadlock** witness must replay to a state where no operation is
///   enabled, with every reported thread stuck exactly where the analysis
///   said;
/// * the **sequential-equivalence** violation must make the declared-order
///   sequential schedule fail at exactly the reported check.
///
/// Returns what was reproduced, or the first finding that would not
/// reproduce — which would mean the static analyses emitted a bogus
/// counterexample.
pub fn confirm_rejection(
    sk: &Skeleton,
    rej: &mc_verify::Rejection,
) -> Result<ConfirmedRejection, ConfirmError> {
    let mut confirmed = ConfirmedRejection::default();

    if let Some(dl) = &rej.deadlock {
        let finding = || "deadlock".to_string();
        let outcome = replay_schedule(sk, &dl.witness).map_err(|error| ConfirmError::Replay {
            finding: finding(),
            error,
        })?;
        if outcome.completed {
            return Err(ConfirmError::Mismatch {
                finding: finding(),
                detail: "every thread ran to completion".into(),
            });
        }
        for b in &dl.blocked {
            if outcome.stopped_at[b.at.thread] != b.at.index {
                return Err(ConfirmError::Mismatch {
                    finding: finding(),
                    detail: format!(
                        "thread {} stopped at index {}, analysis reported {}",
                        b.at.thread, outcome.stopped_at[b.at.thread], b.at.index
                    ),
                });
            }
        }
        confirmed.deadlock = true;
    }

    for (i, race) in rej.races.iter().enumerate() {
        let finding = || format!("race #{i} on {}", sk.var_name(race.var));
        let reversed = race.witness.last() == Some(&race.second.0)
            && race.witness[..race.witness.len().saturating_sub(1)].contains(&race.first.0);
        if !reversed {
            return Err(ConfirmError::Mismatch {
                finding: finding(),
                detail: "witness does not execute the pair in reversed order".into(),
            });
        }
        replay_schedule(sk, &race.witness).map_err(|error| ConfirmError::Replay {
            finding: finding(),
            error,
        })?;
        confirmed.races += 1;
    }

    if let Some(v) = &rej.seq_eq {
        let finding = || "sequential-equivalence violation".to_string();
        // The declared-order sequential schedule, up to and including the
        // reported check.
        let mut schedule = Vec::new();
        for t in 0..v.at.thread {
            for i in 0..sk.ops(t).len() {
                schedule.push(OpRef {
                    thread: t,
                    index: i,
                });
            }
        }
        for i in 0..=v.at.index {
            schedule.push(OpRef {
                thread: v.at.thread,
                index: i,
            });
        }
        match replay_schedule(sk, &schedule) {
            Err(ReplayError::CheckNotSatisfied { at }) if at == v.at => {
                confirmed.seq_eq = true;
            }
            Err(error) => {
                return Err(ConfirmError::Replay {
                    finding: finding(),
                    error,
                })
            }
            Ok(_) => {
                return Err(ConfirmError::Mismatch {
                    finding: finding(),
                    detail: "the sequential schedule satisfied the reported check".into(),
                })
            }
        }
    }

    Ok(confirmed)
}

/// [`confirm_rejection`] for a parameterized witness: replay the rejection
/// of the smallest failing instantiation through the skeleton interpreter.
pub fn confirm_param_witness(
    w: &mc_verify::ParamWitness,
) -> Result<ConfirmedRejection, ConfirmError> {
    confirm_rejection(&w.instance.skeleton, &w.rejection)
}

/// Convenience: does the maximal greedy execution complete? (Mirrors the
/// static fixpoint; exposed for tests that want the dynamic view only.)
pub fn completes(sk: &Skeleton) -> bool {
    let limits: Vec<usize> = (0..sk.num_threads()).map(|t| sk.ops(t).len()).collect();
    let cut = greedy_cut_limited(sk, &limits);
    cut.positions.iter().zip(&limits).all(|(p, l)| p >= l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_verify::SkeletonBuilder;

    fn guarded() -> Skeleton {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        let x = b.var("x");
        b.thread("w").write(x).inc(c, 1);
        b.thread("r").check(c, 1).read(x);
        b.build()
    }

    fn unguarded() -> Skeleton {
        let mut b = SkeletonBuilder::new();
        let x = b.var("x");
        b.thread("w").write(x);
        b.thread("r").read(x);
        b.build()
    }

    #[test]
    fn guarded_skeleton_is_deterministic_over_seeds() {
        let sk = guarded();
        let outcomes = explore_skeleton(&sk, 0..64);
        assert!(outcomes.is_deterministic(), "{outcomes}");
        let o = outcomes.unique().expect("deterministic");
        assert!(o.completed);
        assert_eq!(
            o.reads,
            vec![(
                OpRef {
                    thread: 1,
                    index: 1
                },
                Some(OpRef {
                    thread: 0,
                    index: 0
                })
            )]
        );
    }

    #[test]
    fn unguarded_skeleton_shows_nondeterminism() {
        let sk = unguarded();
        let outcomes = explore_skeleton(&sk, 0..64);
        assert!(
            !outcomes.is_deterministic(),
            "64 seeds should hit both orders of a 2-op race"
        );
    }

    #[test]
    fn replay_validates_program_order() {
        let sk = guarded();
        let bad = [OpRef {
            thread: 0,
            index: 1,
        }];
        assert!(matches!(
            replay_schedule(&sk, &bad),
            Err(ReplayError::OutOfOrder { .. })
        ));
    }

    #[test]
    fn replay_validates_check_levels() {
        let sk = guarded();
        let bad = [OpRef {
            thread: 1,
            index: 0,
        }];
        assert_eq!(
            replay_schedule(&sk, &bad),
            Err(ReplayError::CheckNotSatisfied {
                at: OpRef {
                    thread: 1,
                    index: 0
                }
            })
        );
    }

    #[test]
    fn confirm_reproduces_all_three_finding_kinds() {
        use mc_verify::{verify, Verdict};

        // Unguarded read races; consumer checks a level the producer never
        // reaches (deadlock); and the declared order runs the consumer's
        // check before the producer increments (seq-eq violation).
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        let x = b.var("x");
        b.thread("consumer").read(x).check(c, 2);
        b.thread("producer").write(x).inc(c, 1);
        let sk = b.build();
        let Verdict::Rejected(rej) = verify(&sk) else {
            panic!("skeleton should be rejected");
        };
        assert!(rej.deadlock.is_some());
        assert!(!rej.races.is_empty());
        assert!(rej.seq_eq.is_some());
        let confirmed = confirm_rejection(&sk, &rej).expect("all findings reproduce");
        assert!(confirmed.deadlock);
        assert_eq!(confirmed.races, rej.races.len());
        assert!(confirmed.seq_eq);
        assert_eq!(confirmed.total(), 1 + rej.races.len() + 1);
    }

    #[test]
    fn confirm_param_witness_replays_smallest_failing_instance() {
        use mc_verify::{models, param_verify};

        let t = models::fan_in_off_by_one_template();
        let v = param_verify(&t).expect("cutoff search succeeds");
        let w = v.witness().expect("off-by-one is rejected");
        let confirmed = confirm_param_witness(w).expect("witness reproduces");
        assert!(confirmed.races >= 1);
    }

    #[test]
    fn confirm_rejects_bogus_witness() {
        use mc_verify::{verify, Verdict};

        let mut b = SkeletonBuilder::new();
        let x = b.var("x");
        b.thread("w").write(x);
        b.thread("r").read(x);
        let sk = b.build();
        let Verdict::Rejected(mut rej) = verify(&sk) else {
            panic!("unguarded pair should be rejected");
        };
        // Corrupt the race witness: drop the final (reversed) access.
        rej.races[0].witness.pop();
        assert!(matches!(
            confirm_rejection(&sk, &rej),
            Err(ConfirmError::Mismatch { .. })
        ));
    }

    #[test]
    fn replay_executes_witness_order() {
        let sk = unguarded();
        // Reader first, then writer: the read observes no write.
        let schedule = [
            OpRef {
                thread: 1,
                index: 0,
            },
            OpRef {
                thread: 0,
                index: 0,
            },
        ];
        let o = replay_schedule(&sk, &schedule).expect("schedule is valid");
        assert_eq!(
            o.reads,
            vec![(
                OpRef {
                    thread: 1,
                    index: 0
                },
                None
            )]
        );
        assert!(o.completed);
    }
}
