//! Bounded dynamic exploration of synchronization skeletons.
//!
//! The static verifier (`mc-verify`) proves properties over **all**
//! interleavings; this module samples interleavings of the same
//! [`Skeleton`] IR with a seeded random scheduler, and can replay an
//! explicit schedule — including the witness schedules the static analyses
//! emit — so static counterexamples are confirmed dynamically.
//!
//! An interleaving's observable *outcome* is its dataflow: which write each
//! read observed, each variable's final writer, and whether every thread
//! completed. A skeleton is dynamically deterministic over a seed set when
//! all sampled schedules produce the same outcome.

use std::fmt;

use mc_verify::{greedy_cut_limited, Op, OpRef, Skeleton};

/// The schedule-observable result of one interleaving.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SkeletonOutcome {
    /// True if every thread ran to completion.
    pub completed: bool,
    /// For each executed read (in position order): the write it observed,
    /// if any.
    pub reads: Vec<(OpRef, Option<OpRef>)>,
    /// Final writer of each variable, by variable index.
    pub final_writes: Vec<Option<OpRef>>,
    /// Where each thread stopped (its length if it completed).
    pub stopped_at: Vec<usize>,
}

impl fmt::Display for SkeletonOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "completed={}, {} reads, final writers {:?}",
            self.completed,
            self.reads.len(),
            self.final_writes
        )
    }
}

/// Interpreter state while executing a skeleton one operation at a time.
struct Interp<'a> {
    sk: &'a Skeleton,
    positions: Vec<usize>,
    values: Vec<u64>,
    last_write: Vec<Option<OpRef>>,
    reads: Vec<(OpRef, Option<OpRef>)>,
}

impl<'a> Interp<'a> {
    fn new(sk: &'a Skeleton) -> Self {
        Interp {
            sk,
            positions: vec![0; sk.num_threads()],
            values: vec![0; sk.num_counters()],
            last_write: vec![None; sk.num_vars()],
            reads: Vec::new(),
        }
    }

    /// Threads whose next operation is executable right now.
    fn enabled(&self) -> Vec<usize> {
        (0..self.sk.num_threads())
            .filter(|&t| {
                let i = self.positions[t];
                if i >= self.sk.ops(t).len() {
                    return false;
                }
                match self.sk.ops(t)[i] {
                    Op::Check { counter, level } => self.values[counter.0] >= level,
                    _ => true,
                }
            })
            .collect()
    }

    /// Execute thread `t`'s next operation. Panics if not enabled.
    fn step(&mut self, t: usize) -> OpRef {
        let i = self.positions[t];
        let r = OpRef {
            thread: t,
            index: i,
        };
        match self.sk.op(r) {
            Op::Inc { counter, amount } => {
                self.values[counter.0] = self.values[counter.0]
                    .checked_add(amount)
                    .expect("counter overflow in skeleton interpreter");
            }
            Op::Check { counter, level } => {
                assert!(
                    self.values[counter.0] >= level,
                    "stepped a disabled check: {}",
                    self.sk.describe(r)
                );
            }
            Op::Read { var } => self.reads.push((r, self.last_write[var.0])),
            Op::Write { var } => self.last_write[var.0] = Some(r),
        }
        self.positions[t] = i + 1;
        r
    }

    fn outcome(self) -> SkeletonOutcome {
        let completed = self
            .positions
            .iter()
            .enumerate()
            .all(|(t, &p)| p >= self.sk.ops(t).len());
        // Reads are pushed in interleaving order; normalize to position
        // order so outcomes compare by dataflow, not by schedule.
        let mut reads = self.reads;
        reads.sort_unstable_by_key(|(r, _)| *r);
        SkeletonOutcome {
            completed,
            reads,
            final_writes: self.last_write,
            stopped_at: self.positions,
        }
    }
}

/// SplitMix64 step (same generator as [`crate::Chaos`]).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Execute one maximal interleaving chosen by a seeded uniform scheduler:
/// at each step, a uniformly random enabled thread executes its next
/// operation, until no thread is enabled.
pub fn run_random(sk: &Skeleton, seed: u64) -> SkeletonOutcome {
    let mut state = seed;
    let mut interp = Interp::new(sk);
    loop {
        let enabled = interp.enabled();
        if enabled.is_empty() {
            return interp.outcome();
        }
        let pick = (splitmix(&mut state) % enabled.len() as u64) as usize;
        interp.step(enabled[pick]);
    }
}

/// Sample one outcome per seed and collect the distinct ones, with a
/// witness seed for each.
pub fn explore_skeleton(
    sk: &Skeleton,
    seeds: impl IntoIterator<Item = u64>,
) -> crate::Outcomes<SkeletonOutcome> {
    crate::explore(seeds, |seed| run_random(sk, seed))
}

/// An error replaying an explicit schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The schedule asks a thread to execute an operation out of program
    /// order.
    OutOfOrder {
        /// The offending schedule entry.
        at: OpRef,
        /// The position the thread was actually at.
        expected_index: usize,
    },
    /// The schedule executes a check whose level is not yet satisfied.
    CheckNotSatisfied {
        /// The offending schedule entry.
        at: OpRef,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::OutOfOrder { at, expected_index } => write!(
                f,
                "schedule entry {at} is out of program order (thread is at index {expected_index})"
            ),
            ReplayError::CheckNotSatisfied { at } => {
                write!(f, "schedule executes unsatisfied check at {at}")
            }
        }
    }
}

/// Execute an explicit schedule (e.g. a witness emitted by `mc-verify`),
/// validating that every step is executable, then let every thread run to
/// quiescence greedily. Returns the outcome of the completed run.
pub fn replay_schedule(sk: &Skeleton, schedule: &[OpRef]) -> Result<SkeletonOutcome, ReplayError> {
    let mut interp = Interp::new(sk);
    for &r in schedule {
        if interp.positions[r.thread] != r.index {
            return Err(ReplayError::OutOfOrder {
                at: r,
                expected_index: interp.positions[r.thread],
            });
        }
        if let Op::Check { counter, level } = sk.op(r) {
            if interp.values[counter.0] < level {
                return Err(ReplayError::CheckNotSatisfied { at: r });
            }
        }
        interp.step(r.thread);
    }
    // Drain: run the remainder greedily so the outcome covers a maximal
    // execution extending the prescribed prefix.
    loop {
        let enabled = interp.enabled();
        if enabled.is_empty() {
            return Ok(interp.outcome());
        }
        interp.step(enabled[0]);
    }
}

/// Convenience: does the maximal greedy execution complete? (Mirrors the
/// static fixpoint; exposed for tests that want the dynamic view only.)
pub fn completes(sk: &Skeleton) -> bool {
    let limits: Vec<usize> = (0..sk.num_threads()).map(|t| sk.ops(t).len()).collect();
    let cut = greedy_cut_limited(sk, &limits);
    cut.positions.iter().zip(&limits).all(|(p, l)| p >= l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_verify::SkeletonBuilder;

    fn guarded() -> Skeleton {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        let x = b.var("x");
        b.thread("w").write(x).inc(c, 1);
        b.thread("r").check(c, 1).read(x);
        b.build()
    }

    fn unguarded() -> Skeleton {
        let mut b = SkeletonBuilder::new();
        let x = b.var("x");
        b.thread("w").write(x);
        b.thread("r").read(x);
        b.build()
    }

    #[test]
    fn guarded_skeleton_is_deterministic_over_seeds() {
        let sk = guarded();
        let outcomes = explore_skeleton(&sk, 0..64);
        assert!(outcomes.is_deterministic(), "{outcomes}");
        let o = outcomes.unique().expect("deterministic");
        assert!(o.completed);
        assert_eq!(
            o.reads,
            vec![(
                OpRef {
                    thread: 1,
                    index: 1
                },
                Some(OpRef {
                    thread: 0,
                    index: 0
                })
            )]
        );
    }

    #[test]
    fn unguarded_skeleton_shows_nondeterminism() {
        let sk = unguarded();
        let outcomes = explore_skeleton(&sk, 0..64);
        assert!(
            !outcomes.is_deterministic(),
            "64 seeds should hit both orders of a 2-op race"
        );
    }

    #[test]
    fn replay_validates_program_order() {
        let sk = guarded();
        let bad = [OpRef {
            thread: 0,
            index: 1,
        }];
        assert!(matches!(
            replay_schedule(&sk, &bad),
            Err(ReplayError::OutOfOrder { .. })
        ));
    }

    #[test]
    fn replay_validates_check_levels() {
        let sk = guarded();
        let bad = [OpRef {
            thread: 1,
            index: 0,
        }];
        assert_eq!(
            replay_schedule(&sk, &bad),
            Err(ReplayError::CheckNotSatisfied {
                at: OpRef {
                    thread: 1,
                    index: 0
                }
            })
        );
    }

    #[test]
    fn replay_executes_witness_order() {
        let sk = unguarded();
        // Reader first, then writer: the read observes no write.
        let schedule = [
            OpRef {
                thread: 1,
                index: 0,
            },
            OpRef {
                thread: 0,
                index: 0,
            },
        ];
        let o = replay_schedule(&sk, &schedule).expect("schedule is valid");
        assert_eq!(
            o.reads,
            vec![(
                OpRef {
                    thread: 1,
                    index: 0
                },
                None
            )]
        );
        assert!(o.completed);
    }
}
