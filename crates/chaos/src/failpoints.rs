//! Named, seed-deterministic IO fault sites ("failpoints").
//!
//! A failpoint is a named hook compiled into a fallible code path — the
//! durability layer instruments every syscall surface it owns (log append,
//! fsync, truncate, open, snapshot create/write/rename) with sites like
//! `"wal.append.write"` or `"snapshot.rename"`. At runtime each site asks its
//! [`Failpoints`] registry whether to inject an error *instead of* performing
//! the real operation; an unarmed site costs one mutex-free atomic load.
//!
//! Faults are **deterministic**: probability draws come from a per-site
//! SplitMix64 stream seeded from the registry seed and the site name, so the
//! decision sequence at each site is a pure function of `(seed, site, hit
//! index)` — a failing torture run replays exactly with the same seed,
//! regardless of how other sites interleave.
//!
//! # Configuration grammar (`MC_CHAOS_FAILPOINTS`)
//!
//! A comma-separated list of `site=spec` entries; each spec is
//! colon-separated fields, order-insensitive after the trigger:
//!
//! ```text
//! MC_CHAOS_FAILPOINTS="wal.flush.fsync=p0.3:enospc,snapshot.rename=nth2:eio:oneshot"
//! ```
//!
//! * trigger (required, first field): `always`, `p<float>` (per-hit
//!   probability), or `nth<N>` (fires on the Nth hit, 1-based);
//! * error kind (optional): `eio` (default), `enospc`, `eintr`, `eagain`,
//!   `timedout`;
//! * `oneshot` (optional): disarm the site after its first injected fault
//!   (default: persistent — the site keeps evaluating its trigger);
//! * `partial` (optional): on buffer-carrying sites (log appends), perform
//!   a prefix of the operation before failing — a syscall torn mid-write
//!   (`write_all` stopping short on `ENOSPC`) rather than one that never
//!   started. Sites evaluated through [`Failpoints::hit`] treat it as a
//!   plain fault.
//!
//! The seed comes from `MC_CHAOS_SEED` (see
//! [`seed_from_env`](crate::seed_from_env)); the same two variables drive
//! CI's torture matrix and local replay.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// The environment variable holding the failpoint configuration parsed by
/// [`Failpoints::from_env`] (grammar in the module docs).
pub const FAILPOINTS_ENV: &str = "MC_CHAOS_FAILPOINTS";

/// When an armed site injects its fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every hit fails.
    Always,
    /// Each hit fails with this probability (0..=1), drawn from the site's
    /// seeded stream.
    Probability(f64),
    /// Exactly the Nth hit (1-based) fails; earlier and later hits pass
    /// (unless the site is persistent and re-armed).
    Nth(u64),
}

/// One site's fault configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FailConfig {
    /// When the site fires.
    pub trigger: Trigger,
    /// The `io::ErrorKind` of the injected error.
    pub kind: io::ErrorKind,
    /// Disarm after the first injected fault (`true`) or keep evaluating the
    /// trigger on every hit (`false`).
    pub oneshot: bool,
    /// On buffer-carrying sites (evaluated via
    /// [`Failpoints::hit_buffered`]), perform a deterministic prefix of the
    /// operation before failing — a torn mid-write fault instead of a clean
    /// no-op failure. Plain [`Failpoints::hit`] sites ignore this.
    pub partial: bool,
}

impl FailConfig {
    /// A persistent, always-firing fault of the given kind — the bluntest
    /// instrument, for "disk is gone" scenarios.
    pub fn always(kind: io::ErrorKind) -> Self {
        FailConfig {
            trigger: Trigger::Always,
            kind,
            oneshot: false,
            partial: false,
        }
    }

    /// A one-shot fault on the `nth` hit (1-based) — for "exactly one EINTR
    /// mid-protocol" scenarios.
    pub fn once_at(nth: u64, kind: io::ErrorKind) -> Self {
        FailConfig {
            trigger: Trigger::Nth(nth),
            kind,
            oneshot: true,
            partial: false,
        }
    }

    /// A persistent per-hit probability fault.
    pub fn with_probability(p: f64, kind: io::ErrorKind) -> Self {
        FailConfig {
            trigger: Trigger::Probability(p.clamp(0.0, 1.0)),
            kind,
            oneshot: false,
            partial: false,
        }
    }

    /// Makes this configuration one-shot: the site disarms itself after its
    /// first injection.
    pub fn oneshot(mut self) -> Self {
        self.oneshot = true;
        self
    }

    /// Makes this configuration partial: buffer-carrying sites perform a
    /// deterministic prefix of the operation before failing.
    pub fn partial(mut self) -> Self {
        self.partial = true;
        self
    }
}

/// The outcome of evaluating a buffer-carrying fault site via
/// [`Failpoints::hit_buffered`].
#[derive(Debug)]
pub enum BufInjection {
    /// The site passed: perform the real operation in full.
    Pass,
    /// Fail without performing any of the operation.
    Fail(io::Error),
    /// Perform the operation on exactly the first `prefix` bytes of the
    /// buffer, then return the error — a syscall torn mid-write.
    Partial {
        /// Bytes (1-based count, strictly less than the buffer length) to
        /// write before failing.
        prefix: usize,
        /// The injected error to return after the partial write.
        error: io::Error,
    },
}

/// Mutable per-site state: the armed config plus the site's private
/// deterministic stream and hit counters.
#[derive(Debug)]
struct SiteState {
    config: Option<FailConfig>,
    /// SplitMix64 state for probability draws, seeded from `(registry seed,
    /// site name)` so the draw sequence is schedule-independent per site.
    rng: u64,
    hits: u64,
    injected: u64,
}

/// A registry of named fault sites. Shareable (`Arc`) between the test
/// driver arming faults and the code under test hitting them.
///
/// The process-global instance ([`global`]) is configured from the
/// environment once; tests that need isolation construct their own registry
/// and hand it to the code under test (e.g. via
/// `mc_durable::DurableOptions::failpoints`).
#[derive(Debug)]
pub struct Failpoints {
    seed: u64,
    /// Number of armed sites; zero makes [`hit`](Self::hit) a single relaxed
    /// load — the cost of compiled-in-but-unused instrumentation.
    armed: AtomicUsize,
    sites: Mutex<HashMap<String, SiteState>>,
    /// Total faults injected across all sites (cheap aggregate for tests).
    total_injected: AtomicU64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn site_seed(seed: u64, site: &str) -> u64 {
    // FNV-1a over the site name, mixed with the registry seed: distinct
    // sites get decorrelated streams under the same seed.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in site.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^ seed
}

impl Failpoints {
    /// An empty registry with the given seed: every site passes until armed.
    pub fn new(seed: u64) -> Self {
        Failpoints {
            seed,
            armed: AtomicUsize::new(0),
            sites: Mutex::new(HashMap::new()),
            total_injected: AtomicU64::new(0),
        }
    }

    /// A registry that never injects (seed 0, nothing armed).
    pub fn disabled() -> Arc<Self> {
        Arc::new(Self::new(0))
    }

    /// Parses [`FAILPOINTS_ENV`] (seeded from `MC_CHAOS_SEED`) into a
    /// registry. An unset or empty variable yields an inert registry; a
    /// malformed entry panics with the offending fragment, since silently
    /// ignoring a typo'd fault spec would un-test exactly what the run was
    /// meant to test.
    pub fn from_env() -> Self {
        let seed = crate::seed_from_env(0);
        match std::env::var(FAILPOINTS_ENV) {
            Ok(spec) if !spec.trim().is_empty() => Self::from_spec(seed, &spec)
                .unwrap_or_else(|e| panic!("invalid {FAILPOINTS_ENV}: {e}")),
            _ => Self::new(seed),
        }
    }

    /// Parses a configuration string (the [`FAILPOINTS_ENV`] grammar) into a
    /// registry with the given seed.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn from_spec(seed: u64, spec: &str) -> Result<Self, String> {
        let fp = Self::new(seed);
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (site, cfg) = entry
                .split_once('=')
                .ok_or_else(|| format!("clause '{entry}': expected site=spec"))?;
            let site = site.trim();
            if site.is_empty() {
                return Err(format!("clause '{entry}': empty site name"));
            }
            fp.arm(site, parse_spec(site, cfg.trim())?);
        }
        Ok(fp)
    }

    /// Arms `site` with `config` (replacing any previous config; counters
    /// continue).
    pub fn arm(&self, site: &str, config: FailConfig) {
        let mut sites = lock_sites(&self.sites);
        let state = sites.entry(site.to_string()).or_insert_with(|| SiteState {
            config: None,
            rng: site_seed(self.seed, site),
            hits: 0,
            injected: 0,
        });
        if state.config.is_none() {
            self.armed.fetch_add(1, Relaxed);
        }
        state.config = Some(config);
    }

    /// Disarms `site` (its hit/injection counters survive for inspection).
    pub fn disarm(&self, site: &str) {
        let mut sites = lock_sites(&self.sites);
        if let Some(state) = sites.get_mut(site) {
            if state.config.take().is_some() {
                self.armed.fetch_sub(1, Relaxed);
            }
        }
    }

    /// Disarms every site.
    pub fn clear(&self) {
        let mut sites = lock_sites(&self.sites);
        for state in sites.values_mut() {
            if state.config.take().is_some() {
                self.armed.fetch_sub(1, Relaxed);
            }
        }
    }

    /// The instrumentation hook: evaluates `site` and returns the injected
    /// error if the site fires, `Ok(())` otherwise. With nothing armed this
    /// is one relaxed atomic load.
    pub fn hit(&self, site: &str) -> io::Result<()> {
        match self.hit_buffered(site, 0) {
            BufInjection::Pass => Ok(()),
            BufInjection::Fail(e) | BufInjection::Partial { error: e, .. } => Err(e),
        }
    }

    /// [`hit`](Self::hit) for buffer-carrying operations (`len` bytes about
    /// to be written): a firing site whose config is
    /// [`partial`](FailConfig::partial) asks the caller to perform the
    /// operation on a deterministic nonzero prefix of the buffer before
    /// failing — the torn mid-write shape a real `write_all` leaves when a
    /// disk fills partway through. The prefix draw comes from the site's
    /// seeded stream, so it replays with the schedule.
    pub fn hit_buffered(&self, site: &str, len: usize) -> BufInjection {
        if self.armed.load(Relaxed) == 0 {
            return BufInjection::Pass;
        }
        let mut sites = lock_sites(&self.sites);
        let Some(state) = sites.get_mut(site) else {
            return BufInjection::Pass;
        };
        let Some(config) = state.config.clone() else {
            return BufInjection::Pass;
        };
        state.hits += 1;
        let fires = match config.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => state.hits == n,
            Trigger::Probability(p) => {
                let draw = splitmix(&mut state.rng);
                ((draw >> 11) as f64 / (1u64 << 53) as f64) < p
            }
        };
        if !fires {
            return BufInjection::Pass;
        }
        state.injected += 1;
        self.total_injected.fetch_add(1, Relaxed);
        // A torn write needs at least one byte written and one withheld.
        let prefix = (config.partial && len > 1)
            .then(|| 1 + (splitmix(&mut state.rng) % (len as u64 - 1)) as usize);
        if config.oneshot {
            state.config = None;
            self.armed.fetch_sub(1, Relaxed);
        }
        let detail = match prefix {
            Some(p) => format!(" after {p}-byte partial write"),
            None => String::new(),
        };
        let error = io::Error::new(
            config.kind,
            format!(
                "chaos failpoint '{site}' injected {:?}{detail}",
                config.kind
            ),
        );
        match prefix {
            Some(prefix) => BufInjection::Partial { prefix, error },
            None => BufInjection::Fail(error),
        }
    }

    /// How many times `site` has been evaluated while registered (armed hits
    /// only; sites never armed report 0).
    pub fn hits(&self, site: &str) -> u64 {
        lock_sites(&self.sites).get(site).map_or(0, |s| s.hits)
    }

    /// How many faults `site` has injected.
    pub fn injected(&self, site: &str) -> u64 {
        lock_sites(&self.sites).get(site).map_or(0, |s| s.injected)
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.total_injected.load(Relaxed)
    }

    /// Whether any site is currently armed.
    pub fn any_armed(&self) -> bool {
        self.armed.load(Relaxed) > 0
    }

    /// The registry seed (for replay lines in test output).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// A panicking site holder must not cascade: the registry's data is a plain
/// map of counters, valid at every step, so recover the guard.
fn lock_sites(
    m: &Mutex<HashMap<String, SiteState>>,
) -> std::sync::MutexGuard<'_, HashMap<String, SiteState>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Parses one clause's `spec` half. `site` is the clause's site name, so
/// every error names both the offending token and the site it rode in on —
/// in a CI matrix arming a dozen sites, "bad probability" without the site
/// is a needle hunt.
fn parse_spec(site: &str, spec: &str) -> Result<FailConfig, String> {
    let err = |token: &str, what: &str| format!("failpoint '{site}': {what} in token '{token}'");
    let mut fields = spec.split(':');
    let trigger_str = fields
        .next()
        .filter(|s| !s.is_empty())
        .ok_or_else(|| format!("failpoint '{site}': empty spec"))?;
    let trigger = if trigger_str == "always" {
        Trigger::Always
    } else if let Some(p) = trigger_str.strip_prefix('p') {
        let p: f64 = p.parse().map_err(|_| err(trigger_str, "bad probability"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(err(trigger_str, "probability outside 0..=1"));
        }
        Trigger::Probability(p)
    } else if let Some(n) = trigger_str.strip_prefix("nth") {
        let n: u64 = n.parse().map_err(|_| err(trigger_str, "bad hit index"))?;
        if n == 0 {
            return Err(err(trigger_str, "hit index is 1-based"));
        }
        Trigger::Nth(n)
    } else {
        return Err(err(trigger_str, "expected always, p<float>, or nth<N>"));
    };
    let mut kind = io::ErrorKind::Other;
    let mut oneshot = false;
    let mut partial = false;
    for field in fields {
        match field {
            "eio" => kind = io::ErrorKind::Other,
            "enospc" => kind = io::ErrorKind::StorageFull,
            "eintr" => kind = io::ErrorKind::Interrupted,
            "eagain" => kind = io::ErrorKind::WouldBlock,
            "timedout" => kind = io::ErrorKind::TimedOut,
            "oneshot" => oneshot = true,
            "partial" => partial = true,
            other => return Err(err(
                other,
                "unknown field (expected eio, enospc, eintr, eagain, timedout, oneshot, or partial)",
            )),
        }
    }
    Ok(FailConfig {
        trigger,
        kind,
        oneshot,
        partial,
    })
}

/// The process-global registry, parsed from [`FAILPOINTS_ENV`] +
/// `MC_CHAOS_SEED` on first use. This is how environment-driven runs (CI
/// matrices, re-executed crash-harness children) arm faults without touching
/// call sites; in-process tests should prefer a private registry.
pub fn global() -> &'static Arc<Failpoints> {
    static GLOBAL: OnceLock<Arc<Failpoints>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Failpoints::from_env()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_pass() {
        let fp = Failpoints::new(1);
        assert!(fp.hit("wal.append.write").is_ok());
        assert!(!fp.any_armed());
        assert_eq!(fp.total_injected(), 0);
    }

    #[test]
    fn always_fires_every_hit_with_configured_kind() {
        let fp = Failpoints::new(1);
        fp.arm("x", FailConfig::always(io::ErrorKind::StorageFull));
        for _ in 0..3 {
            let e = fp.hit("x").unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::StorageFull);
        }
        assert_eq!(fp.injected("x"), 3);
        assert_eq!(fp.hits("x"), 3);
    }

    #[test]
    fn nth_fires_exactly_once_on_the_nth_hit() {
        let fp = Failpoints::new(1);
        fp.arm("x", FailConfig::once_at(3, io::ErrorKind::Interrupted));
        assert!(fp.hit("x").is_ok());
        assert!(fp.hit("x").is_ok());
        assert_eq!(fp.hit("x").unwrap_err().kind(), io::ErrorKind::Interrupted);
        // One-shot: disarmed after firing.
        assert!(fp.hit("x").is_ok());
        assert!(!fp.any_armed());
    }

    #[test]
    fn persistent_nth_fires_only_nth_but_stays_armed() {
        let fp = Failpoints::new(1);
        fp.arm(
            "x",
            FailConfig {
                trigger: Trigger::Nth(2),
                kind: io::ErrorKind::Other,
                oneshot: false,
                partial: false,
            },
        );
        assert!(fp.hit("x").is_ok());
        assert!(fp.hit("x").is_err());
        assert!(fp.hit("x").is_ok());
        assert!(fp.any_armed());
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let fp = Failpoints::new(seed);
            fp.arm("x", FailConfig::with_probability(0.5, io::ErrorKind::Other));
            (0..64).map(|_| fp.hit("x").is_err()).collect()
        };
        assert_eq!(run(42), run(42), "same seed, same decisions");
        assert_ne!(run(42), run(43), "different seed, different decisions");
        let fired = run(42).iter().filter(|b| **b).count();
        assert!((10..=54).contains(&fired), "p=0.5 of 64: got {fired}");
    }

    #[test]
    fn sites_draw_from_decorrelated_streams() {
        let fp = Failpoints::new(7);
        fp.arm("a", FailConfig::with_probability(0.5, io::ErrorKind::Other));
        fp.arm("b", FailConfig::with_probability(0.5, io::ErrorKind::Other));
        let a: Vec<bool> = (0..64).map(|_| fp.hit("a").is_err()).collect();
        let b: Vec<bool> = (0..64).map(|_| fp.hit("b").is_err()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn spec_grammar_round_trips() {
        let fp = Failpoints::from_spec(
            9,
            "wal.flush.fsync=p0.25:enospc, snapshot.rename=nth2:eio:oneshot ,x=always:eintr",
        )
        .unwrap();
        assert!(fp.any_armed());
        // nth2 one-shot: second hit fails, then disarmed.
        assert!(fp.hit("snapshot.rename").is_ok());
        assert!(fp.hit("snapshot.rename").is_err());
        assert!(fp.hit("snapshot.rename").is_ok());
        assert_eq!(fp.hit("x").unwrap_err().kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn partial_configs_ask_for_a_strict_nonzero_prefix() {
        let fp = Failpoints::new(11);
        fp.arm(
            "x",
            FailConfig::always(io::ErrorKind::StorageFull).partial(),
        );
        for len in [2usize, 3, 64, 4096] {
            match fp.hit_buffered("x", len) {
                BufInjection::Partial { prefix, error } => {
                    assert!((1..len).contains(&prefix), "len {len}: prefix {prefix}");
                    assert_eq!(error.kind(), io::ErrorKind::StorageFull);
                }
                other => panic!("len {len}: expected Partial, got {other:?}"),
            }
        }
        // A buffer too small to tear degenerates to a clean failure.
        for len in [0usize, 1] {
            assert!(matches!(fp.hit_buffered("x", len), BufInjection::Fail(_)));
        }
        // Plain hit() treats the same config as a clean failure.
        assert!(fp.hit("x").is_err());
    }

    #[test]
    fn partial_prefix_draws_replay_per_seed() {
        let run = |seed: u64| -> Vec<usize> {
            let fp = Failpoints::new(seed);
            fp.arm("x", FailConfig::always(io::ErrorKind::Other).partial());
            (0..16)
                .map(|_| match fp.hit_buffered("x", 1000) {
                    BufInjection::Partial { prefix, .. } => prefix,
                    other => panic!("expected Partial, got {other:?}"),
                })
                .collect()
        };
        assert_eq!(run(5), run(5), "same seed, same prefixes");
        assert_ne!(run(5), run(6), "different seed, different prefixes");
    }

    #[test]
    fn partial_spec_field_parses_and_oneshot_disarms_after_partial() {
        let fp = Failpoints::from_spec(3, "wal.append.write=nth1:enospc:oneshot:partial").unwrap();
        match fp.hit_buffered("wal.append.write", 100) {
            BufInjection::Partial { error, .. } => {
                assert_eq!(error.kind(), io::ErrorKind::StorageFull)
            }
            other => panic!("expected Partial, got {other:?}"),
        }
        assert!(!fp.any_armed(), "oneshot must disarm after the partial");
        assert!(matches!(
            fp.hit_buffered("wal.append.write", 100),
            BufInjection::Pass
        ));
    }

    /// Asserts `spec` is rejected and that the error names every expected
    /// fragment — the offending token and its site.
    fn assert_rejected_with(spec: &str, fragments: &[&str]) {
        let err = Failpoints::from_spec(0, spec).unwrap_err();
        for fragment in fragments {
            assert!(
                err.contains(fragment),
                "error for {spec:?} must name {fragment:?}, got: {err}"
            );
        }
    }

    #[test]
    fn clause_without_equals_is_rejected_naming_the_clause() {
        assert_rejected_with("no-equals", &["'no-equals'", "expected site=spec"]);
    }

    #[test]
    fn clause_with_empty_site_is_rejected() {
        assert_rejected_with("=always:eio", &["'=always:eio'", "empty site name"]);
    }

    #[test]
    fn empty_spec_is_rejected_naming_the_site() {
        assert_rejected_with("wal.fsync=", &["failpoint 'wal.fsync'", "empty spec"]);
    }

    #[test]
    fn bad_probability_is_rejected_naming_token_and_site() {
        assert_rejected_with("x=pten", &["failpoint 'x'", "'pten'", "bad probability"]);
    }

    #[test]
    fn out_of_range_probability_is_rejected_naming_token_and_site() {
        assert_rejected_with(
            "wal.append.write=p1.5",
            &["failpoint 'wal.append.write'", "'p1.5'", "outside 0..=1"],
        );
    }

    #[test]
    fn bad_hit_index_is_rejected_naming_token_and_site() {
        assert_rejected_with("x=nthX", &["failpoint 'x'", "'nthX'", "bad hit index"]);
    }

    #[test]
    fn zero_hit_index_is_rejected_naming_token_and_site() {
        assert_rejected_with("x=nth0", &["failpoint 'x'", "'nth0'", "1-based"]);
    }

    #[test]
    fn unknown_trigger_is_rejected_naming_token_and_site() {
        assert_rejected_with(
            "x=maybe",
            &[
                "failpoint 'x'",
                "'maybe'",
                "expected always, p<float>, or nth<N>",
            ],
        );
    }

    #[test]
    fn unknown_field_is_rejected_naming_token_and_site() {
        assert_rejected_with(
            "snapshot.rename=always:ebadness",
            &["failpoint 'snapshot.rename'", "'ebadness'", "unknown field"],
        );
    }

    #[test]
    fn error_names_the_failing_site_even_in_a_multi_clause_spec() {
        // The first clause is fine; the error must point at the second.
        assert_rejected_with("a=always:eio,b=nth0:enospc", &["failpoint 'b'", "'nth0'"]);
    }

    #[test]
    fn disarm_and_clear_restore_the_fast_path() {
        let fp = Failpoints::new(1);
        fp.arm("a", FailConfig::always(io::ErrorKind::Other));
        fp.arm("b", FailConfig::always(io::ErrorKind::Other));
        fp.disarm("a");
        assert!(fp.hit("a").is_ok());
        assert!(fp.hit("b").is_err());
        fp.clear();
        assert!(fp.hit("b").is_ok());
        assert!(!fp.any_armed());
        // Counters survive disarming.
        assert_eq!(fp.injected("b"), 1);
    }
}
