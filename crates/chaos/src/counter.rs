//! A counter wrapper that perturbs the schedule around every operation.

use crate::jitter::Chaos;
use mc_counter::{
    CheckError, CheckTimeoutError, CounterDiagnostics, CounterOverflowError, FailureInfo,
    MonotonicCounter, Resettable, StatsSnapshot, Value, WaitingLevel,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wraps any [`MonotonicCounter`] so that every operation passes through a
/// [`Chaos`] perturbation point before *and* after executing — widening the
/// set of schedules a test explores without changing semantics.
///
/// With [`with_abandon_after`](Self::with_abandon_after), the wrapper also
/// injects an *abandonment fault*: the Nth increment is dropped and the
/// counter poisoned instead, simulating a producer thread dying mid-protocol
/// — the failure mode the poisoning machinery exists to surface.
///
/// # Example
///
/// ```
/// use mc_chaos::{Chaos, ChaosCounter};
/// use mc_counter::{Counter, MonotonicCounter};
/// use std::sync::Arc;
///
/// let chaos = Arc::new(Chaos::new(42));
/// let c = ChaosCounter::new(Counter::default(), chaos);
/// c.increment(1);
/// c.check(1);
/// ```
pub struct ChaosCounter<C> {
    inner: C,
    chaos: Arc<Chaos>,
    /// Remaining increments until the abandonment fault fires; `u64::MAX`
    /// means no fault is armed.
    abandon_in: AtomicU64,
}

impl<C: MonotonicCounter> ChaosCounter<C> {
    /// Wraps `inner`, drawing jitter from `chaos` (shared so every counter
    /// in a program consumes one seeded stream).
    pub fn new(inner: C, chaos: Arc<Chaos>) -> Self {
        ChaosCounter {
            inner,
            chaos,
            abandon_in: AtomicU64::new(u64::MAX),
        }
    }

    /// Like [`new`](Self::new), but the `nth` increment (1-based) is
    /// **abandoned**: instead of incrementing, the wrapper poisons the
    /// counter as a panicking obligation holder would. Blocked waiters then
    /// fail with [`CheckError::Poisoned`] rather than hanging — letting
    /// chaos tests drive the failure paths on a seeded schedule.
    pub fn with_abandon_after(inner: C, chaos: Arc<Chaos>, nth: u64) -> Self {
        assert!(nth > 0, "the abandoned increment is 1-based");
        assert!(nth < u64::MAX, "u64::MAX means no fault is armed");
        ChaosCounter {
            inner,
            chaos,
            abandon_in: AtomicU64::new(nth),
        }
    }

    /// The wrapped counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Decrements the fault countdown; `true` when this call is the
    /// abandoned one.
    fn fault_fires(&self) -> bool {
        if self.abandon_in.load(Ordering::Relaxed) == u64::MAX {
            return false;
        }
        self.abandon_in.fetch_sub(1, Ordering::Relaxed) == 1
    }

    fn abandon(&self, amount: Value) {
        self.inner.poison(
            FailureInfo::new("chaos fault injection: increment abandoned").with_level(amount),
        );
    }
}

impl<C: MonotonicCounter> MonotonicCounter for ChaosCounter<C> {
    fn increment(&self, amount: Value) {
        self.chaos.point();
        if self.fault_fires() {
            self.abandon(amount);
        } else {
            self.inner.increment(amount);
        }
        self.chaos.point();
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        self.chaos.point();
        let r = if self.fault_fires() {
            self.abandon(amount);
            Ok(())
        } else {
            self.inner.try_increment(amount)
        };
        self.chaos.point();
        r
    }

    fn wait(&self, level: Value) -> Result<(), CheckError> {
        self.chaos.point();
        let r = self.inner.wait(level);
        self.chaos.point();
        r
    }

    fn wait_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckError> {
        self.chaos.point();
        let r = self.inner.wait_timeout(level, timeout);
        self.chaos.point();
        r
    }

    fn poison(&self, info: FailureInfo) {
        self.chaos.point();
        self.inner.poison(info);
        self.chaos.point();
    }

    fn poison_info(&self) -> Option<FailureInfo> {
        self.inner.poison_info()
    }

    fn check(&self, level: Value) {
        self.chaos.point();
        self.inner.check(level);
        self.chaos.point();
    }

    fn check_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckTimeoutError> {
        self.chaos.point();
        let r = self.inner.check_timeout(level, timeout);
        self.chaos.point();
        r
    }

    fn advance_to(&self, target: Value) {
        self.chaos.point();
        self.inner.advance_to(target);
        self.chaos.point();
    }
}

impl<C: Resettable> Resettable for ChaosCounter<C> {
    fn reset(&mut self) {
        self.inner.reset();
        *self.abandon_in.get_mut() = u64::MAX;
    }
}

impl<C: CounterDiagnostics> CounterDiagnostics for ChaosCounter<C> {
    fn debug_value(&self) -> Value {
        self.inner.debug_value()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn impl_name(&self) -> &'static str {
        "chaos-wrapped"
    }

    fn waiters(&self) -> Vec<WaitingLevel> {
        self.inner.waiters()
    }

    fn durable_watermark(&self) -> Option<Value> {
        self.inner.durable_watermark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_counter::testkit::{self, RecordingCounter};
    use mc_counter::Counter;

    #[test]
    fn semantics_preserved_under_jitter() {
        let chaos = Arc::new(Chaos::new(99));
        let c = Arc::new(ChaosCounter::new(Counter::default(), Arc::clone(&chaos)));
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.check(10));
        for _ in 0..10 {
            c.increment(1);
        }
        h.join().unwrap();
        assert_eq!(c.debug_value(), 10);
        assert_eq!(c.inner().debug_value(), 10);
    }

    #[test]
    fn timeout_and_overflow_pass_through() {
        let chaos = Arc::new(Chaos::new(1));
        let c = ChaosCounter::new(Counter::default(), chaos);
        assert!(c.check_timeout(5, Duration::from_millis(10)).is_err());
        c.increment(u64::MAX);
        assert!(c.try_increment(1).is_err());
    }

    #[test]
    fn advance_and_reset_pass_through() {
        let chaos = Arc::new(Chaos::new(1));
        let mut c = ChaosCounter::new(Counter::default(), chaos);
        c.advance_to(7);
        assert_eq!(c.debug_value(), 7);
        c.reset();
        assert_eq!(c.debug_value(), 0);
    }

    #[test]
    fn forwards_the_entire_trait_surface() {
        // The shared forwarding-conformance test: every MonotonicCounter
        // method driven through the wrapper must reach the wrapped counter.
        let chaos = Arc::new(Chaos::new(5));
        let c = ChaosCounter::new(RecordingCounter::new(), chaos);
        testkit::exercise_all(&c);
        testkit::assert_all_forwarded(c.inner());
        assert_eq!(c.waiters(), c.inner().waiters());
    }

    #[test]
    fn abandon_fault_poisons_on_the_nth_increment() {
        let chaos = Arc::new(Chaos::new(11));
        let c = ChaosCounter::with_abandon_after(Counter::default(), chaos, 3);
        c.increment(1);
        c.increment(1);
        assert!(c.poison_info().is_none());
        c.increment(1); // the abandoned one
        let info = c.poison_info().expect("third increment must be abandoned");
        assert!(info.message().contains("abandoned"));
        assert_eq!(c.debug_value(), 2, "the abandoned amount is never added");
        // Later increments still apply (poison does not freeze the value).
        c.increment(5);
        assert_eq!(c.debug_value(), 7);
    }

    #[test]
    fn abandon_fault_releases_blocked_waiters() {
        let chaos = Arc::new(Chaos::new(12));
        let c = Arc::new(ChaosCounter::with_abandon_after(
            Counter::default(),
            chaos,
            2,
        ));
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.wait(10));
        while c.waiters().is_empty() {
            std::thread::yield_now();
        }
        c.increment(1);
        c.increment(9); // abandoned: poisons instead
        assert!(matches!(h.join().unwrap(), Err(CheckError::Poisoned(_))));
    }

    #[test]
    fn unarmed_wrapper_never_faults() {
        let chaos = Arc::new(Chaos::new(13));
        let c = ChaosCounter::new(Counter::default(), chaos);
        for _ in 0..1000 {
            c.increment(1);
        }
        assert!(c.poison_info().is_none());
        assert_eq!(c.debug_value(), 1000);
    }
}
