//! A counter wrapper that perturbs the schedule around every operation.

use crate::jitter::Chaos;
use mc_counter::{
    CheckTimeoutError, CounterDiagnostics, CounterOverflowError, MonotonicCounter, Resettable,
    StatsSnapshot, Value,
};
use std::sync::Arc;
use std::time::Duration;

/// Wraps any [`MonotonicCounter`] so that every operation passes through a
/// [`Chaos`] perturbation point before *and* after executing — widening the
/// set of schedules a test explores without changing semantics.
///
/// # Example
///
/// ```
/// use mc_chaos::{Chaos, ChaosCounter};
/// use mc_counter::{Counter, MonotonicCounter};
/// use std::sync::Arc;
///
/// let chaos = Arc::new(Chaos::new(42));
/// let c = ChaosCounter::new(Counter::new(), chaos);
/// c.increment(1);
/// c.check(1);
/// ```
pub struct ChaosCounter<C> {
    inner: C,
    chaos: Arc<Chaos>,
}

impl<C: MonotonicCounter> ChaosCounter<C> {
    /// Wraps `inner`, drawing jitter from `chaos` (shared so every counter
    /// in a program consumes one seeded stream).
    pub fn new(inner: C, chaos: Arc<Chaos>) -> Self {
        ChaosCounter { inner, chaos }
    }

    /// The wrapped counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: MonotonicCounter> MonotonicCounter for ChaosCounter<C> {
    fn increment(&self, amount: Value) {
        self.chaos.point();
        self.inner.increment(amount);
        self.chaos.point();
    }

    fn try_increment(&self, amount: Value) -> Result<(), CounterOverflowError> {
        self.chaos.point();
        let r = self.inner.try_increment(amount);
        self.chaos.point();
        r
    }

    fn check(&self, level: Value) {
        self.chaos.point();
        self.inner.check(level);
        self.chaos.point();
    }

    fn check_timeout(&self, level: Value, timeout: Duration) -> Result<(), CheckTimeoutError> {
        self.chaos.point();
        let r = self.inner.check_timeout(level, timeout);
        self.chaos.point();
        r
    }

    fn advance_to(&self, target: Value) {
        self.chaos.point();
        self.inner.advance_to(target);
        self.chaos.point();
    }
}

impl<C: Resettable> Resettable for ChaosCounter<C> {
    fn reset(&mut self) {
        self.inner.reset();
    }
}

impl<C: CounterDiagnostics> CounterDiagnostics for ChaosCounter<C> {
    fn debug_value(&self) -> Value {
        self.inner.debug_value()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn impl_name(&self) -> &'static str {
        "chaos-wrapped"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_counter::Counter;

    #[test]
    fn semantics_preserved_under_jitter() {
        let chaos = Arc::new(Chaos::new(99));
        let c = Arc::new(ChaosCounter::new(Counter::new(), Arc::clone(&chaos)));
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.check(10));
        for _ in 0..10 {
            c.increment(1);
        }
        h.join().unwrap();
        assert_eq!(c.debug_value(), 10);
        assert_eq!(c.inner().debug_value(), 10);
    }

    #[test]
    fn timeout_and_overflow_pass_through() {
        let chaos = Arc::new(Chaos::new(1));
        let c = ChaosCounter::new(Counter::new(), chaos);
        assert!(c.check_timeout(5, Duration::from_millis(10)).is_err());
        c.increment(u64::MAX);
        assert!(c.try_increment(1).is_err());
    }

    #[test]
    fn advance_and_reset_pass_through() {
        let chaos = Arc::new(Chaos::new(1));
        let mut c = ChaosCounter::new(Counter::new(), chaos);
        c.advance_to(7);
        assert_eq!(c.debug_value(), 7);
        c.reset();
        assert_eq!(c.debug_value(), 0);
    }
}
