//! The seeded jitter source.

use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning for a [`Chaos`] source.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Probability (0..=1) that a perturbation point yields the scheduler.
    pub yield_probability: f64,
    /// Maximum busy-spin iterations injected at a perturbation point.
    pub max_spin: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            yield_probability: 0.5,
            max_spin: 200,
        }
    }
}

/// A seeded source of scheduling jitter, shareable across threads.
///
/// The internal state is a SplitMix64 sequence advanced atomically; the
/// *sequence* of decisions is a pure function of the seed, while which thread
/// draws which decision depends on the schedule — exactly the property a
/// perturbation harness wants (seeded variety, no artificial determinism).
#[derive(Debug)]
pub struct Chaos {
    state: AtomicU64,
    config: ChaosConfig,
}

impl Chaos {
    /// Creates a jitter source from a seed with default tuning.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, ChaosConfig::default())
    }

    /// Creates a jitter source with explicit tuning.
    pub fn with_config(seed: u64, config: ChaosConfig) -> Self {
        Chaos {
            state: AtomicU64::new(seed),
            config,
        }
    }

    /// Draws the next pseudo-random word (SplitMix64).
    fn next(&self) -> u64 {
        let mut z = self
            .state
            .fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed)
            .wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A perturbation point: maybe yields the scheduler, maybe burns a few
    /// cycles, based on the seeded stream. Cheap enough to sprinkle on every
    /// synchronization operation.
    pub fn point(&self) {
        let word = self.next();
        let yield_cut = (self.config.yield_probability * u32::MAX as f64) as u32;
        if (word as u32) < yield_cut {
            std::thread::yield_now();
        }
        if self.config.max_spin > 0 {
            let spins = (word >> 32) as u32 % self.config.max_spin;
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
    }
}

/// The chaos seed from the `MC_CHAOS_SEED` environment variable, or
/// `default` when the variable is unset or unparsable.
///
/// CI's fault matrix pins this variable so every job explores a distinct —
/// but reproducible — slice of the schedule space; a failing run's seed can
/// be replayed locally with `MC_CHAOS_SEED=<seed> cargo test ...`.
pub fn seed_from_env(default: u64) -> u64 {
    std::env::var("MC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn default_config_is_sane() {
        let c = ChaosConfig::default();
        assert!((0.0..=1.0).contains(&c.yield_probability));
    }

    #[test]
    fn point_terminates_quickly() {
        let chaos = Chaos::new(7);
        let t0 = std::time::Instant::now();
        for _ in 0..10_000 {
            chaos.point();
        }
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn stream_is_seed_dependent() {
        let a = Chaos::new(1);
        let b = Chaos::new(2);
        let wa: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let wb: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    fn shared_across_threads() {
        let chaos = Arc::new(Chaos::new(3));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let chaos = Arc::clone(&chaos);
                s.spawn(move || {
                    for _ in 0..100 {
                        chaos.point();
                    }
                });
            }
        });
    }

    #[test]
    fn zero_spin_config() {
        let chaos = Chaos::with_config(
            0,
            ChaosConfig {
                yield_probability: 0.0,
                max_spin: 0,
            },
        );
        for _ in 0..100 {
            chaos.point(); // must not divide by zero
        }
    }
}
