//! Seeded fault-schedule generation for torture harnesses.
//!
//! A torture run arms a randomized-but-replayable set of failpoints against
//! a system under concurrent load, waits for the system to degrade, clears
//! the faults, and asserts full recovery. This module owns the *schedule*
//! half of that loop: given a seed and the list of sites the system
//! instruments, [`fault_plan`] derives a deterministic per-site
//! [`FailConfig`] mix (probabilities, error kinds, one-shot nth-hit spikes)
//! so five pinned seeds in CI cover meaningfully different fault shapes and
//! any failure replays from its seed alone.
//!
//! The harness that *applies* a plan lives with the system under test (the
//! durable layer's `torture.rs` integration tests) because this crate sits
//! below it in the dependency order.

use crate::failpoints::{FailConfig, Failpoints, Trigger};
use std::io;

/// The error kinds a generated plan draws from — the transient kinds the
/// retry layer must absorb plus plain `Other` (EIO), which is permanent and
/// must push a `Degrade`-policy counter into degraded mode.
const KINDS: [io::ErrorKind; 4] = [
    io::ErrorKind::Other,
    io::ErrorKind::StorageFull,
    io::ErrorKind::Interrupted,
    io::ErrorKind::WouldBlock,
];

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives a deterministic fault plan: one [`FailConfig`] per site, with the
/// mix of triggers and error kinds a pure function of `seed`.
///
/// Roughly a third of sites get an `Nth`-hit spike (one-shot, fires once
/// then clears), the rest a persistent per-hit probability in `0.05..=0.45`
/// — high enough to exhaust small retry budgets sometimes, low enough that
/// progress is always eventually possible once the plan is cleared. Half of
/// all configs are additionally `partial`, so buffer-carrying sites (log
/// appends) cover torn mid-write faults, not just clean no-op failures;
/// non-buffered sites ignore the flag.
pub fn fault_plan(seed: u64, sites: &[&str]) -> Vec<(String, FailConfig)> {
    let mut rng = seed ^ 0xA55A_5AA5_D00D_F00D;
    sites
        .iter()
        .map(|site| {
            let kind = KINDS[(splitmix(&mut rng) % KINDS.len() as u64) as usize];
            let roll = splitmix(&mut rng);
            let partial = splitmix(&mut rng).is_multiple_of(2);
            let config = if roll.is_multiple_of(3) {
                FailConfig {
                    trigger: Trigger::Nth(1 + splitmix(&mut rng) % 8),
                    kind,
                    oneshot: true,
                    partial,
                }
            } else {
                let p = 0.05 + (splitmix(&mut rng) % 41) as f64 / 100.0;
                FailConfig {
                    trigger: Trigger::Probability(p),
                    kind,
                    oneshot: false,
                    partial,
                }
            };
            (site.to_string(), config)
        })
        .collect()
}

/// Arms every entry of a plan on `fp`. Pair with [`Failpoints::clear`] to
/// end the outage phase of a torture run.
pub fn arm_plan(fp: &Failpoints, plan: &[(String, FailConfig)]) {
    for (site, config) in plan {
        fp.arm(site, config.clone());
    }
}

/// Renders a plan as a [`MC_CHAOS_FAILPOINTS`](crate::failpoints::FAILPOINTS_ENV)
/// spec string, so a harness can hand an in-process plan to a re-executed
/// child (the kill-9 crash harness) through the environment.
///
/// Probability triggers are rendered to two decimals — matching the
/// granularity [`fault_plan`] generates, so the round trip is exact.
pub fn plan_to_spec(plan: &[(String, FailConfig)]) -> String {
    plan.iter()
        .map(|(site, config)| {
            let trigger = match config.trigger {
                Trigger::Always => "always".to_string(),
                Trigger::Probability(p) => format!("p{p:.2}"),
                Trigger::Nth(n) => format!("nth{n}"),
            };
            let kind = match config.kind {
                io::ErrorKind::StorageFull => ":enospc",
                io::ErrorKind::Interrupted => ":eintr",
                io::ErrorKind::WouldBlock => ":eagain",
                io::ErrorKind::TimedOut => ":timedout",
                _ => ":eio",
            };
            let oneshot = if config.oneshot { ":oneshot" } else { "" };
            let partial = if config.partial { ":partial" } else { "" };
            format!("{site}={trigger}{kind}{oneshot}{partial}")
        })
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SITES: [&str; 4] = [
        "wal.append.write",
        "wal.flush.fsync",
        "snapshot.rename",
        "wal.open",
    ];

    #[test]
    fn plans_are_deterministic_per_seed() {
        assert_eq!(fault_plan(42, &SITES), fault_plan(42, &SITES));
        assert_ne!(fault_plan(42, &SITES), fault_plan(43, &SITES));
    }

    #[test]
    fn plans_cover_every_site() {
        let plan = fault_plan(7, &SITES);
        assert_eq!(plan.len(), SITES.len());
        for (i, site) in SITES.iter().enumerate() {
            assert_eq!(plan[i].0, *site);
        }
    }

    #[test]
    fn plan_round_trips_through_spec_grammar() {
        for seed in [1, 7, 42, 1729, 99991] {
            let plan = fault_plan(seed, &SITES);
            let spec = plan_to_spec(&plan);
            let fp = Failpoints::from_spec(seed, &spec)
                .unwrap_or_else(|e| panic!("seed {seed}: generated spec '{spec}' must parse: {e}"));
            assert!(fp.any_armed());
        }
    }

    #[test]
    fn arm_plan_arms_and_clear_disarms() {
        let fp = Failpoints::new(3);
        let plan = fault_plan(3, &SITES);
        arm_plan(&fp, &plan);
        assert!(fp.any_armed());
        fp.clear();
        assert!(!fp.any_armed());
    }

    #[test]
    fn probabilities_stay_in_recoverable_band() {
        for seed in 0..64 {
            for (_, config) in fault_plan(seed, &SITES) {
                if let Trigger::Probability(p) = config.trigger {
                    assert!((0.05..=0.46).contains(&p), "seed {seed}: p={p}");
                }
            }
        }
    }
}
