//! Outcome exploration over many seeds.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// The distinct outcomes observed while [`explore`]-ing a program, with
/// occurrence counts and a witness seed per outcome.
#[derive(Debug, Clone)]
pub struct Outcomes<T> {
    by_outcome: HashMap<T, (usize, u64)>,
    total_runs: usize,
}

impl<T: Eq + Hash> Outcomes<T> {
    /// Number of distinct outcomes.
    pub fn distinct(&self) -> usize {
        self.by_outcome.len()
    }

    /// Total runs performed.
    pub fn runs(&self) -> usize {
        self.total_runs
    }

    /// Whether every run produced the same outcome — the Section 6
    /// determinacy verdict.
    pub fn is_deterministic(&self) -> bool {
        self.by_outcome.len() <= 1
    }

    /// Iterator over `(outcome, occurrences, witness_seed)`.
    pub fn iter(&self) -> impl Iterator<Item = (&T, usize, u64)> {
        self.by_outcome.iter().map(|(o, &(n, seed))| (o, n, seed))
    }

    /// The single outcome, if deterministic.
    pub fn unique(&self) -> Option<&T> {
        if self.by_outcome.len() == 1 {
            self.by_outcome.keys().next()
        } else {
            None
        }
    }
}

impl<T: Eq + Hash + fmt::Debug> fmt::Display for Outcomes<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} distinct outcome(s) over {} runs:",
            self.distinct(),
            self.total_runs
        )?;
        for (outcome, n, seed) in self.iter() {
            writeln!(f, "  {n:>4}x {outcome:?}  (first seed {seed})")?;
        }
        Ok(())
    }
}

/// Runs `program(seed)` once per seed and aggregates the distinct outcomes.
///
/// The program is expected to construct its own [`Chaos`](crate::Chaos)
/// source (and typically [`ChaosCounter`](crate::ChaosCounter)s) from the
/// seed, so each run samples a differently perturbed schedule.
///
/// # Example
///
/// ```
/// use mc_chaos::explore;
///
/// // A trivially deterministic "program".
/// let outcomes = explore(0..20, |_seed| 42);
/// assert!(outcomes.is_deterministic());
/// assert_eq!(outcomes.unique(), Some(&42));
/// ```
pub fn explore<T: Eq + Hash>(
    seeds: impl IntoIterator<Item = u64>,
    mut program: impl FnMut(u64) -> T,
) -> Outcomes<T> {
    let mut by_outcome: HashMap<T, (usize, u64)> = HashMap::new();
    let mut total_runs = 0;
    for seed in seeds {
        let outcome = program(seed);
        total_runs += 1;
        by_outcome
            .entry(outcome)
            .and_modify(|(n, _)| *n += 1)
            .or_insert((1, seed));
    }
    Outcomes {
        by_outcome,
        total_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_program_single_outcome() {
        let o = explore(0..50, |_| "same");
        assert!(o.is_deterministic());
        assert_eq!(o.distinct(), 1);
        assert_eq!(o.runs(), 50);
        assert_eq!(o.unique(), Some(&"same"));
    }

    #[test]
    fn seed_dependent_program_multiple_outcomes() {
        let o = explore(0..10, |seed| seed % 3);
        assert!(!o.is_deterministic());
        assert_eq!(o.distinct(), 3);
        assert_eq!(o.unique(), None);
    }

    #[test]
    fn witness_seed_is_first_occurrence() {
        let o = explore(5..10, |seed| seed >= 7);
        let mut witnesses: Vec<(bool, u64)> = o.iter().map(|(o, _, s)| (*o, s)).collect();
        witnesses.sort_unstable();
        assert_eq!(witnesses, vec![(false, 5), (true, 7)]);
    }

    #[test]
    fn display_lists_outcomes() {
        let o = explore(0..4, |s| s % 2);
        let text = o.to_string();
        assert!(text.contains("2 distinct"));
    }

    #[test]
    fn empty_seed_range() {
        let o = explore(std::iter::empty(), |_| 0u8);
        assert_eq!(o.runs(), 0);
        assert!(o.is_deterministic(), "vacuously deterministic");
    }
}
