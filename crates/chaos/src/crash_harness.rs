//! Process-level crash testing: re-execute the current test binary as a
//! child, SIGKILL it at a fault-injected point mid-protocol, and hand the
//! evidence back to the parent for recovery assertions.
//!
//! # Protocol
//!
//! A crash test is **one** `#[test]` function acting as the parent plus a
//! second `#[test]` function acting as the child workload:
//!
//! * The child test starts with [`child_role`]: in a normal test run it
//!   returns `None` and the test is a no-op; when re-executed by the
//!   harness it returns the scratch directory and the function runs the
//!   workload — printing one line to stdout for every event the parent
//!   must be able to trust (e.g. `ACK 7` after a durable increment).
//! * The parent builds a [`CrashScenario`] naming the child test and calls
//!   [`run`]: the harness re-executes the current binary with the libtest
//!   filter pinned to the child test, reads the child's stdout line by
//!   line, and delivers SIGKILL after a configured number of matching
//!   lines — mid-protocol by construction, since the child only prints
//!   between protocol steps.
//! * [`CrashReport::lines`] then contains every matching line the child
//!   managed to write before dying. Lines are read from a pipe the kernel
//!   owns, so everything the child printed (and nothing it didn't) is
//!   visible — the ground truth for "acked before the crash".
//!
//! The kill point is derived from the scenario's seed, so a CI matrix over
//! `MC_CHAOS_SEED` values (see [`seed_from_env`](crate::seed_from_env))
//! crashes the protocol at different depths.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Environment variable naming the child test the harness re-executed.
pub const CHILD_ENV: &str = "MC_CRASH_CHILD";
/// Environment variable carrying the scratch directory to the child.
pub const DIR_ENV: &str = "MC_CRASH_DIR";

/// One crash-test configuration: which child workload to run, where its
/// durable state lives, and when to kill it.
#[derive(Debug, Clone)]
pub struct CrashScenario {
    /// Name of the `#[test]` function (as libtest knows it, e.g.
    /// `"child_increments"`) that runs the child workload.
    pub child_test: &'static str,
    /// Scratch directory passed to the child via [`DIR_ENV`]; shared state
    /// the parent recovers after the kill.
    pub dir: PathBuf,
    /// Only stdout lines starting with this prefix count as protocol
    /// events (libtest banner noise is ignored).
    pub line_prefix: &'static str,
    /// SIGKILL the child after this many matching lines.
    pub kill_after_lines: u64,
    /// Abort the scenario (kill the child anyway) if the child produces no
    /// matching line for this long.
    pub timeout: Duration,
    /// Extra environment variables for the child (e.g. `MC_CHAOS_WAL=1` to
    /// arm torn-tail injection in the durability layer).
    pub env: Vec<(String, String)>,
}

impl CrashScenario {
    /// A scenario with the default 30s stall timeout and no extra
    /// environment, killing after `kill_after_lines` lines prefixed with
    /// `line_prefix`.
    pub fn new(
        child_test: &'static str,
        dir: impl Into<PathBuf>,
        line_prefix: &'static str,
        kill_after_lines: u64,
    ) -> Self {
        CrashScenario {
            child_test,
            dir: dir.into(),
            line_prefix,
            kill_after_lines,
            timeout: Duration::from_secs(30),
            env: Vec::new(),
        }
    }

    /// Adds an environment variable for the child process.
    pub fn with_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.env.push((key.into(), value.into()));
        self
    }
}

/// What the harness observed before (and while) killing the child.
#[derive(Debug)]
pub struct CrashReport {
    /// Every matching stdout line the child wrote before it died, in
    /// order — including lines that were still in the pipe when the kill
    /// landed. These are the events the child provably reached.
    pub lines: Vec<String>,
    /// `true` when the harness delivered the kill; `false` when the child
    /// exited on its own first (usually a child-side bug — assert on it).
    pub killed: bool,
}

/// Returns the scratch directory when the current process **is** the
/// re-executed child for `child_test`, `None` in a normal test run.
pub fn child_role(child_test: &str) -> Option<PathBuf> {
    if std::env::var(CHILD_ENV).as_deref() == Ok(child_test) {
        // libtest has printed `test <name> ... ` with no newline; terminate
        // that line so the child's first protocol line is not glued to the
        // banner (which would hide it from the parent's prefix match).
        println!();
        Some(PathBuf::from(
            std::env::var(DIR_ENV).expect("crash child must receive MC_CRASH_DIR"),
        ))
    } else {
        None
    }
}

/// Re-executes the current test binary as the scenario's child, SIGKILLs
/// it after the configured number of protocol lines, and returns the
/// evidence. See the module docs for the protocol.
///
/// # Errors
///
/// Propagates spawn/pipe I/O failures. A child that stalls past
/// `scenario.timeout` is killed and reported with `killed: true`.
pub fn run(scenario: &CrashScenario) -> std::io::Result<CrashReport> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.arg(scenario.child_test)
        .arg("--exact")
        .arg("--nocapture")
        .arg("--test-threads")
        .arg("1")
        .env(CHILD_ENV, scenario.child_test)
        .env(DIR_ENV, &scenario.dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .stdin(Stdio::null());
    for (k, v) in &scenario.env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn()?;
    let stdout = child.stdout.take().expect("stdout piped");

    // A reader thread decouples the blocking pipe read from the kill
    // decision, so a stalled child cannot wedge the harness.
    let (tx, rx) = mpsc::channel::<String>();
    let prefix = scenario.line_prefix.to_string();
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if line.starts_with(&prefix) && tx.send(line).is_err() {
                break;
            }
        }
    });

    let mut lines = Vec::new();
    let deadline = Instant::now() + scenario.timeout;
    let mut killed = false;
    while (lines.len() as u64) < scenario.kill_after_lines {
        let left = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(left) {
            Ok(line) => lines.push(line),
            // Disconnected: the child closed stdout (exited) early.
            // Timeout: the child stalled. Either way, stop waiting.
            Err(_) => break,
        }
    }
    if (lines.len() as u64) >= scenario.kill_after_lines || Instant::now() >= deadline {
        // SIGKILL on unix: no destructors, no flushes — a real crash.
        child.kill()?;
        killed = true;
    }
    let _ = child.wait()?;
    reader.join().expect("reader thread");
    // Drain lines that were already in the pipe when the kill landed: the
    // child printed them pre-crash, so they count as reached events.
    while let Ok(line) = rx.try_recv() {
        lines.push(line);
    }
    Ok(CrashReport { lines, killed })
}
