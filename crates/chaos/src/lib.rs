//! # Schedule perturbation for determinacy testing
//!
//! The paper's Section 6 claims hold **over all schedules**: a
//! counter-synchronized program with guarded shared variables produces the
//! same result in every execution. A test that runs the program a few times
//! under the default scheduler barely samples the schedule space; this crate
//! widens the sample by *perturbing* schedules deterministically from a
//! seed:
//!
//! * [`Chaos`] — a seeded jitter source; call [`Chaos::point`] at
//!   interesting program points to inject scheduler yields and short spins;
//! * [`ChaosCounter`] — any [`MonotonicCounter`](mc_counter::MonotonicCounter) wrapped so that every
//!   `increment`/`check` passes through perturbation points;
//! * [`explore`] — runs a program once per seed and collects the set of
//!   distinct outcomes, so a determinacy test is
//!   `explore(0..100, run).is_deterministic()`.
//!
//! Perturbation changes *timing only* — no operation is dropped or
//! reordered by the harness itself — so any outcome difference it exposes is
//! a genuine schedule sensitivity of the program under test.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//!
//! Beyond schedule perturbation, [`crash_harness`] widens the failure space
//! to whole-process death: it re-executes the test binary as a subprocess
//! and SIGKILLs it mid-protocol, for crash-recovery testing of the
//! durability layer.

//!
//! [`failpoints`] injects *IO faults* rather than schedule jitter: named,
//! seed-deterministic fault sites compiled into the durability layer's
//! syscall paths, configured via `MC_CHAOS_FAILPOINTS`, with [`torture`]
//! deriving replayable per-seed fault schedules over them.

mod counter;
pub mod crash_harness;
mod explore;
pub mod failpoints;
mod jitter;
pub mod skeleton;
pub mod torture;

pub use counter::ChaosCounter;
pub use crash_harness::{CrashReport, CrashScenario};
pub use explore::{explore, Outcomes};
pub use failpoints::{BufInjection, FailConfig, Failpoints, Trigger, FAILPOINTS_ENV};
pub use jitter::{seed_from_env, Chaos, ChaosConfig};
pub use skeleton::{
    confirm_param_witness, confirm_rejection, explore_skeleton, replay_schedule, run_random,
    ConfirmError, ConfirmedRejection, ReplayError, SkeletonOutcome,
};
