//! A counting semaphore (Dijkstra's P/V), built on `Mutex` + `Condvar`.
//!
//! The paper's Section 5.3 notes that the multiple-writers multiple-readers
//! bounded buffer "is elegantly solved using semaphores" while counters are
//! not suited to it — and conversely. This type exists so the workspace can
//! demonstrate both sides of that comparison.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A counting semaphore with [`acquire`](Semaphore::acquire) (P) and
/// [`release`](Semaphore::release) (V) operations.
///
/// # Example
///
/// ```
/// use mc_primitives::Semaphore;
/// let s = Semaphore::new(2);
/// s.acquire();
/// s.acquire();
/// assert!(!s.try_acquire()); // no permits left
/// s.release(1);
/// s.acquire();
/// ```
pub struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    /// Acquires one permit, suspending until one is available.
    pub fn acquire(&self) {
        let mut permits = self.permits.lock().expect("semaphore lock poisoned");
        while *permits == 0 {
            permits = self.cv.wait(permits).expect("semaphore lock poisoned");
        }
        *permits -= 1;
    }

    /// Acquires one permit without suspending; returns `false` if none was
    /// available.
    pub fn try_acquire(&self) -> bool {
        let mut permits = self.permits.lock().expect("semaphore lock poisoned");
        if *permits == 0 {
            return false;
        }
        *permits -= 1;
        true
    }

    /// Like [`acquire`](Semaphore::acquire) but gives up after `timeout`;
    /// returns `true` on success.
    pub fn acquire_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut permits = self.permits.lock().expect("semaphore lock poisoned");
        while *permits == 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(permits, deadline - now)
                .expect("semaphore lock poisoned");
            permits = guard;
        }
        *permits -= 1;
        true
    }

    /// Returns `n` permits, waking up to `n` suspended acquirers.
    pub fn release(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut permits = self.permits.lock().expect("semaphore lock poisoned");
        *permits = permits.checked_add(n).expect("semaphore permit overflow");
        drop(permits);
        if n == 1 {
            self.cv.notify_one();
        } else {
            self.cv.notify_all();
        }
    }

    /// Current number of available permits (diagnostics/tests only).
    pub fn available(&self) -> usize {
        *self.permits.lock().expect("semaphore lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn permits_are_consumed_and_restored() {
        let s = Semaphore::new(3);
        s.acquire();
        s.acquire();
        assert_eq!(s.available(), 1);
        s.release(2);
        assert_eq!(s.available(), 3);
    }

    #[test]
    fn try_acquire_does_not_block() {
        let s = Semaphore::new(1);
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
    }

    #[test]
    fn zero_release_is_noop() {
        let s = Semaphore::new(0);
        s.release(0);
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn acquire_blocks_until_release() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let h = thread::spawn(move || s2.acquire());
        thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished());
        s.release(1);
        h.join().unwrap();
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn acquire_timeout_expires() {
        let s = Semaphore::new(0);
        assert!(!s.acquire_timeout(Duration::from_millis(20)));
    }

    #[test]
    fn release_many_wakes_many() {
        let s = Arc::new(Semaphore::new(0));
        let mut handles = Vec::new();
        for _ in 0..5 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || s.acquire()));
        }
        thread::sleep(Duration::from_millis(30));
        s.release(5);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn bounded_buffer_discipline() {
        // The classic use: producers acquire `empty`, consumers acquire
        // `full`. 2 producers, 2 consumers, 100 items each.
        let empty = Arc::new(Semaphore::new(4));
        let full = Arc::new(Semaphore::new(0));
        let buf = Arc::new(Mutex::new(Vec::new()));
        let produced = 200;
        thread::scope(|s| {
            for p in 0..2 {
                let (empty, full, buf) = (Arc::clone(&empty), Arc::clone(&full), Arc::clone(&buf));
                s.spawn(move || {
                    for i in 0..100 {
                        empty.acquire();
                        buf.lock().unwrap().push(p * 1000 + i);
                        full.release(1);
                    }
                });
            }
            for _ in 0..2 {
                let (empty, full, buf) = (Arc::clone(&empty), Arc::clone(&full), Arc::clone(&buf));
                s.spawn(move || {
                    for _ in 0..100 {
                        full.acquire();
                        buf.lock().unwrap().pop().unwrap();
                        empty.release(1);
                    }
                });
            }
        });
        assert!(buf.lock().unwrap().is_empty());
        assert_eq!(empty.available(), 4);
        assert_eq!(full.available(), 0);
        let _ = produced;
    }
}
