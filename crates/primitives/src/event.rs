//! A manual-reset event: the `Condition` type of the paper's Section 4.4.
//!
//! `ShortestPaths3` uses an array `Condition kDone[N]` where `kDone[k].Set()`
//! announces that row `k` is ready and `kDone[k].Check()` waits for it. A
//! counter replaces the whole array (Section 4.5); this type exists as the
//! faithful baseline.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A one-way, manual-reset boolean flag with a suspension queue.
///
/// Once [`set`](Event::set), every current and future
/// [`check`](Event::check) returns immediately until [`reset`](Event::reset)
/// is called. Like the paper's `Condition`, setting is idempotent.
///
/// # Example
///
/// ```
/// use mc_primitives::Event;
/// let e = Event::new();
/// e.set();
/// e.check(); // does not block
/// ```
pub struct Event {
    set: Mutex<bool>,
    cv: Condvar,
}

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

impl Event {
    /// Creates an event in the unset state.
    pub fn new() -> Self {
        Event {
            set: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Sets the event, waking every waiting thread. Idempotent.
    pub fn set(&self) {
        let mut set = self.set.lock().expect("event lock poisoned");
        if !*set {
            *set = true;
            self.cv.notify_all();
        }
    }

    /// Clears the event.
    ///
    /// Unlike a counter, an event is **not** monotonic: a `reset` racing with
    /// `check` reintroduces exactly the kind of timing-dependent behaviour
    /// the paper's Section 6 warns about. Takes `&mut self` so that safe code
    /// cannot race it against concurrent `set`/`check`.
    pub fn reset(&mut self) {
        *self.set.get_mut().expect("event lock poisoned") = false;
    }

    /// Suspends the calling thread until the event is set.
    pub fn check(&self) {
        let mut set = self.set.lock().expect("event lock poisoned");
        while !*set {
            set = self.cv.wait(set).expect("event lock poisoned");
        }
    }

    /// Like [`check`](Event::check) but gives up after `timeout`; returns
    /// `true` if the event was set in time.
    pub fn check_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut set = self.set.lock().expect("event lock poisoned");
        while !*set {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(set, deadline - now)
                .expect("event lock poisoned");
            set = guard;
        }
        true
    }

    /// Whether the event is currently set (diagnostics/tests only — racing a
    /// probe against `set` is precisely the nondeterminism counters avoid).
    pub fn is_set(&self) -> bool {
        *self.set.lock().expect("event lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn starts_unset() {
        assert!(!Event::new().is_set());
    }

    #[test]
    fn set_is_idempotent_and_latches() {
        let e = Event::new();
        e.set();
        e.set();
        assert!(e.is_set());
        e.check(); // must not block
    }

    #[test]
    fn check_blocks_until_set() {
        let e = Arc::new(Event::new());
        let e2 = Arc::clone(&e);
        let h = thread::spawn(move || e2.check());
        thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished());
        e.set();
        h.join().unwrap();
    }

    #[test]
    fn set_wakes_all_waiters() {
        let e = Arc::new(Event::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let e = Arc::clone(&e);
            handles.push(thread::spawn(move || e.check()));
        }
        thread::sleep(Duration::from_millis(30));
        e.set();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn check_timeout_expires_when_unset() {
        let e = Event::new();
        assert!(!e.check_timeout(Duration::from_millis(20)));
    }

    #[test]
    fn check_timeout_succeeds_when_set() {
        let e = Event::new();
        e.set();
        assert!(e.check_timeout(Duration::from_millis(20)));
    }

    #[test]
    fn reset_clears() {
        let mut e = Event::new();
        e.set();
        e.reset();
        assert!(!e.is_set());
        assert!(!e.check_timeout(Duration::from_millis(10)));
    }
}
