//! A two-party rendezvous / exchanger (paper Section 8's related work: Ada
//! rendezvous is the canonical statically-bounded-queue mechanism).
//!
//! Two threads meet and swap values; neither proceeds until both have
//! arrived — synchronization *and* communication in one operation.

use std::sync::{Condvar, Mutex};

enum Slot<T> {
    /// Nobody waiting.
    Empty,
    /// One party deposited its value and waits.
    First(T),
    /// The second party took the first value and left its own for the first.
    Second(T),
}

/// A reusable two-party exchanger: every pair of
/// [`exchange`](Exchanger::exchange) calls meets and swaps values.
///
/// # Example
///
/// ```
/// use mc_primitives::Exchanger;
/// use std::sync::Arc;
///
/// let x = Arc::new(Exchanger::new());
/// let x2 = Arc::clone(&x);
/// let t = std::thread::spawn(move || x2.exchange("ping"));
/// assert_eq!(x.exchange("pong"), "ping");
/// assert_eq!(t.join().unwrap(), "pong");
/// ```
pub struct Exchanger<T> {
    slot: Mutex<Slot<T>>,
    cv: Condvar,
}

impl<T> Default for Exchanger<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Exchanger<T> {
    /// Creates an empty exchanger.
    pub fn new() -> Self {
        Exchanger {
            slot: Mutex::new(Slot::Empty),
            cv: Condvar::new(),
        }
    }

    /// Meets another `exchange` call and swaps values, suspending until a
    /// partner arrives.
    pub fn exchange(&self, value: T) -> T {
        let mut slot = self.slot.lock().expect("exchanger lock poisoned");
        loop {
            match &mut *slot {
                Slot::Empty => {
                    // First arrival: deposit and wait for the partner's value.
                    *slot = Slot::First(value);
                    loop {
                        slot = self.cv.wait(slot).expect("exchanger lock poisoned");
                        if matches!(&*slot, Slot::Second(_)) {
                            let Slot::Second(theirs) = std::mem::replace(&mut *slot, Slot::Empty)
                            else {
                                unreachable!("matched Second above");
                            };
                            // The slot is free again for the next pair.
                            self.cv.notify_all();
                            return theirs;
                        }
                    }
                }
                Slot::First(_) => {
                    // Second arrival: take the partner's value, leave ours.
                    let Slot::First(theirs) = std::mem::replace(&mut *slot, Slot::Second(value))
                    else {
                        unreachable!("matched First above");
                    };
                    self.cv.notify_all();
                    return theirs;
                }
                Slot::Second(_) => {
                    // A pair is mid-handoff; wait for the slot to clear.
                    slot = self.cv.wait(slot).expect("exchanger lock poisoned");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn two_threads_swap() {
        let x = Arc::new(Exchanger::new());
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.exchange(1));
        assert_eq!(x.exchange(2), 1);
        assert_eq!(t.join().unwrap(), 2);
    }

    #[test]
    fn exchanger_is_reusable() {
        let x = Arc::new(Exchanger::new());
        for round in 0..10 {
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || x2.exchange(round * 2));
            let got = x.exchange(round * 2 + 1);
            assert_eq!(got, round * 2);
            assert_eq!(t.join().unwrap(), round * 2 + 1);
        }
    }

    #[test]
    fn many_threads_pair_up_losslessly() {
        // 2N threads exchange distinct values: the multiset of outputs must
        // equal the multiset of inputs, and no thread gets its own value's
        // pair twice.
        let n = 16;
        let x = Arc::new(Exchanger::new());
        let mut handles = Vec::new();
        for i in 0..2 * n {
            let x = Arc::clone(&x);
            handles.push(thread::spawn(move || x.exchange(i)));
        }
        let mut outputs: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        outputs.sort_unstable();
        assert_eq!(outputs, (0..2 * n).collect::<Vec<_>>());
    }

    #[test]
    fn exchange_blocks_without_partner() {
        let x = Arc::new(Exchanger::new());
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.exchange(5));
        thread::sleep(std::time::Duration::from_millis(30));
        assert!(!t.is_finished(), "exchange returned without a partner");
        x.exchange(6);
        t.join().unwrap();
    }
}
