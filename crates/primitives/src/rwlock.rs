//! A readers–writer lock built from scratch on `Mutex` + `Condvar`.
//!
//! Completes the workspace's from-scratch set of traditional mechanisms
//! (the paper's Section 1 list opens with "locks"). Writer-preferring: once
//! a writer is waiting, new readers queue behind it, so writers cannot
//! starve.

use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct State {
    /// Active readers.
    readers: usize,
    /// Whether a writer holds the lock.
    writer: bool,
    /// Writers waiting (gates new readers: writer preference).
    waiting_writers: usize,
}

/// A writer-preferring readers–writer lock with closure-scoped access.
///
/// Like [`SpinLock`](crate::SpinLock), it protects no data of its own
/// (staying in entirely safe Rust); use the closure API with your own shared
/// state, or the raw `lock_*`/`unlock_*` pairs for paper-literal call sites.
///
/// # Example
///
/// ```
/// use mc_primitives::RwLock;
/// let l = RwLock::new();
/// let r = l.read(|| 21 * 2);
/// assert_eq!(r, 42);
/// l.write(|| { /* exclusive section */ });
/// ```
#[derive(Debug, Default)]
pub struct RwLock {
    state: Mutex<State>,
    cv: Condvar,
}

impl RwLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        RwLock::default()
    }

    /// Acquires shared (read) access.
    pub fn lock_read(&self) {
        let mut s = self.state.lock().expect("rwlock poisoned");
        while s.writer || s.waiting_writers > 0 {
            s = self.cv.wait(s).expect("rwlock poisoned");
        }
        s.readers += 1;
    }

    /// Releases shared access.
    pub fn unlock_read(&self) {
        let mut s = self.state.lock().expect("rwlock poisoned");
        debug_assert!(s.readers > 0, "unlock_read without lock_read");
        s.readers -= 1;
        if s.readers == 0 {
            drop(s);
            self.cv.notify_all();
        }
    }

    /// Acquires exclusive (write) access.
    pub fn lock_write(&self) {
        let mut s = self.state.lock().expect("rwlock poisoned");
        s.waiting_writers += 1;
        while s.writer || s.readers > 0 {
            s = self.cv.wait(s).expect("rwlock poisoned");
        }
        s.waiting_writers -= 1;
        s.writer = true;
    }

    /// Releases exclusive access.
    pub fn unlock_write(&self) {
        let mut s = self.state.lock().expect("rwlock poisoned");
        debug_assert!(s.writer, "unlock_write without lock_write");
        s.writer = false;
        drop(s);
        self.cv.notify_all();
    }

    /// Runs `f` with shared access (released on panic too).
    pub fn read<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock_read();
        struct Guard<'a>(&'a RwLock);
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.0.unlock_read();
            }
        }
        let _g = Guard(self);
        f()
    }

    /// Runs `f` with exclusive access (released on panic too).
    pub fn write<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock_write();
        struct Guard<'a>(&'a RwLock);
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.0.unlock_write();
            }
        }
        let _g = Guard(self);
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn readers_share() {
        let l = Arc::new(RwLock::new());
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..4 {
                let (l, active, peak) = (Arc::clone(&l), Arc::clone(&active), Arc::clone(&peak));
                s.spawn(move || {
                    l.read(|| {
                        let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        thread::sleep(Duration::from_millis(20));
                        active.fetch_sub(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) > 1, "readers never overlapped");
    }

    #[test]
    fn writers_exclude_everyone() {
        let l = Arc::new(RwLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..4 {
                let (l, counter) = (Arc::clone(&l), Arc::clone(&counter));
                s.spawn(move || {
                    for _ in 0..500 {
                        l.write(|| {
                            let v = counter.load(Ordering::Relaxed);
                            counter.store(v + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn writer_blocks_while_reader_active() {
        let l = Arc::new(RwLock::new());
        l.lock_read();
        let l2 = Arc::clone(&l);
        let w = thread::spawn(move || l2.write(|| "wrote"));
        thread::sleep(Duration::from_millis(30));
        assert!(!w.is_finished(), "writer entered during read");
        l.unlock_read();
        assert_eq!(w.join().unwrap(), "wrote");
    }

    #[test]
    fn waiting_writer_gates_new_readers() {
        let l = Arc::new(RwLock::new());
        l.lock_read();
        // A writer queues.
        let lw = Arc::clone(&l);
        let w = thread::spawn(move || lw.write(|| ()));
        thread::sleep(Duration::from_millis(20));
        // A new reader must now wait behind the writer.
        let lr = Arc::clone(&l);
        let r = thread::spawn(move || lr.read(|| ()));
        thread::sleep(Duration::from_millis(20));
        assert!(!r.is_finished(), "reader jumped the waiting writer");
        l.unlock_read();
        w.join().unwrap();
        r.join().unwrap();
    }

    #[test]
    fn panic_releases_lock() {
        let l = RwLock::new();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            l.write(|| panic!("boom"));
        }));
        l.write(|| ()); // must not deadlock
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            l.read(|| panic!("boom"));
        }));
        l.write(|| ());
    }
}
