//! A write-once "sync variable" (single-assignment variable).
//!
//! The paper's Section 8 traces counters' lineage to the single-assignment
//! variables of dataflow and concurrent-logic languages (Val, Sisal, PCN,
//! CC++, Strand). A single-assignment variable couples *one* synchronization
//! event with *one* datum; a counter separates synchronization from data and
//! supports many levels — this type exists to make that comparison concrete.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A variable that can be assigned exactly once; readers suspend until it is.
///
/// # Example
///
/// ```
/// use mc_primitives::SingleAssignment;
/// let v = SingleAssignment::new();
/// v.set(42).unwrap();
/// assert_eq!(v.get(), 42);
/// assert!(v.set(7).is_err()); // second assignment rejected
/// ```
pub struct SingleAssignment<T> {
    slot: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T> Default for SingleAssignment<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SingleAssignment<T> {
    /// Creates an unassigned variable.
    pub fn new() -> Self {
        SingleAssignment {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Assigns the value, waking all suspended readers. Returns the value
    /// back in `Err` if the variable was already assigned.
    pub fn set(&self, value: T) -> Result<(), T> {
        let mut slot = self.slot.lock().expect("single-assignment lock poisoned");
        if slot.is_some() {
            return Err(value);
        }
        *slot = Some(value);
        self.cv.notify_all();
        Ok(())
    }

    /// Suspends until the variable is assigned, then applies `f` to the value.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let mut slot = self.slot.lock().expect("single-assignment lock poisoned");
        while slot.is_none() {
            slot = self.cv.wait(slot).expect("single-assignment lock poisoned");
        }
        f(slot.as_ref().expect("slot checked non-empty"))
    }

    /// Whether the variable has been assigned (diagnostics/tests only).
    pub fn is_set(&self) -> bool {
        self.slot
            .lock()
            .expect("single-assignment lock poisoned")
            .is_some()
    }

    /// Like [`with`](SingleAssignment::with) but gives up after `timeout`.
    pub fn with_timeout<R>(&self, timeout: Duration, f: impl FnOnce(&T) -> R) -> Option<R> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.slot.lock().expect("single-assignment lock poisoned");
        while slot.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(slot, deadline - now)
                .expect("single-assignment lock poisoned");
            slot = guard;
        }
        Some(f(slot.as_ref().expect("slot checked non-empty")))
    }
}

impl<T: Clone> SingleAssignment<T> {
    /// Suspends until the variable is assigned and returns a clone of it.
    pub fn get(&self) -> T {
        self.with(T::clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn set_then_get() {
        let v = SingleAssignment::new();
        v.set("hello").unwrap();
        assert_eq!(v.get(), "hello");
        assert!(v.is_set());
    }

    #[test]
    fn double_set_returns_value() {
        let v = SingleAssignment::new();
        v.set(1).unwrap();
        assert_eq!(v.set(2), Err(2));
        assert_eq!(v.get(), 1);
    }

    #[test]
    fn get_blocks_until_set() {
        let v = Arc::new(SingleAssignment::new());
        let v2 = Arc::clone(&v);
        let h = thread::spawn(move || v2.get());
        thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished());
        v.set(99).unwrap();
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn with_reads_by_reference() {
        let v: SingleAssignment<Vec<u32>> = SingleAssignment::new();
        v.set(vec![1, 2, 3]).unwrap();
        let sum = v.with(|xs| xs.iter().sum::<u32>());
        assert_eq!(sum, 6);
    }

    #[test]
    fn with_timeout_expires_when_unset() {
        let v: SingleAssignment<u32> = SingleAssignment::new();
        assert_eq!(v.with_timeout(Duration::from_millis(20), |x| *x), None);
    }

    #[test]
    fn many_readers_one_writer() {
        let v = Arc::new(SingleAssignment::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let v = Arc::clone(&v);
            handles.push(thread::spawn(move || v.get()));
        }
        thread::sleep(Duration::from_millis(20));
        v.set(7u32).unwrap();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
    }
}
