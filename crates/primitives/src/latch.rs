//! A single-use count-down latch.
//!
//! A latch is the closest *traditional* relative of a monotonic counter: it
//! counts down to zero once and releases everyone. The comparison is
//! instructive — a latch supports exactly **one** level (zero) and one
//! suspension queue, where a counter supports any number of levels
//! simultaneously. `java.util.concurrent.CountDownLatch` is the well-known
//! embodiment.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A one-shot latch initialized with a count; [`wait`](Latch::wait) suspends
/// until the count reaches zero.
///
/// # Example
///
/// ```
/// use mc_primitives::Latch;
/// let l = Latch::new(2);
/// l.count_down();
/// l.count_down();
/// l.wait(); // returns immediately: count is zero
/// ```
pub struct Latch {
    count: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    /// Creates a latch that opens after `count` calls to
    /// [`count_down`](Latch::count_down). A zero count starts open.
    pub fn new(count: usize) -> Self {
        Latch {
            count: Mutex::new(count),
            cv: Condvar::new(),
        }
    }

    /// Decrements the count, waking all waiters when it reaches zero.
    /// Counting down an already-open latch is a no-op.
    pub fn count_down(&self) {
        let mut count = self.count.lock().expect("latch lock poisoned");
        match *count {
            0 => {}
            1 => {
                *count = 0;
                self.cv.notify_all();
            }
            _ => *count -= 1,
        }
    }

    /// Suspends until the count reaches zero.
    pub fn wait(&self) {
        let mut count = self.count.lock().expect("latch lock poisoned");
        while *count > 0 {
            count = self.cv.wait(count).expect("latch lock poisoned");
        }
    }

    /// Like [`wait`](Latch::wait) but gives up after `timeout`; returns
    /// `true` if the latch opened in time.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut count = self.count.lock().expect("latch lock poisoned");
        while *count > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(count, deadline - now)
                .expect("latch lock poisoned");
            count = guard;
        }
        true
    }

    /// Remaining count (diagnostics/tests only).
    pub fn remaining(&self) -> usize {
        *self.count.lock().expect("latch lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn zero_latch_starts_open() {
        let l = Latch::new(0);
        l.wait();
        l.count_down(); // no-op, no underflow
        assert_eq!(l.remaining(), 0);
    }

    #[test]
    fn opens_exactly_at_zero() {
        let l = Arc::new(Latch::new(3));
        let l2 = Arc::clone(&l);
        let h = thread::spawn(move || l2.wait());
        l.count_down();
        l.count_down();
        thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished(), "latch opened early");
        l.count_down();
        h.join().unwrap();
    }

    #[test]
    fn wait_timeout_expires_on_closed_latch() {
        let l = Latch::new(1);
        assert!(!l.wait_timeout(Duration::from_millis(20)));
    }

    #[test]
    fn wait_timeout_succeeds_on_open_latch() {
        let l = Latch::new(0);
        assert!(l.wait_timeout(Duration::from_millis(20)));
    }

    #[test]
    fn many_waiters_released_together() {
        let l = Arc::new(Latch::new(1));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let l = Arc::clone(&l);
            handles.push(thread::spawn(move || l.wait()));
        }
        thread::sleep(Duration::from_millis(30));
        l.count_down();
        for h in handles {
            h.join().unwrap();
        }
    }
}
