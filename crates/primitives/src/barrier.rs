//! A cyclic N-way barrier with a `pass()` operation.
//!
//! This is the `Barrier b(numThreads); ... b.Pass();` object of the paper's
//! Sections 4.3 and 5.1: all `n` participants must arrive before any may
//! continue, and the barrier is immediately reusable for the next round.

use std::sync::{Condvar, Mutex};

struct Inner {
    /// Threads that have arrived in the current round.
    arrived: usize,
    /// Round number; incremented when a round completes. Waiting on the
    /// generation (instead of on the count) makes the barrier immune to the
    /// classic reuse race where a fast thread re-enters the next round before
    /// slow threads have observed the current one completing.
    generation: u64,
}

/// A reusable N-way barrier.
///
/// # Example
///
/// ```
/// use mc_primitives::Barrier;
/// use std::sync::Arc;
///
/// let n = 4;
/// let b = Arc::new(Barrier::new(n));
/// std::thread::scope(|s| {
///     for _ in 0..n {
///         let b = Arc::clone(&b);
///         s.spawn(move || {
///             // phase 1 work ...
///             b.pass();
///             // phase 2 work: no thread gets here until all finished phase 1
///         });
///     }
/// });
/// ```
pub struct Barrier {
    n: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Barrier {
    /// Creates a barrier for `n` participating threads.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier must have at least one participant");
        Barrier {
            n,
            inner: Mutex::new(Inner {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Blocks until all `n` participants have called `pass()` for the current
    /// round, then releases them all. Returns `true` for exactly one thread
    /// per round (the last arriver), mirroring `std::sync::Barrier`'s leader
    /// convention.
    pub fn pass(&self) -> bool {
        let mut inner = self.inner.lock().expect("barrier lock poisoned");
        inner.arrived += 1;
        if inner.arrived == self.n {
            inner.arrived = 0;
            inner.generation = inner.generation.wrapping_add(1);
            self.cv.notify_all();
            return true;
        }
        let my_generation = inner.generation;
        while inner.generation == my_generation {
            inner = self.cv.wait(inner).expect("barrier lock poisoned");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        Barrier::new(0);
    }

    #[test]
    fn single_participant_never_blocks() {
        let b = Barrier::new(1);
        for _ in 0..10 {
            assert!(b.pass(), "sole participant is always the leader");
        }
    }

    #[test]
    fn no_thread_passes_until_all_arrive() {
        let n = 4;
        let b = Arc::new(Barrier::new(n));
        let before = Arc::new(AtomicUsize::new(0));
        let after = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..n - 1 {
            let (b, before, after) = (Arc::clone(&b), Arc::clone(&before), Arc::clone(&after));
            handles.push(thread::spawn(move || {
                before.fetch_add(1, Ordering::SeqCst);
                b.pass();
                after.fetch_add(1, Ordering::SeqCst);
            }));
        }
        while before.load(Ordering::SeqCst) < n - 1 {
            thread::yield_now();
        }
        thread::sleep(Duration::from_millis(30));
        assert_eq!(after.load(Ordering::SeqCst), 0, "a thread passed early");
        b.pass();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(after.load(Ordering::SeqCst), n - 1);
    }

    #[test]
    fn exactly_one_leader_per_round() {
        let n = 6;
        let rounds = 25;
        let b = Arc::new(Barrier::new(n));
        let leaders = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..n {
                let (b, leaders) = (Arc::clone(&b), Arc::clone(&leaders));
                s.spawn(move || {
                    for _ in 0..rounds {
                        if b.pass() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), rounds);
    }

    #[test]
    fn reuse_across_many_rounds_keeps_phases_aligned() {
        // Lock-step phase counter: in each round every thread increments a
        // shared phase tally; after the barrier the tally must be exactly
        // n * round for every thread, or the barrier leaked someone early.
        let n = 4;
        let rounds = 100;
        let b = Arc::new(Barrier::new(n));
        let tally = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..n {
                let (b, tally) = (Arc::clone(&b), Arc::clone(&tally));
                s.spawn(move || {
                    for round in 1..=rounds {
                        tally.fetch_add(1, Ordering::SeqCst);
                        b.pass();
                        let seen = tally.load(Ordering::SeqCst);
                        assert!(
                            seen >= n * round,
                            "round {round}: saw tally {seen} < {}",
                            n * round
                        );
                        b.pass(); // second barrier so nobody races into round+1
                    }
                });
            }
        });
        assert_eq!(tally.load(Ordering::SeqCst), n * rounds);
    }

    #[test]
    fn participants_accessor() {
        assert_eq!(Barrier::new(7).participants(), 7);
    }
}
