//! # Traditional synchronization primitives
//!
//! The mechanisms the paper (Thornley & Chandy, IPPS 2000) positions
//! monotonic counters against, each built from scratch on
//! `std::sync::{Mutex, Condvar}` and atomics:
//!
//! * [`Barrier`] — N-way cyclic barrier with a `pass()` operation, as used by
//!   `ShortestPaths2` (Section 4.3) and the boundary-exchange simulation
//!   (Section 5.1).
//! * [`Event`] — a manual-reset condition flag with `set()`/`check()`, the
//!   `Condition` type of `ShortestPaths3` (Section 4.4).
//! * [`Semaphore`] — counting semaphore (Dijkstra), the classic
//!   bounded-buffer mechanism the paper contrasts with broadcast (Section 5.3).
//! * [`Latch`] — single-use count-down latch.
//! * [`SingleAssignment`] — a write-once "sync variable" as in CC++/PCN
//!   (Section 8 related work).
//! * [`SpinLock`] — a raw test-and-test-and-set lock, used as the
//!   mutual-exclusion baseline of Section 5.2.
//! * [`RwLock`] — a writer-preferring readers–writer lock.
//! * [`Monitor`] — a Hoare-style predicate monitor (Section 8 related work).
//! * [`Exchanger`] — a two-party rendezvous (Section 8 related work: Ada's
//!   rendezvous is the canonical statically-bounded-queue mechanism).
//!
//! Every primitive here has exactly **one** thread suspension queue (or none);
//! the point of the paper — and of the experiments in this workspace — is
//! that a single counter replaces arrays of these objects because it maintains
//! a *dynamically varying number* of suspension queues.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod barrier;
mod event;
mod latch;
mod monitor;
mod rendezvous;
mod rwlock;
mod semaphore;
mod single_assignment;
mod spinlock;

pub use barrier::Barrier;
pub use event::Event;
pub use latch::Latch;
pub use monitor::Monitor;
pub use rendezvous::Exchanger;
pub use rwlock::RwLock;
pub use semaphore::Semaphore;
pub use single_assignment::SingleAssignment;
pub use spinlock::SpinLock;
