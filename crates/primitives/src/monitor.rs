//! A Hoare-style monitor (paper Section 8's related work).
//!
//! The paper classifies monitors among mechanisms with a *statically bounded*
//! number of suspension queues; this minimal monitor has exactly one. It
//! packages the state + mutex + condition-variable idiom behind predicates:
//! `when(pred, f)` suspends until `pred` holds for the protected state, runs
//! `f` atomically, and signals other waiters.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A predicate-based monitor protecting a value of type `T`.
///
/// # Example
///
/// ```
/// use mc_primitives::Monitor;
/// use std::sync::Arc;
///
/// let m = Arc::new(Monitor::new(0u32));
/// let m2 = Arc::clone(&m);
/// let t = std::thread::spawn(move || m2.when(|v| *v >= 2, |v| *v * 10));
/// m.update(|v| *v += 1);
/// m.update(|v| *v += 1);
/// assert_eq!(t.join().unwrap(), 20);
/// ```
pub struct Monitor<T> {
    state: Mutex<T>,
    cv: Condvar,
}

impl<T> Monitor<T> {
    /// Creates a monitor protecting `initial`.
    pub fn new(initial: T) -> Self {
        Monitor {
            state: Mutex::new(initial),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, T> {
        self.state.lock().expect("monitor lock poisoned")
    }

    /// Runs `f` on the state under the monitor lock and wakes all waiters
    /// (their predicates may now hold).
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut state = self.lock();
        let r = f(&mut state);
        drop(state);
        self.cv.notify_all();
        r
    }

    /// Reads the state under the lock without signalling.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.lock())
    }

    /// Suspends until `pred(&state)` holds, then runs `f` atomically (still
    /// under the lock) and wakes all waiters.
    pub fn when<R>(&self, pred: impl Fn(&T) -> bool, f: impl FnOnce(&mut T) -> R) -> R {
        let mut state = self.lock();
        while !pred(&state) {
            state = self.cv.wait(state).expect("monitor lock poisoned");
        }
        let r = f(&mut state);
        drop(state);
        self.cv.notify_all();
        r
    }

    /// Like [`when`](Monitor::when) with a timeout; `None` on expiry.
    pub fn when_timeout<R>(
        &self,
        timeout: Duration,
        pred: impl Fn(&T) -> bool,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        while !pred(&state) {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(state, deadline - now)
                .expect("monitor lock poisoned");
            state = guard;
        }
        let r = f(&mut state);
        drop(state);
        self.cv.notify_all();
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn update_and_read() {
        let m = Monitor::new(vec![1, 2]);
        m.update(|v| v.push(3));
        assert_eq!(m.read(|v| v.len()), 3);
    }

    #[test]
    fn when_waits_for_predicate() {
        let m = Arc::new(Monitor::new(0u32));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || m2.when(|v| *v == 3, |v| *v + 100));
        for _ in 0..3 {
            thread::sleep(Duration::from_millis(5));
            m.update(|v| *v += 1);
        }
        assert_eq!(t.join().unwrap(), 103);
    }

    #[test]
    fn when_timeout_expires() {
        let m = Monitor::new(false);
        assert_eq!(
            m.when_timeout(Duration::from_millis(20), |v| *v, |_| 1),
            None
        );
    }

    #[test]
    fn when_timeout_succeeds_when_satisfied() {
        let m = Monitor::new(true);
        assert_eq!(
            m.when_timeout(Duration::from_millis(20), |v| *v, |_| 1),
            Some(1)
        );
    }

    #[test]
    fn bounded_buffer_with_monitor() {
        // The textbook monitor example.
        let m = Arc::new(Monitor::new(Vec::<u32>::new()));
        let cap = 3;
        let total = 100;
        thread::scope(|s| {
            let prod = Arc::clone(&m);
            s.spawn(move || {
                for i in 0..total {
                    prod.when(|buf| buf.len() < cap, |buf| buf.push(i));
                }
            });
            let cons = Arc::clone(&m);
            s.spawn(move || {
                for expected in 0..total {
                    let got = cons.when(|buf| !buf.is_empty(), |buf| buf.remove(0));
                    assert_eq!(got, expected);
                }
            });
        });
        assert_eq!(m.read(Vec::len), 0);
    }
}
