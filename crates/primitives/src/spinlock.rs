//! A raw test-and-test-and-set spin lock.
//!
//! The mutual-exclusion baseline for the paper's Section 5.2 comparison
//! (`resultLock.Lock(); ...; resultLock.Unlock();`). Exposed as a raw
//! lock/unlock pair plus a closure-scoped [`with`](SpinLock::with); it
//! protects no data of its own, so it stays entirely in safe Rust.

use std::sync::atomic::{AtomicBool, Ordering};

/// A raw spin lock. Prefer [`with`](SpinLock::with), which cannot leak the
/// lock; `lock`/`unlock` exist for call sites that need the paper's explicit
/// pairing.
///
/// # Example
///
/// ```
/// use mc_primitives::SpinLock;
/// let l = SpinLock::new();
/// let out = l.with(|| 2 + 2);
/// assert_eq!(out, 4);
/// ```
#[derive(Debug, Default)]
pub struct SpinLock {
    locked: AtomicBool,
}

impl SpinLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Acquires the lock, spinning until it is free.
    ///
    /// Test-and-test-and-set: spin on a plain load (cache-friendly) and only
    /// attempt the read-modify-write when the lock looks free.
    pub fn lock(&self) {
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            while self.locked.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
    }

    /// Attempts to acquire the lock without spinning; returns `true` on
    /// success.
    pub fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Releases the lock.
    ///
    /// Calling `unlock` without holding the lock is a logic error (it frees
    /// the lock out from under the holder) but is not memory-unsafe, since
    /// the lock guards no data of its own.
    pub fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    /// Runs `f` with the lock held.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock();
        // Release the lock even if `f` panics, so other threads are not
        // stranded; the panic then propagates.
        struct Unlock<'a>(&'a SpinLock);
        impl Drop for Unlock<'_> {
            fn drop(&mut self) {
                self.0.unlock();
            }
        }
        let _guard = Unlock(self);
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_unlock_round_trip() {
        let l = SpinLock::new();
        l.lock();
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn with_provides_mutual_exclusion() {
        // A non-atomic-looking read-modify-write under the lock must never
        // lose updates.
        let l = Arc::new(SpinLock::new());
        let shared = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        let iters = 1000;
        thread::scope(|s| {
            for _ in 0..threads {
                let (l, shared) = (Arc::clone(&l), Arc::clone(&shared));
                s.spawn(move || {
                    for _ in 0..iters {
                        l.with(|| {
                            let v = shared.load(Ordering::Relaxed);
                            shared.store(v + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(shared.load(Ordering::Relaxed), threads * iters);
    }

    #[test]
    fn with_unlocks_on_panic() {
        let l = SpinLock::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            l.with(|| panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(l.try_lock(), "lock must be free after a panicking section");
        l.unlock();
    }

    #[test]
    fn with_returns_value() {
        let l = SpinLock::new();
        assert_eq!(l.with(|| "ok"), "ok");
    }
}
