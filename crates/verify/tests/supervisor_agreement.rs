//! The supervisor's *dynamic* stall diagnosis must agree with the *static*
//! deadlock verdict on the same skeleton.
//!
//! `run_concrete` executes a skeleton on real `Counter`s with no upfront
//! obligations and waits for quiescence; by monotonicity the quiescent state
//! is exactly the static greedy fixpoint. At that point:
//!
//! * statically complete  ⇒ every thread finished and every counter `Idle`;
//! * statically stuck     ⇒ the blocked threads match, each blocking counter
//!   is diagnosed `NeverSatisfiable`, and — crucially — *nothing* is
//!   diagnosed `Slow`: a quiescent stall is never misread as slowness.

use std::time::Duration;

use mc_counter::StallVerdict;
use mc_verify::concrete::run_concrete;
use mc_verify::{all_mutations, greedy_cut, models, verify, Verdict};

const TIMEOUT: Duration = Duration::from_secs(30);

#[test]
fn complete_models_finish_idle() {
    for (name, sk) in models::corpus() {
        assert!(verify(&sk).is_certified(), "{name} should certify");
        let run = run_concrete(&sk, TIMEOUT);
        assert!(run.completed, "{name}: concrete run should complete");
        assert_eq!(run.blocked_threads, 0, "{name}");
        for cr in &run.report.counters {
            assert_eq!(
                cr.verdict,
                StallVerdict::Idle,
                "{name}: counter {} not idle at completion",
                cr.name
            );
        }
    }
}

#[test]
fn statically_stuck_mutants_are_diagnosed_never_satisfiable() {
    let mut exercised = 0usize;
    for (name, sk) in models::corpus() {
        // Concrete runs spawn real threads and poll for quiescence; a few
        // deadlocking mutants per model keep the test fast while covering
        // every model's counter topology.
        let mut per_model = 0usize;
        for m in all_mutations(&sk) {
            if per_model == 3 {
                break;
            }
            let mutant = m.apply(&sk);
            let Verdict::Rejected(rej) = verify(&mutant) else {
                continue;
            };
            let Some(dl) = &rej.deadlock else {
                continue;
            };
            per_model += 1;
            exercised += 1;
            let label = format!("{name} + {}", m.describe(&sk));

            let run = run_concrete(&mutant, TIMEOUT);
            assert!(!run.completed, "{label}: statically stuck but completed");
            assert_eq!(
                run.blocked_threads,
                dl.blocked.len(),
                "{label}: blocked-thread count disagrees with the static finding"
            );

            // Quiescence == greedy fixpoint: counter values must match it
            // exactly, so the diagnosis is taken in the maximal cut.
            let cut = greedy_cut(&mutant);
            for cr in &run.report.counters {
                let idx = (0..mutant.num_counters())
                    .find(|&i| mutant.counter_name(mc_verify::CounterId(i)) == cr.name)
                    .expect("report names a registered counter");
                assert_eq!(
                    cr.value, cut.values[idx],
                    "{label}: counter {} not at its fixpoint value",
                    cr.name
                );
            }

            // Every counter a statically-blocked thread waits on must be
            // called NeverSatisfiable, and nothing may be called Slow.
            let stuck: Vec<&str> = run.report.stuck().iter().map(|c| c.name.as_str()).collect();
            for b in &dl.blocked {
                let cname = mutant.counter_name(b.counter);
                assert!(
                    stuck.contains(&cname),
                    "{label}: {cname} blocks a thread but is not NeverSatisfiable"
                );
            }
            for cr in &run.report.counters {
                assert_ne!(
                    cr.verdict,
                    StallVerdict::Slow,
                    "{label}: counter {} misdiagnosed Slow in a quiescent stall",
                    cr.name
                );
            }
        }
    }
    assert!(exercised >= 8, "too few deadlocking mutants: {exercised}");
}
