//! Corpus-wide gates for the parameterized verifier.
//!
//! Three claims are enforced over the shipped template corpus on every run:
//!
//! 1. **Machine-checked cutoffs** — every corpus template certifies, every
//!    assignment in the proof's enumeration re-verifies by brute force to the
//!    recorded class, the whole band is certified, and any small-size
//!    exceptions sit strictly below the band.
//! 2. **Seeded bugs are caught** — every buggy-corpus template is rejected
//!    with a witness at the smallest failing size whose instance really is
//!    rejected by the concrete verifier. (Dynamic replay of the same
//!    witnesses is enforced by `tests/static_vs_dynamic.rs`.)
//! 3. **Mutation kill rates do not regress** — single-op mutations of the
//!    concrete corpus stay at or above the E10 baseline, and template-level
//!    mutations (which break every replica at once) are caught at a strictly
//!    higher rate.

use mc_verify::{
    all_mutations, all_template_mutations, models, param_verify, verify, ParamVerdict,
    VerdictClass, DEFAULT_MAX_CUTOFF,
};

/// The E10 (PR 4) concrete-corpus kill rate: 190 of 344 mutants (55%).
/// The corpus may grow, but the detection rate must not fall below this.
const CONCRETE_BASELINE_PERCENT: usize = 55;

#[test]
fn every_corpus_template_carries_a_machine_checked_cutoff() {
    for (name, t) in models::template_corpus() {
        let v = param_verify(&t).unwrap_or_else(|e| panic!("{name}: {e}"));
        let ParamVerdict::Certified { proof, .. } = &v else {
            panic!("{name}: corpus template must certify");
        };
        assert!(
            proof.cutoff <= DEFAULT_MAX_CUTOFF,
            "{name}: cutoff {} exceeds the default search bound",
            proof.cutoff
        );
        assert!(proof.stable_class.certified, "{name}: band not certified");
        assert!(
            proof.uniform_sites && proof.affine_totals && proof.monotone_totals,
            "{name}: a validation check failed yet the cutoff was accepted"
        );
        // The proof's grid is the claim; re-derive every point independently.
        for (assign, class) in &proof.enumerated {
            let sk = t
                .instantiate(assign)
                .unwrap_or_else(|e| panic!("{name}@{assign:?}: {e}"));
            assert_eq!(
                VerdictClass::of(&verify(&sk)),
                *class,
                "{name}@{assign:?}: symbolic class does not equal brute force"
            );
        }
        // Exceptions are permitted only below the band — a band point that
        // deviated would invalidate the cutoff itself.
        for exc in &proof.exceptions {
            assert!(
                exc.iter().any(|&v| v < proof.cutoff),
                "{name}: exception {exc:?} is not below the cutoff {}",
                proof.cutoff
            );
        }
    }
}

#[test]
fn every_seeded_bug_is_rejected_at_a_verified_smallest_size() {
    let mut rejected = 0usize;
    for (name, t) in models::buggy_corpus() {
        let v = param_verify(&t).unwrap_or_else(|e| panic!("{name}: {e}"));
        let w = v
            .witness()
            .unwrap_or_else(|| panic!("{name}: seeded bug must be rejected"));
        assert!(
            !verify(&w.instance.skeleton).is_certified(),
            "{name}: witness instance re-certifies"
        );
        // Smallest failing: no enumerated assignment with a smaller parameter
        // sum is uncertified.
        let wsum: u64 = w.assign.iter().sum();
        for (assign, class) in &v.proof().enumerated {
            if !class.certified {
                assert!(
                    assign.iter().sum::<u64>() >= wsum,
                    "{name}: {assign:?} fails below the witness {:?}",
                    w.assign
                );
            }
        }
        rejected += 1;
    }
    assert!(rejected >= 3, "buggy corpus shrank to {rejected} templates");
}

#[test]
fn concrete_mutation_kill_rate_does_not_regress_below_the_e10_baseline() {
    let mut total = 0usize;
    let mut killed = 0usize;
    for (_, sk) in models::corpus() {
        for m in all_mutations(&sk) {
            total += 1;
            if !verify(&m.apply(&sk)).is_certified() {
                killed += 1;
            }
        }
    }
    assert!(total >= 300, "concrete mutation sweep shrank: {total}");
    assert!(
        killed * 100 >= total * CONCRETE_BASELINE_PERCENT,
        "concrete kill rate regressed below the E10 baseline: {killed}/{total} \
         (need >= {CONCRETE_BASELINE_PERCENT}%)"
    );
}

#[test]
fn template_mutation_kill_rate_exceeds_half() {
    // A template mutation edits one op in a *role*, breaking every replica
    // at once — so the parameterized analyses should catch a larger share
    // than single-replica concrete mutations. No-stabilization counts as
    // caught: the mutant left the fragment the engine certifies.
    let mut total = 0usize;
    let mut killed = 0usize;
    for (_, t) in models::template_corpus() {
        for m in all_template_mutations(&t) {
            total += 1;
            match param_verify(&m.apply(&t)) {
                Err(_) => killed += 1,
                Ok(v) if !v.is_certified() => killed += 1,
                Ok(_) => {}
            }
        }
    }
    assert!(total >= 30, "template mutation sweep shrank: {total}");
    assert!(
        killed * 2 > total,
        "template mutation kill rate at or below 50%: {killed}/{total}"
    );
}
