//! Property battery for the parameterized verifier.
//!
//! The cutoff engine claims that the verdict at the cutoff certifies **every**
//! larger instantiation. These properties confront that claim with randomly
//! generated single-parameter templates drawn from the fragment the engine
//! covers (a replicated worker role with me/prev/next topology plus an
//! optional collector thread):
//!
//! * every assignment the proof enumerates re-verifies to the recorded class,
//!   and the enumeration really covers `1..=cutoff+2`;
//! * the verdict does **not** flip past the cutoff — brute-force verification
//!   at sizes the engine never looked at (`cutoff+3..=cutoff+6`) stays in the
//!   stable class;
//! * rejections pinpoint the smallest failing size, and that instance really
//!   is rejected.
//!
//! Templates that leave the detect-and-validate fragment (no stabilization up
//! to the bound) make no claim and are skipped; a separate test keeps the
//! generator honest by requiring that most sampled templates *do* stabilize.

use mc_verify::{
    param_verify_bounded, verify, Guard, ParamVerdict, Template, TemplateBuilder, VerdictClass,
};
use proptest::prelude::*;
use proptest::strategy::Union;
use proptest::test_runner::TestRunner;

/// Search bound for the cutoff candidates; keeps brute-force sizes small.
const MAX_CUTOFF: u64 = 6;

/// How far past the band the no-flip property probes.
const PROBE_PAST_BAND: u64 = 4;

/// One operation in the random worker role's body.
#[derive(Clone, Copy, Debug)]
enum WOp {
    /// `inc(done, a)` — contribute to the global rendezvous counter.
    IncDone(u64),
    /// `inc(step[me], a)` — publish own progress.
    IncMine(u64),
    /// `check(step[prev] >= k)` — wait on the left neighbour (dropped at
    /// replica 0).
    CheckPrev(u64),
    /// `check(done >= k)` — a constant-level global rendezvous.
    CheckDone(u64),
    /// `write(slot[me])` — publish a value.
    WriteMine,
    /// `read(slot[prev])` — consume from the left neighbour.
    ReadPrev,
    /// `read(slot[next])` — consume from the right neighbour.
    ReadNext,
    /// First replica only: `write(slot[me])` — a guarded seed write.
    FirstWrites,
}

fn wop() -> impl Strategy<Value = WOp> {
    prop_oneof![
        (1u64..=2).prop_map(WOp::IncDone),
        (1u64..=2).prop_map(WOp::IncMine),
        (1u64..=2).prop_map(WOp::CheckPrev),
        (0u64..=2).prop_map(WOp::CheckDone),
        Just(WOp::WriteMine),
        Just(WOp::ReadPrev),
        Just(WOp::ReadNext),
        Just(WOp::FirstWrites),
    ]
}

/// Collector-thread shape: `check(done >= coeff·n + konst)` then maybe
/// `read_all(slot)`. `coeff == u64::MAX` means no collector at all (encoded
/// in-band because the vendored proptest has no option/tuple strategies).
#[derive(Clone, Copy, Debug)]
struct Collector {
    coeff: u64,
    konst: u64,
    read_all: bool,
}

fn collector() -> impl Strategy<Value = Option<Collector>> {
    Union::new(vec![
        Just(None).boxed(),
        (0u64..=1)
            .prop_map(|coeff| {
                Some(Collector {
                    coeff,
                    konst: 0,
                    read_all: false,
                })
            })
            .boxed(),
        (0u64..=2)
            .prop_map(|konst| {
                Some(Collector {
                    coeff: 1,
                    konst,
                    read_all: true,
                })
            })
            .boxed(),
    ])
}

/// Lower a sampled shape to a template: a worker role replicated `n` times
/// over a global counter, a per-replica counter family, and a per-replica
/// variable family, plus the optional collector.
fn build_template(ops: &[WOp], col: Option<Collector>) -> Template {
    let mut b = TemplateBuilder::new();
    let n = b.param("n");
    let workers = b.role("worker", n);
    let done = b.counter("done");
    let step = b.counter_per("step", workers);
    let slot = b.var_per("slot", workers);
    {
        let mut body = b.body(workers);
        for op in ops {
            body = match *op {
                WOp::IncDone(a) => body.inc(done, a as i64),
                WOp::IncMine(a) => body.inc(step.me(), a as i64),
                WOp::CheckPrev(k) => body.check(step.prev(), k as i64),
                WOp::CheckDone(k) => body.check(done, k as i64),
                WOp::WriteMine => body.write(slot.me()),
                WOp::ReadPrev => body.read(slot.prev()),
                WOp::ReadNext => body.read(slot.next()),
                WOp::FirstWrites => body.when(Guard::First).write(slot.me()),
            };
        }
    }
    if let Some(c) = col {
        let tb = b.thread("collector").check(done, n * c.coeff + c.konst);
        if c.read_all {
            tb.read_all(slot);
        }
    }
    b.build()
}

proptest! {
    /// Every assignment in the proof's enumeration re-verifies by brute force
    /// to exactly the recorded class, the grid covers `1..=cutoff+2`, and the
    /// whole band shares the stable class.
    fn enumerated_grid_matches_brute_force(
        ops in proptest::collection::vec(wop(), 1..5),
        col in collector(),
    ) {
        let t = build_template(&ops, col);
        // No stabilization ⇒ the engine makes no claim; nothing to check.
        let Ok(v) = param_verify_bounded(&t, MAX_CUTOFF) else { return };
        let proof = v.proof();
        for (assign, class) in &proof.enumerated {
            let sk = t.instantiate(assign).expect("enumerated point instantiates");
            prop_assert_eq!(
                VerdictClass::of(&verify(&sk)),
                *class,
                "class at {:?} does not re-derive",
                assign
            );
        }
        for size in 1..=proof.cutoff + 2 {
            prop_assert!(
                proof.class_at(&[size]).is_some(),
                "grid misses size {}",
                size
            );
        }
        for size in proof.cutoff..=proof.cutoff + 2 {
            prop_assert_eq!(
                proof.class_at(&[size]),
                Some(proof.stable_class),
                "band point {} not in the stable class",
                size
            );
        }
    }

    /// The headline claim: brute-force verification at sizes **past** the
    /// enumerated band — sizes the engine never instantiated — still lands in
    /// the stable class. A verdict flip after the cutoff would falsify the
    /// parameterized certificate.
    fn no_verdict_flips_past_the_cutoff(
        ops in proptest::collection::vec(wop(), 1..5),
        col in collector(),
    ) {
        let t = build_template(&ops, col);
        let Ok(v) = param_verify_bounded(&t, MAX_CUTOFF) else { return };
        let proof = v.proof();
        for size in proof.cutoff + 3..=proof.cutoff + 2 + PROBE_PAST_BAND {
            let sk = t.instantiate(&[size]).expect("probe size instantiates");
            prop_assert_eq!(
                VerdictClass::of(&verify(&sk)),
                proof.stable_class,
                "verdict flips at size {} past cutoff {}",
                size,
                proof.cutoff
            );
        }
    }

    /// Rejections carry the smallest failing assignment: the witness instance
    /// really is rejected, its class matches the enumeration, and no smaller
    /// enumerated size fails.
    fn rejections_pinpoint_the_smallest_failing_size(
        ops in proptest::collection::vec(wop(), 1..5),
        col in collector(),
    ) {
        let t = build_template(&ops, col);
        let Ok(v) = param_verify_bounded(&t, MAX_CUTOFF) else { return };
        match &v {
            ParamVerdict::Certified { proof, .. } => {
                // Certified ⇒ every band point certifies.
                prop_assert!(proof.stable_class.certified);
            }
            ParamVerdict::Rejected { proof, witness } => {
                prop_assert!(!proof.stable_class.certified);
                let wc = proof
                    .class_at(&witness.assign)
                    .expect("witness size is enumerated");
                prop_assert!(!wc.certified, "witness size classed as certified");
                prop_assert!(
                    !verify(&witness.instance.skeleton).is_certified(),
                    "witness instance re-certifies"
                );
                let wsum: u64 = witness.assign.iter().sum();
                for (assign, class) in &proof.enumerated {
                    if !class.certified {
                        let sum: u64 = assign.iter().sum();
                        prop_assert!(
                            sum >= wsum,
                            "{:?} fails but is smaller than the witness {:?}",
                            assign,
                            witness.assign
                        );
                    }
                }
            }
        }
    }
}

/// The properties above skip templates outside the detect-and-validate
/// fragment, so they would pass vacuously if the generator drifted into
/// producing only non-stabilizing shapes. Pin the generator: across a fixed
/// sample, most templates must stabilize, and both verdicts must occur.
#[test]
fn generator_exercises_both_verdicts_and_mostly_stabilizes() {
    let mut total = 0usize;
    let mut stabilized = 0usize;
    let mut certified = 0usize;
    let mut rejected = 0usize;
    TestRunner::new(ProptestConfig::with_cases(64)).run("generator_profile", |rng| {
        let ops = proptest::collection::vec(wop(), 1..5).generate(rng);
        let col = collector().generate(rng);
        let t = build_template(&ops, col);
        total += 1;
        if let Ok(v) = param_verify_bounded(&t, MAX_CUTOFF) {
            stabilized += 1;
            if v.is_certified() {
                certified += 1;
            } else {
                rejected += 1;
            }
        }
    });
    assert_eq!(total, 64);
    assert!(
        stabilized * 2 >= total,
        "generator drifted out of the fragment: {stabilized}/{total} stabilize"
    );
    assert!(
        certified >= 5 && rejected >= 5,
        "generator must exercise both verdicts: {certified} certified, {rejected} rejected"
    );
}
