//! Sequential-equivalence precondition (Section 6): executing the threads
//! one after another in declared order, in program order, must satisfy every
//! `Check` at the moment it is reached.
//!
//! Together with race-freedom this is the paper's determinacy theorem
//! hypothesis: a counter program whose sequential execution never blocks and
//! whose conflicting accesses are counter-ordered computes the same result
//! in every interleaving as it does sequentially.

use mc_counter::Value;

use crate::ir::{CounterId, Op, OpRef, Skeleton};

/// A check the sequential execution reaches with an insufficient value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqEqViolation {
    /// The failing check.
    pub at: OpRef,
    /// The counter checked.
    pub counter: CounterId,
    /// The level demanded.
    pub level: Value,
    /// The counter's value at that point of the sequential execution.
    pub value: Value,
}

impl SeqEqViolation {
    /// Render the violation with skeleton names.
    pub fn render(&self, sk: &Skeleton) -> String {
        format!(
            "sequential execution blocks at {} — {} is {} when {} is required",
            sk.describe(self.at),
            sk.counter_name(self.counter),
            self.value,
            self.level
        )
    }
}

/// Execute threads sequentially in declared order; return final counter
/// values, or the first check the sequential order fails to satisfy.
pub fn sequential_equivalence(sk: &Skeleton) -> Result<Vec<Value>, SeqEqViolation> {
    let mut values = vec![0 as Value; sk.num_counters()];
    for t in 0..sk.num_threads() {
        for (i, op) in sk.ops(t).iter().enumerate() {
            match *op {
                Op::Inc { counter, amount } => {
                    values[counter.0] = values[counter.0]
                        .checked_add(amount)
                        .expect("counter value overflow in sequential execution");
                }
                Op::Check { counter, level } => {
                    if values[counter.0] < level {
                        return Err(SeqEqViolation {
                            at: OpRef {
                                thread: t,
                                index: i,
                            },
                            counter,
                            level,
                            value: values[counter.0],
                        });
                    }
                }
                Op::Read { .. } | Op::Write { .. } => {}
            }
        }
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::SkeletonBuilder;

    #[test]
    fn forward_dependencies_pass() {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        b.thread("p").inc(c, 2);
        b.thread("q").check(c, 2).inc(c, 1);
        let sk = b.build();
        assert_eq!(sequential_equivalence(&sk), Ok(vec![3]));
    }

    #[test]
    fn backward_dependency_fails() {
        // q (declared first) waits on p's increment: a valid concurrent
        // program can still fail the sequential-order precondition.
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        b.thread("q").check(c, 1);
        b.thread("p").inc(c, 1);
        let sk = b.build();
        let v = sequential_equivalence(&sk).unwrap_err();
        assert_eq!(
            v.at,
            OpRef {
                thread: 0,
                index: 0
            }
        );
        assert_eq!(v.value, 0);
        assert_eq!(v.level, 1);
    }
}
