//! Synchronization skeletons of the protocols implemented in `mc-algos` and
//! `mc-patterns`, built with the declarative [`SkeletonBuilder`] API — plus
//! their parameterized forms as [`Template`]s.
//!
//! Each model mirrors the counter discipline of the corresponding
//! implementation (same counters, same levels, same guarded accesses) so the
//! static verifier's certificate transfers to the real code: the
//! implementation's synchronization-relevant behaviour *is* the skeleton.
//!
//! Protocols whose replica structure is regular (every worker/reader/stage
//! runs the same body with at most neighbour-relative indexing) are modeled
//! **once, symbolically**, as templates in [`template_corpus`]; the concrete
//! model functions for those protocols are literally
//! [`Template::instantiate`] at the requested size, so the parameterized
//! proof and the concrete corpus can never drift apart. Protocols with
//! irregular structure (`floyd_warshall`'s row ownership, `heat`'s boundary
//! pseudo-threads, `odd_even_sort`'s `2i + p%2` slot arithmetic) stay
//! concrete-only: their indexing is not expressible with linear expressions
//! and neighbour offsets, which is exactly the template grammar's documented
//! limit.
//!
//! [`buggy_corpus`] carries seeded-buggy templates (the canonical
//! parameterized off-by-one `check(done >= N-1)` among them) used to
//! validate that parameterized rejections come with concrete witnesses at
//! the smallest failing size.

use crate::ir::{Skeleton, SkeletonBuilder};
use crate::template::{Guard, Template, TemplateBuilder};

// ---------------------------------------------------------------------------
// Parameterized templates
// ---------------------------------------------------------------------------

/// Parameterized fan-in/fan-out: `N` producers each write a private slot and
/// arrive on `done`; `M` consumers each wait for all `N` arrivals and read
/// every slot. Two independent parameters — the cutoff engine enumerates the
/// full `(N, M)` grid.
pub fn fan_in_fan_out_template() -> Template {
    let mut b = TemplateBuilder::new();
    let n = b.param("N");
    let m = b.param("M");
    let producers = b.role("producer", n);
    let consumers = b.role("consumer", m);
    let done = b.counter("done");
    let slot = b.var_per("slot", producers);
    b.body(producers).write(slot.me()).inc(done, 1);
    b.body(consumers).check(done, n).read_all(slot);
    b.build()
}

/// Section 5's sequenced accumulation at symbolic scale: `N` workers each
/// write their own slot and increment `done`; the combiner checks
/// `done >= N` before reading all slots.
pub fn sequenced_accumulate_template() -> Template {
    let mut b = TemplateBuilder::new();
    let n = b.param("N");
    let workers = b.role("worker", n);
    let done = b.counter("done");
    let slot = b.var_per("slot", workers);
    b.body(workers).write(slot.me()).inc(done, 1);
    b.thread("combiner").check(done, n).read_all(slot);
    b.build()
}

/// The single-writer broadcast of `mc-patterns` with a symbolic reader
/// count: the writer publishes slot `i` then increments `count`; each of
/// `K` readers checks `count >= i+1` before reading slot `i`.
pub fn broadcast_template(items: usize) -> Template {
    let mut b = TemplateBuilder::new();
    let k = b.param("K");
    let count = b.counter("count");
    let slot = b.vars("slot", items);
    {
        let mut tb = b.thread("writer");
        for i in 0..items {
            tb = tb.write(slot.at(i)).inc(count, 1);
        }
    }
    let readers = b.role("reader", k);
    {
        let mut tb = b.body(readers);
        for i in 0..items {
            tb = tb.check(count, i as u64 + 1).read(slot.at(i));
        }
    }
    b.build()
}

/// The multi-stage pipeline of `mc-patterns` with a symbolic stage count:
/// stage `s` reads item `i` from the previous stage's buffer once
/// `stage[s-1] >= i+1`, writes its own buffer slot, and increments its
/// stage counter. Stage 0 (guard [`Guard::First`]) reads a pre-written
/// input instead; the `prev()` selectors drop out of range there, exactly
/// like the concrete model's `if s > 0` guard.
pub fn pipeline_template(items: usize) -> Template {
    let mut b = TemplateBuilder::new();
    let s = b.param("S");
    let stages = b.role("stage", s);
    let done = b.counter_per("stage", stages);
    let input = b.vars("input", items);
    let buf = b.var_per_wide("buf", stages, items);
    let mut tb = b.body(stages);
    for i in 0..items {
        tb = tb
            .when(Guard::First)
            .read(input.at(i))
            .check(done.prev(), i as u64 + 1)
            .read(buf.prev(i))
            .write(buf.me(i))
            .inc(done.me(), 1);
    }
    let _ = tb;
    b.build()
}

/// The ragged-barrier stencil of `mc-patterns` with a symbolic participant
/// count: each participant arrives twice per step (read-done, write-done)
/// and waits only on its neighbours; `prev()`/`next()` drop out of range at
/// the edges, so participants 0 and `N-1` simply have fewer neighbours.
pub fn ragged_barrier_template(steps: usize) -> Template {
    let mut b = TemplateBuilder::new();
    let n = b.param("N");
    let parts = b.role("part", n);
    let c = b.counter_per("c", parts);
    let cell = b.var_per("cell", parts);
    let mut tb = b.body(parts);
    for t in 1..=steps as u64 {
        tb = tb
            .check(c.prev(), 2 * t - 2)
            .read(cell.prev())
            .check(c.next(), 2 * t - 2)
            .read(cell.next())
            .inc(c.me(), 1)
            .check(c.prev(), 2 * t - 1)
            .check(c.next(), 2 * t - 1)
            .write(cell.me())
            .inc(c.me(), 1);
    }
    let _ = tb;
    b.build()
}

/// The `ShardedCounter` combiner discipline of `mc-counter` with a symbolic
/// writer count: each of `N` writers publishes `deltas` increments from its
/// private cell; the waiter checks the symbolic total `N * deltas` — a
/// level with a genuine parameter coefficient — before draining the cells.
pub fn sharded_combiner_template(deltas: usize) -> Template {
    let mut b = TemplateBuilder::new();
    let n = b.param("N");
    let writers = b.role("writer", n);
    let published = b.counter("published");
    let cell = b.var_per("cell", writers);
    let mut tb = b.body(writers);
    for _ in 0..deltas {
        tb = tb.write(cell.me()).inc(published, 1);
    }
    let _ = tb;
    b.thread("waiter")
        .check(published, n * (deltas as u64))
        .read_all(cell);
    b.build()
}

/// Supervision restart rounds from `mc-sthreads` at symbolic scale: each
/// round the supervisor releases all `N` workers (`inc(go, 1)`) and waits
/// for every worker to have completed the round (`check(done >= N*(r+1))`,
/// another parameter-coefficient level) before starting the next; after the
/// final round it inspects every worker's state.
pub fn supervisor_rounds_template(rounds: usize) -> Template {
    let mut b = TemplateBuilder::new();
    let n = b.param("N");
    let workers = b.role("worker", n);
    let go = b.counter("go");
    let done = b.counter("done");
    let cell = b.var_per("cell", workers);
    let mut tb = b.body(workers);
    for r in 0..rounds as u64 {
        tb = tb.check(go, r + 1).write(cell.me()).inc(done, 1);
    }
    let _ = tb;
    let mut sup = b.thread("supervisor");
    for r in 0..rounds as u64 {
        sup = sup.inc(go, 1).check(done, n * (r + 1));
    }
    sup = sup.read_all(cell);
    let _ = sup;
    b.build()
}

/// The banded wavefront of `mc-algos` with a symbolic band count: band `t`
/// processes blocks left to right, waiting for band `t-1` to have published
/// `k+1` blocks before reading block `k`'s boundary row.
pub fn wavefront_template(blocks: usize) -> Template {
    let mut b = TemplateBuilder::new();
    let n = b.param("N");
    let bands = b.role("band", n);
    let progress = b.counter_per("progress", bands);
    let boundary = b.var_per_wide("boundary", bands, blocks);
    let mut tb = b.body(bands);
    for k in 0..blocks {
        tb = tb
            .check(progress.prev(), k as u64 + 1)
            .read(boundary.prev(k))
            .write(boundary.me(k))
            .inc(progress.me(), 1);
    }
    let _ = tb;
    b.build()
}

/// All parameterized models, with names — the corpus [`crate::param_verify`]
/// proves for every replica count, used by the parameterized gate tests and
/// the E12 experiment.
pub fn template_corpus() -> Vec<(&'static str, Template)> {
    vec![
        ("fan_in_fan_out", fan_in_fan_out_template()),
        ("sequenced_accumulate", sequenced_accumulate_template()),
        ("broadcast", broadcast_template(4)),
        ("pipeline", pipeline_template(4)),
        ("ragged_barrier", ragged_barrier_template(3)),
        ("sharded_combiner", sharded_combiner_template(2)),
        ("supervisor_rounds", supervisor_rounds_template(3)),
        ("wavefront", wavefront_template(4)),
    ]
}

/// Seeded-buggy templates: each injects a classic parameterized-protocol
/// bug, and [`crate::param_verify`] must reject it with a concrete witness
/// at the smallest failing size.
pub fn buggy_corpus() -> Vec<(&'static str, Template)> {
    vec![
        ("fan_in_off_by_one", fan_in_off_by_one_template()),
        (
            "broadcast_unwaited_reader",
            broadcast_unwaited_reader_template(4),
        ),
        (
            "ragged_barrier_over_sync",
            ragged_barrier_over_sync_template(3),
        ),
    ]
}

/// The canonical parameterized off-by-one: the combiner checks
/// `done >= N - 1`, so one worker's slot may still be in flight when the
/// combiner reads it — a race at every `N >= 1`.
pub fn fan_in_off_by_one_template() -> Template {
    let mut b = TemplateBuilder::new();
    let n = b.param("N");
    let workers = b.role("worker", n);
    let done = b.counter("done");
    let slot = b.var_per("slot", workers);
    b.body(workers).write(slot.me()).inc(done, 1);
    b.thread("combiner").check(done, n - 1).read_all(slot);
    b.build()
}

/// Broadcast where readers check `count >= i` instead of `i + 1`: slot `i`
/// may be read while the writer is still writing it.
pub fn broadcast_unwaited_reader_template(items: usize) -> Template {
    let mut b = TemplateBuilder::new();
    let k = b.param("K");
    let count = b.counter("count");
    let slot = b.vars("slot", items);
    {
        let mut tb = b.thread("writer");
        for i in 0..items {
            tb = tb.write(slot.at(i)).inc(count, 1);
        }
    }
    let readers = b.role("reader", k);
    {
        let mut tb = b.body(readers);
        for i in 0..items {
            tb = tb.check(count, i as u64).read(slot.at(i));
        }
    }
    b.build()
}

/// Ragged barrier whose write phase waits for the neighbours' *write*
/// arrival (`2t`) instead of their read arrival (`2t - 1`): adjacent
/// participants wait on each other symmetrically and deadlock at every
/// `N >= 2` (at `N = 1` there are no neighbours and the protocol is
/// trivially correct — a below-cutoff exception the enumeration records).
pub fn ragged_barrier_over_sync_template(steps: usize) -> Template {
    let mut b = TemplateBuilder::new();
    let n = b.param("N");
    let parts = b.role("part", n);
    let c = b.counter_per("c", parts);
    let cell = b.var_per("cell", parts);
    let mut tb = b.body(parts);
    for t in 1..=steps as u64 {
        tb = tb
            .check(c.prev(), 2 * t - 2)
            .read(cell.prev())
            .check(c.next(), 2 * t - 2)
            .read(cell.next())
            .inc(c.me(), 1)
            .check(c.prev(), 2 * t)
            .check(c.next(), 2 * t)
            .write(cell.me())
            .inc(c.me(), 1);
    }
    let _ = tb;
    b.build()
}

// ---------------------------------------------------------------------------
// Concrete models
// ---------------------------------------------------------------------------

/// Section 5's sequenced accumulation: `n` workers each write their own slot,
/// increment `done`, and the combiner checks `done >= n` before reading all
/// slots. Instantiated from [`sequenced_accumulate_template`].
pub fn sequenced_accumulate(workers: usize) -> Skeleton {
    sequenced_accumulate_template()
        .instantiate(&[workers as u64])
        .expect("concrete size instantiates")
}

/// The counter-synchronized Floyd–Warshall of `mc-algos`: one counter `kc`
/// gates iteration `k`; the owner of row `k+1` publishes `krow[k+1]` during
/// iteration `k` and then increments. `krow[0]` is written before the
/// threads start, so it has no modeled writer.
pub fn floyd_warshall(threads: usize, n: usize) -> Skeleton {
    assert!(threads >= 1 && n >= 1);
    let mut b = SkeletonBuilder::new();
    let kc = b.counter("k_count");
    let krow: Vec<_> = (0..n).map(|k| b.var(format!("krow[{k}]"))).collect();
    // Row r is owned by the thread whose contiguous chunk contains it.
    let owner = |r: usize| r * threads / n;
    for t in 0..threads {
        let mut tb = b.thread(format!("fw{t}"));
        for k in 0..n {
            tb = tb.check(kc, k as u64).read(krow[k]);
            if k + 1 < n && owner(k + 1) == t {
                tb = tb.write(krow[k + 1]).inc(kc, 1);
            }
        }
        let _ = tb;
    }
    b.build()
}

/// The 1-D heat-diffusion ragged protocol of `mc-algos`: per-thread counters
/// where `c[i] >= 2t-1` means "finished reading for step t" and
/// `c[i] >= 2t` means "finished writing step t". Boundary pseudo-threads
/// arrive for all steps upfront.
pub fn heat(interior: usize, steps: usize) -> Skeleton {
    assert!(interior >= 1);
    let mut b = SkeletonBuilder::new();
    // Counters 0 and interior+1 are the boundary pseudo-participants.
    let c: Vec<_> = (0..interior + 2)
        .map(|i| b.counter(format!("c[{i}]")))
        .collect();
    let cell: Vec<_> = (0..interior + 2)
        .map(|i| b.var(format!("cell[{i}]")))
        .collect();
    b.thread("left-boundary").inc(c[0], 2 * steps as u64);
    for i in 1..=interior {
        let mut tb = b.thread(format!("heat{i}"));
        for t in 1..=steps as u64 {
            // Read phase: neighbours must have finished writing step t-1.
            tb = tb
                .check(c[i - 1], 2 * t - 2)
                .read(cell[i - 1])
                .check(c[i + 1], 2 * t - 2)
                .read(cell[i + 1])
                .inc(c[i], 1); // arrived: finished reading for step t
                               // Write phase: neighbours must have finished reading for step t.
            tb = tb
                .check(c[i - 1], 2 * t - 1)
                .check(c[i + 1], 2 * t - 1)
                .write(cell[i])
                .inc(c[i], 1); // arrived: finished writing step t
        }
        let _ = tb;
    }
    b.thread("right-boundary")
        .inc(c[interior + 1], 2 * steps as u64);
    b.build()
}

/// The banded wavefront of `mc-algos`: band `t` processes blocks left to
/// right, waiting for band `t-1` to have published `k+1` blocks before
/// reading block `k`'s boundary row. Instantiated from
/// [`wavefront_template`].
pub fn wavefront(bands: usize, blocks: usize) -> Skeleton {
    assert!(bands >= 1);
    wavefront_template(blocks)
        .instantiate(&[bands as u64])
        .expect("concrete size instantiates")
}

/// The odd–even transposition sort of `mc-algos`: thread `i` owns slots
/// `2i..2i+1`; in phase `p` it compare-exchanges pair `(2i + p%2, 2i + p%2 + 1)`
/// after waiting for both neighbours to have completed phase `p` count.
pub fn odd_even_sort(cells: usize, phases: usize) -> Skeleton {
    assert!(cells >= 2);
    let threads = cells / 2 + 1;
    let mut b = SkeletonBuilder::new();
    let c: Vec<_> = (0..threads).map(|i| b.counter(format!("c[{i}]"))).collect();
    let cell: Vec<_> = (0..cells).map(|j| b.var(format!("cell[{j}]"))).collect();
    for i in 0..threads {
        let mut tb = b.thread(format!("sort{i}"));
        for p in 0..phases as u64 {
            if i > 0 {
                tb = tb.check(c[i - 1], p);
            }
            if i + 1 < threads {
                tb = tb.check(c[i + 1], p);
            }
            let j = 2 * i + (p as usize % 2);
            if j + 1 < cells {
                // Compare-exchange: read then write both slots.
                tb = tb
                    .read(cell[j])
                    .read(cell[j + 1])
                    .write(cell[j])
                    .write(cell[j + 1]);
            }
            tb = tb.inc(c[i], 1);
        }
        let _ = tb;
    }
    b.build()
}

/// The single-writer broadcast of `mc-patterns`: the writer publishes slot
/// `i` then increments `count`; each reader checks `count >= i+1` before
/// reading slot `i`. Instantiated from [`broadcast_template`].
pub fn broadcast(readers: usize, items: usize) -> Skeleton {
    broadcast_template(items)
        .instantiate(&[readers as u64])
        .expect("concrete size instantiates")
}

/// The multi-stage pipeline of `mc-patterns`: stage `s` reads item `i` from
/// the previous stage's buffer once `stage[s-1] >= i+1`, writes its own
/// buffer slot, and increments its stage counter. Stage 0 reads a
/// pre-written input (no modeled writer). Instantiated from
/// [`pipeline_template`].
pub fn pipeline(stages: usize, items: usize) -> Skeleton {
    assert!(stages >= 1);
    pipeline_template(items)
        .instantiate(&[stages as u64])
        .expect("concrete size instantiates")
}

/// A pure-synchronization ragged-barrier stencil from `mc-patterns`: each
/// participant arrives twice per step (read-done, write-done) and waits only
/// on its neighbours — the `RaggedBarrier` discipline with the data accesses
/// of a 1-D stencil. Instantiated from [`ragged_barrier_template`].
pub fn ragged_stencil(participants: usize, steps: usize) -> Skeleton {
    assert!(participants >= 1);
    ragged_barrier_template(steps)
        .instantiate(&[participants as u64])
        .expect("concrete size instantiates")
}

/// The `ShardedCounter` combiner discipline of `mc-counter`: each writer
/// accumulates deltas in its own striped cell (private writes — the cell is
/// keyed by thread), and every delta is eventually published into the
/// counter the waiters watch. A waiter checks the full total before draining
/// the cells, so its reads are ordered after every writer's last store by
/// the publication chain — the skeleton form of the eager-flush/lazy-combine
/// correctness argument. Instantiated from [`sharded_combiner_template`].
pub fn sharded_combiner(writers: usize, deltas: usize) -> Skeleton {
    assert!(writers >= 1);
    sharded_combiner_template(deltas)
        .instantiate(&[writers as u64])
        .expect("concrete size instantiates")
}

/// All models at small exercise sizes, with names — the corpus used by the
/// cross-validation tests and the E10 experiment.
pub fn corpus() -> Vec<(&'static str, Skeleton)> {
    vec![
        ("sequenced_accumulate", sequenced_accumulate(4)),
        ("floyd_warshall", floyd_warshall(3, 6)),
        ("heat", heat(3, 3)),
        ("wavefront", wavefront(3, 4)),
        ("odd_even_sort", odd_even_sort(6, 6)),
        ("broadcast", broadcast(3, 4)),
        ("pipeline", pipeline(3, 4)),
        ("ragged_stencil", ragged_stencil(3, 3)),
        ("sharded_combiner", sharded_combiner(3, 2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::param_verify;
    use crate::verdict::verify;

    #[test]
    fn every_model_is_certified() {
        for (name, sk) in corpus() {
            let v = verify(&sk);
            assert!(
                v.is_certified(),
                "{name} should certify but was rejected:\n{}",
                v.render(&sk)
            );
        }
    }

    #[test]
    fn forward_dependency_models_are_sequentially_equivalent() {
        // Producer-before-consumer protocols satisfy the Section 6
        // sequential precondition; cyclic neighbour protocols are
        // deterministic but genuinely concurrent.
        let expect = [
            ("sequenced_accumulate", true),
            ("floyd_warshall", false),
            ("heat", false),
            ("wavefront", true),
            ("odd_even_sort", false),
            ("broadcast", true),
            ("pipeline", true),
            ("ragged_stencil", false),
            ("sharded_combiner", true),
        ];
        for (name, sk) in corpus() {
            let v = verify(&sk);
            let cert = v.certificate().expect("corpus certifies");
            let &(_, want) = expect.iter().find(|(n, _)| *n == name).unwrap();
            assert_eq!(
                cert.sequentially_equivalent(),
                want,
                "{name}: unexpected sequential-equivalence verdict"
            );
        }
    }

    #[test]
    fn template_corpus_certifies_for_all_sizes() {
        for (name, t) in template_corpus() {
            let v = param_verify(&t).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(v.is_certified(), "{name} should certify:\n{}", v.render(&t));
        }
    }

    #[test]
    fn buggy_corpus_rejected_with_smallest_witness() {
        for (name, t) in buggy_corpus() {
            let v = param_verify(&t).unwrap_or_else(|e| panic!("{name}: {e}"));
            let w = v
                .witness()
                .unwrap_or_else(|| panic!("{name} should be rejected with a witness"));
            assert!(
                !w.rejection.races.is_empty() || w.rejection.deadlock.is_some(),
                "{name}: witness must carry a concrete finding"
            );
        }
    }

    #[test]
    fn off_by_one_witness_is_at_the_smallest_size() {
        let t = fan_in_off_by_one_template();
        let v = param_verify(&t).unwrap();
        let w = v.witness().expect("off-by-one is rejected");
        // Already racy with a single worker: `check(done >= 0)` guards
        // nothing.
        assert_eq!(w.assign, vec![1]);
        assert!(!w.rejection.races.is_empty());
    }
}
