//! Synchronization skeletons of the protocols implemented in `mc-algos` and
//! `mc-patterns`, built with the declarative [`SkeletonBuilder`] API.
//!
//! Each model mirrors the counter discipline of the corresponding
//! implementation (same counters, same levels, same guarded accesses) so the
//! static verifier's certificate transfers to the real code: the
//! implementation's synchronization-relevant behaviour *is* the skeleton.

use crate::ir::{Skeleton, SkeletonBuilder};

/// Section 5's sequenced accumulation: `n` workers each write their own slot,
/// increment `done`, and the combiner checks `done >= n` before reading all
/// slots.
pub fn sequenced_accumulate(workers: usize) -> Skeleton {
    let mut b = SkeletonBuilder::new();
    let done = b.counter("done");
    let slots: Vec<_> = (0..workers).map(|i| b.var(format!("slot[{i}]"))).collect();
    for (i, &slot) in slots.iter().enumerate() {
        b.thread(format!("worker{i}")).write(slot).inc(done, 1);
    }
    {
        let mut t = b.thread("combiner").check(done, workers as u64);
        for &slot in &slots {
            t = t.read(slot);
        }
    }
    b.build()
}

/// The counter-synchronized Floyd–Warshall of `mc-algos`: one counter `kc`
/// gates iteration `k`; the owner of row `k+1` publishes `krow[k+1]` during
/// iteration `k` and then increments. `krow[0]` is written before the
/// threads start, so it has no modeled writer.
pub fn floyd_warshall(threads: usize, n: usize) -> Skeleton {
    assert!(threads >= 1 && n >= 1);
    let mut b = SkeletonBuilder::new();
    let kc = b.counter("k_count");
    let krow: Vec<_> = (0..n).map(|k| b.var(format!("krow[{k}]"))).collect();
    // Row r is owned by the thread whose contiguous chunk contains it.
    let owner = |r: usize| r * threads / n;
    for t in 0..threads {
        let mut tb = b.thread(format!("fw{t}"));
        for k in 0..n {
            tb = tb.check(kc, k as u64).read(krow[k]);
            if k + 1 < n && owner(k + 1) == t {
                tb = tb.write(krow[k + 1]).inc(kc, 1);
            }
        }
        let _ = tb;
    }
    b.build()
}

/// The 1-D heat-diffusion ragged protocol of `mc-algos`: per-thread counters
/// where `c[i] >= 2t-1` means "finished reading for step t" and
/// `c[i] >= 2t` means "finished writing step t". Boundary pseudo-threads
/// arrive for all steps upfront.
pub fn heat(interior: usize, steps: usize) -> Skeleton {
    assert!(interior >= 1);
    let mut b = SkeletonBuilder::new();
    // Counters 0 and interior+1 are the boundary pseudo-participants.
    let c: Vec<_> = (0..interior + 2)
        .map(|i| b.counter(format!("c[{i}]")))
        .collect();
    let cell: Vec<_> = (0..interior + 2)
        .map(|i| b.var(format!("cell[{i}]")))
        .collect();
    b.thread("left-boundary").inc(c[0], 2 * steps as u64);
    for i in 1..=interior {
        let mut tb = b.thread(format!("heat{i}"));
        for t in 1..=steps as u64 {
            // Read phase: neighbours must have finished writing step t-1.
            tb = tb
                .check(c[i - 1], 2 * t - 2)
                .read(cell[i - 1])
                .check(c[i + 1], 2 * t - 2)
                .read(cell[i + 1])
                .inc(c[i], 1); // arrived: finished reading for step t
                               // Write phase: neighbours must have finished reading for step t.
            tb = tb
                .check(c[i - 1], 2 * t - 1)
                .check(c[i + 1], 2 * t - 1)
                .write(cell[i])
                .inc(c[i], 1); // arrived: finished writing step t
        }
        let _ = tb;
    }
    b.thread("right-boundary")
        .inc(c[interior + 1], 2 * steps as u64);
    b.build()
}

/// The banded wavefront of `mc-algos`: band `t` processes blocks left to
/// right, waiting for band `t-1` to have published `k+1` blocks before
/// reading block `k`'s boundary row.
pub fn wavefront(bands: usize, blocks: usize) -> Skeleton {
    assert!(bands >= 1);
    let mut b = SkeletonBuilder::new();
    let progress: Vec<_> = (0..bands)
        .map(|t| b.counter(format!("progress[{t}]")))
        .collect();
    let boundary: Vec<Vec<_>> = (0..bands)
        .map(|t| {
            (0..blocks)
                .map(|k| b.var(format!("boundary[{t}][{k}]")))
                .collect()
        })
        .collect();
    for t in 0..bands {
        let mut tb = b.thread(format!("band{t}"));
        // `k` is simultaneously a block index into two bands and a level.
        #[allow(clippy::needless_range_loop)]
        for k in 0..blocks {
            if t > 0 {
                tb = tb
                    .check(progress[t - 1], k as u64 + 1)
                    .read(boundary[t - 1][k]);
            }
            tb = tb.write(boundary[t][k]).inc(progress[t], 1);
        }
        let _ = tb;
    }
    b.build()
}

/// The odd–even transposition sort of `mc-algos`: thread `i` owns slots
/// `2i..2i+1`; in phase `p` it compare-exchanges pair `(2i + p%2, 2i + p%2 + 1)`
/// after waiting for both neighbours to have completed phase `p` count.
pub fn odd_even_sort(cells: usize, phases: usize) -> Skeleton {
    assert!(cells >= 2);
    let threads = cells / 2 + 1;
    let mut b = SkeletonBuilder::new();
    let c: Vec<_> = (0..threads).map(|i| b.counter(format!("c[{i}]"))).collect();
    let cell: Vec<_> = (0..cells).map(|j| b.var(format!("cell[{j}]"))).collect();
    for i in 0..threads {
        let mut tb = b.thread(format!("sort{i}"));
        for p in 0..phases as u64 {
            if i > 0 {
                tb = tb.check(c[i - 1], p);
            }
            if i + 1 < threads {
                tb = tb.check(c[i + 1], p);
            }
            let j = 2 * i + (p as usize % 2);
            if j + 1 < cells {
                // Compare-exchange: read then write both slots.
                tb = tb
                    .read(cell[j])
                    .read(cell[j + 1])
                    .write(cell[j])
                    .write(cell[j + 1]);
            }
            tb = tb.inc(c[i], 1);
        }
        let _ = tb;
    }
    b.build()
}

/// The single-writer broadcast of `mc-patterns`: the writer publishes slot
/// `i` then increments `count`; each reader checks `count >= i+1` before
/// reading slot `i`.
pub fn broadcast(readers: usize, items: usize) -> Skeleton {
    let mut b = SkeletonBuilder::new();
    let count = b.counter("count");
    let slot: Vec<_> = (0..items).map(|i| b.var(format!("slot[{i}]"))).collect();
    {
        let mut tb = b.thread("writer");
        for &s in &slot {
            tb = tb.write(s).inc(count, 1);
        }
    }
    for r in 0..readers {
        let mut tb = b.thread(format!("reader{r}"));
        for (i, &s) in slot.iter().enumerate() {
            tb = tb.check(count, i as u64 + 1).read(s);
        }
        let _ = tb;
    }
    b.build()
}

/// The multi-stage pipeline of `mc-patterns`: stage `s` reads item `i` from
/// the previous stage's buffer once `stage[s-1] >= i+1`, writes its own
/// buffer slot, and increments its stage counter. Stage 0 reads a
/// pre-written input (no modeled writer).
pub fn pipeline(stages: usize, items: usize) -> Skeleton {
    assert!(stages >= 1);
    let mut b = SkeletonBuilder::new();
    let done: Vec<_> = (0..stages)
        .map(|s| b.counter(format!("stage[{s}]")))
        .collect();
    let input: Vec<_> = (0..items).map(|i| b.var(format!("input[{i}]"))).collect();
    let buf: Vec<Vec<_>> = (0..stages)
        .map(|s| {
            (0..items)
                .map(|i| b.var(format!("buf[{s}][{i}]")))
                .collect()
        })
        .collect();
    for s in 0..stages {
        let mut tb = b.thread(format!("stage{s}"));
        for i in 0..items {
            if s == 0 {
                tb = tb.read(input[i]);
            } else {
                tb = tb.check(done[s - 1], i as u64 + 1).read(buf[s - 1][i]);
            }
            tb = tb.write(buf[s][i]).inc(done[s], 1);
        }
        let _ = tb;
    }
    b.build()
}

/// A pure-synchronization ragged-barrier stencil from `mc-patterns`: each
/// participant arrives twice per step (read-done, write-done) and waits only
/// on its neighbours — the `RaggedBarrier` discipline with the data accesses
/// of a 1-D stencil.
pub fn ragged_stencil(participants: usize, steps: usize) -> Skeleton {
    // Identical protocol shape to `heat`, but without boundary
    // pseudo-threads: participants 0 and n-1 simply have fewer neighbours.
    assert!(participants >= 1);
    let mut b = SkeletonBuilder::new();
    let c: Vec<_> = (0..participants)
        .map(|i| b.counter(format!("c[{i}]")))
        .collect();
    let cell: Vec<_> = (0..participants)
        .map(|i| b.var(format!("cell[{i}]")))
        .collect();
    for i in 0..participants {
        let mut tb = b.thread(format!("part{i}"));
        for t in 1..=steps as u64 {
            if i > 0 {
                tb = tb.check(c[i - 1], 2 * t - 2).read(cell[i - 1]);
            }
            if i + 1 < participants {
                tb = tb.check(c[i + 1], 2 * t - 2).read(cell[i + 1]);
            }
            tb = tb.inc(c[i], 1);
            if i > 0 {
                tb = tb.check(c[i - 1], 2 * t - 1);
            }
            if i + 1 < participants {
                tb = tb.check(c[i + 1], 2 * t - 1);
            }
            tb = tb.write(cell[i]).inc(c[i], 1);
        }
        let _ = tb;
    }
    b.build()
}

/// The `ShardedCounter` combiner discipline of `mc-counter`: each writer
/// accumulates deltas in its own striped cell (private writes — the cell is
/// keyed by thread), and every delta is eventually published into the
/// counter the waiters watch. A waiter checks the full total before draining
/// the cells, so its reads are ordered after every writer's last store by
/// the publication chain — the skeleton form of the eager-flush/lazy-combine
/// correctness argument.
pub fn sharded_combiner(writers: usize, deltas: usize) -> Skeleton {
    assert!(writers >= 1);
    let mut b = SkeletonBuilder::new();
    let published = b.counter("published");
    let cells: Vec<_> = (0..writers).map(|w| b.var(format!("cell[{w}]"))).collect();
    let total = (writers * deltas) as u64;
    for (w, &cell) in cells.iter().enumerate() {
        let mut tb = b.thread(format!("writer{w}"));
        for _ in 0..deltas {
            tb = tb.write(cell).inc(published, 1);
        }
        let _ = tb;
    }
    {
        let mut tb = b.thread("waiter").check(published, total);
        for &cell in &cells {
            tb = tb.read(cell);
        }
        let _ = tb;
    }
    b.build()
}

/// All models at small exercise sizes, with names — the corpus used by the
/// cross-validation tests and the E10 experiment.
pub fn corpus() -> Vec<(&'static str, Skeleton)> {
    vec![
        ("sequenced_accumulate", sequenced_accumulate(4)),
        ("floyd_warshall", floyd_warshall(3, 6)),
        ("heat", heat(3, 3)),
        ("wavefront", wavefront(3, 4)),
        ("odd_even_sort", odd_even_sort(6, 6)),
        ("broadcast", broadcast(3, 4)),
        ("pipeline", pipeline(3, 4)),
        ("ragged_stencil", ragged_stencil(3, 3)),
        ("sharded_combiner", sharded_combiner(3, 2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::verify;

    #[test]
    fn every_model_is_certified() {
        for (name, sk) in corpus() {
            let v = verify(&sk);
            assert!(
                v.is_certified(),
                "{name} should certify but was rejected:\n{}",
                v.render(&sk)
            );
        }
    }

    #[test]
    fn forward_dependency_models_are_sequentially_equivalent() {
        // Producer-before-consumer protocols satisfy the Section 6
        // sequential precondition; cyclic neighbour protocols are
        // deterministic but genuinely concurrent.
        let expect = [
            ("sequenced_accumulate", true),
            ("floyd_warshall", false),
            ("heat", false),
            ("wavefront", true),
            ("odd_even_sort", false),
            ("broadcast", true),
            ("pipeline", true),
            ("ragged_stencil", false),
            ("sharded_combiner", true),
        ];
        for (name, sk) in corpus() {
            let v = verify(&sk);
            let cert = v.certificate().expect("corpus certifies");
            let &(_, want) = expect.iter().find(|(n, _)| *n == name).unwrap();
            assert_eq!(
                cert.sequentially_equivalent(),
                want,
                "{name}: unexpected sequential-equivalence verdict"
            );
        }
    }
}
