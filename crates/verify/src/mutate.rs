//! Protocol mutations for validating the verifier: each mutation injects a
//! classic counter-protocol bug into a skeleton, and the analyses must
//! report it (cross-validated against dynamic exploration in the
//! integration tests).

use crate::ir::{Op, OpRef, Skeleton};

/// A single protocol-breaking edit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Remove an increment (the thread "forgets" to arrive).
    DropIncrement(OpRef),
    /// Reduce an increment's amount by one (partial arrival).
    ReduceAmount(OpRef),
    /// Swap a check with the operation following it in program order
    /// (the guard fires too late).
    ReorderCheckAfterNext(OpRef),
    /// Remove a check entirely (unguarded access).
    DropCheck(OpRef),
}

impl Mutation {
    /// The position the mutation edits.
    pub fn site(&self) -> OpRef {
        match *self {
            Mutation::DropIncrement(r)
            | Mutation::ReduceAmount(r)
            | Mutation::ReorderCheckAfterNext(r)
            | Mutation::DropCheck(r) => r,
        }
    }

    /// Apply to a copy of the skeleton.
    pub fn apply(&self, sk: &Skeleton) -> Skeleton {
        let mut out = sk.clone();
        let r = self.site();
        let ops = &mut out.threads[r.thread].ops;
        match *self {
            Mutation::DropIncrement(_) => {
                debug_assert!(matches!(ops[r.index], Op::Inc { .. }));
                ops.remove(r.index);
            }
            Mutation::ReduceAmount(_) => {
                let Op::Inc { counter, amount } = ops[r.index] else {
                    panic!("ReduceAmount must target an Inc");
                };
                debug_assert!(amount >= 1);
                ops[r.index] = Op::Inc {
                    counter,
                    amount: amount - 1,
                };
            }
            Mutation::ReorderCheckAfterNext(_) => {
                debug_assert!(matches!(ops[r.index], Op::Check { .. }));
                debug_assert!(r.index + 1 < ops.len());
                ops.swap(r.index, r.index + 1);
            }
            Mutation::DropCheck(_) => {
                debug_assert!(matches!(ops[r.index], Op::Check { .. }));
                ops.remove(r.index);
            }
        }
        out
    }

    /// Human-readable description against the original skeleton.
    pub fn describe(&self, sk: &Skeleton) -> String {
        let kind = match self {
            Mutation::DropIncrement(_) => "drop increment",
            Mutation::ReduceAmount(_) => "reduce amount",
            Mutation::ReorderCheckAfterNext(_) => "reorder check after next op",
            Mutation::DropCheck(_) => "drop check",
        };
        format!("{kind} at {}", sk.describe(self.site()))
    }
}

/// Enumerate every applicable mutation of a skeleton.
///
/// `ReduceAmount` is only generated for amounts >= 2 (reducing a 1 to a 0
/// is equivalent to `DropIncrement` for the analyses).
/// `ReorderCheckAfterNext` is only generated when the following operation
/// is not itself a check (swapping two checks is a no-op for reachability).
pub fn all_mutations(sk: &Skeleton) -> Vec<Mutation> {
    let mut out = Vec::new();
    for t in 0..sk.num_threads() {
        let ops = sk.ops(t);
        for (i, op) in ops.iter().enumerate() {
            let r = OpRef {
                thread: t,
                index: i,
            };
            match *op {
                Op::Inc { amount, .. } => {
                    out.push(Mutation::DropIncrement(r));
                    if amount >= 2 {
                        out.push(Mutation::ReduceAmount(r));
                    }
                }
                Op::Check { level, .. } => {
                    if level > 0 {
                        out.push(Mutation::DropCheck(r));
                    }
                    if i + 1 < ops.len() && !matches!(ops[i + 1], Op::Check { .. }) {
                        out.push(Mutation::ReorderCheckAfterNext(r));
                    }
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::SkeletonBuilder;
    use crate::verdict::verify;

    fn producer_consumer() -> Skeleton {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("done");
        let x = b.var("x");
        b.thread("producer").write(x).inc(c, 2);
        b.thread("consumer").check(c, 2).read(x);
        b.build()
    }

    #[test]
    fn every_mutation_of_producer_consumer_is_rejected() {
        let sk = producer_consumer();
        assert!(verify(&sk).is_certified());
        let muts = all_mutations(&sk);
        // inc: drop + reduce; check: drop + reorder.
        assert_eq!(muts.len(), 4);
        for m in muts {
            let mutant = m.apply(&sk);
            let v = verify(&mutant);
            assert!(
                !v.is_certified(),
                "mutation `{}` should be caught",
                m.describe(&sk)
            );
        }
    }

    #[test]
    fn drop_increment_causes_deadlock_finding() {
        let sk = producer_consumer();
        let mutant = Mutation::DropIncrement(OpRef {
            thread: 0,
            index: 1,
        })
        .apply(&sk);
        let v = verify(&mutant);
        let rej = v.rejection().unwrap();
        assert!(rej.deadlock.is_some());
    }

    #[test]
    fn reorder_check_causes_race_finding() {
        let sk = producer_consumer();
        // Swap consumer's check with its read: the read is now unguarded.
        let mutant = Mutation::ReorderCheckAfterNext(OpRef {
            thread: 1,
            index: 0,
        })
        .apply(&sk);
        let v = verify(&mutant);
        let rej = v.rejection().unwrap();
        assert!(!rej.races.is_empty());
    }
}
