//! Protocol mutations for validating the verifier: each mutation injects a
//! classic counter-protocol bug into a skeleton, and the analyses must
//! report it (cross-validated against dynamic exploration in the
//! integration tests).
//!
//! [`TemplateMutation`] lifts the same bug classes to the parameterized
//! layer — one edit to a role body breaks **every** replica at once, and
//! two extra classes become expressible that have no concrete analogue:
//! off-by-one *level* edits against symbolic levels (`check(done, N)` →
//! `check(done, N - 1)`), the canonical parameterized-protocol bug.

use crate::ir::{Op, OpRef, Skeleton};
use crate::template::{LinExpr, RoleId, TOpKind, Template};

/// A single protocol-breaking edit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Remove an increment (the thread "forgets" to arrive).
    DropIncrement(OpRef),
    /// Reduce an increment's amount by one (partial arrival).
    ReduceAmount(OpRef),
    /// Swap a check with the operation following it in program order
    /// (the guard fires too late).
    ReorderCheckAfterNext(OpRef),
    /// Remove a check entirely (unguarded access).
    DropCheck(OpRef),
}

impl Mutation {
    /// The position the mutation edits.
    pub fn site(&self) -> OpRef {
        match *self {
            Mutation::DropIncrement(r)
            | Mutation::ReduceAmount(r)
            | Mutation::ReorderCheckAfterNext(r)
            | Mutation::DropCheck(r) => r,
        }
    }

    /// Apply to a copy of the skeleton.
    pub fn apply(&self, sk: &Skeleton) -> Skeleton {
        let mut out = sk.clone();
        let r = self.site();
        let ops = &mut out.threads[r.thread].ops;
        match *self {
            Mutation::DropIncrement(_) => {
                debug_assert!(matches!(ops[r.index], Op::Inc { .. }));
                ops.remove(r.index);
            }
            Mutation::ReduceAmount(_) => {
                let Op::Inc { counter, amount } = ops[r.index] else {
                    panic!("ReduceAmount must target an Inc");
                };
                debug_assert!(amount >= 1);
                ops[r.index] = Op::Inc {
                    counter,
                    amount: amount - 1,
                };
            }
            Mutation::ReorderCheckAfterNext(_) => {
                debug_assert!(matches!(ops[r.index], Op::Check { .. }));
                debug_assert!(r.index + 1 < ops.len());
                ops.swap(r.index, r.index + 1);
            }
            Mutation::DropCheck(_) => {
                debug_assert!(matches!(ops[r.index], Op::Check { .. }));
                ops.remove(r.index);
            }
        }
        out
    }

    /// Human-readable description against the original skeleton.
    pub fn describe(&self, sk: &Skeleton) -> String {
        let kind = match self {
            Mutation::DropIncrement(_) => "drop increment",
            Mutation::ReduceAmount(_) => "reduce amount",
            Mutation::ReorderCheckAfterNext(_) => "reorder check after next op",
            Mutation::DropCheck(_) => "drop check",
        };
        format!("{kind} at {}", sk.describe(self.site()))
    }
}

/// Enumerate every applicable mutation of a skeleton.
///
/// `ReduceAmount` is only generated for amounts >= 2 (reducing a 1 to a 0
/// is equivalent to `DropIncrement` for the analyses).
/// `ReorderCheckAfterNext` is only generated when the following operation
/// is not itself a check (swapping two checks is a no-op for reachability).
pub fn all_mutations(sk: &Skeleton) -> Vec<Mutation> {
    let mut out = Vec::new();
    for t in 0..sk.num_threads() {
        let ops = sk.ops(t);
        for (i, op) in ops.iter().enumerate() {
            let r = OpRef {
                thread: t,
                index: i,
            };
            match *op {
                Op::Inc { amount, .. } => {
                    out.push(Mutation::DropIncrement(r));
                    if amount >= 2 {
                        out.push(Mutation::ReduceAmount(r));
                    }
                }
                Op::Check { level, .. } => {
                    if level > 0 {
                        out.push(Mutation::DropCheck(r));
                    }
                    if i + 1 < ops.len() && !matches!(ops[i + 1], Op::Check { .. }) {
                        out.push(Mutation::ReorderCheckAfterNext(r));
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// The bug class a [`TemplateMutation`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TemplateMutationKind {
    /// Remove an increment from the role body (every replica forgets to
    /// arrive).
    DropIncrement,
    /// Reduce an increment's amount by one in every replica.
    ReduceAmount,
    /// Remove a check from the role body (every replica's access is
    /// unguarded).
    DropCheck,
    /// Swap a check with the operation following it in the role body.
    ReorderCheckAfterNext,
    /// Raise a check's level by one — `check(done, N)` becomes
    /// `check(done, N + 1)`, the parameterized too-strict-guard bug.
    RaiseLevel,
    /// Lower a check's level by one — `check(done, N)` becomes
    /// `check(done, N - 1)`, the parameterized off-by-one bug.
    LowerLevel,
}

/// A single protocol-breaking edit to a [`Template`] role body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TemplateMutation {
    /// The role whose body is edited.
    pub role: RoleId,
    /// The index of the edited operation in the role body.
    pub op: usize,
    /// The edit.
    pub kind: TemplateMutationKind,
}

impl TemplateMutation {
    /// Apply to a copy of the template.
    pub fn apply(&self, t: &Template) -> Template {
        let mut out = t.clone();
        let ops = &mut out.roles[self.role.0].ops;
        match self.kind {
            TemplateMutationKind::DropIncrement | TemplateMutationKind::DropCheck => {
                ops.remove(self.op);
            }
            TemplateMutationKind::ReduceAmount => {
                let TOpKind::Inc { amount, .. } = &mut ops[self.op].kind else {
                    panic!("ReduceAmount must target an Inc");
                };
                *amount = amount.clone() - LinExpr::constant(1);
            }
            TemplateMutationKind::ReorderCheckAfterNext => {
                ops.swap(self.op, self.op + 1);
            }
            TemplateMutationKind::RaiseLevel | TemplateMutationKind::LowerLevel => {
                let TOpKind::Check { level, .. } = &mut ops[self.op].kind else {
                    panic!("level mutation must target a Check");
                };
                let delta = if self.kind == TemplateMutationKind::RaiseLevel {
                    1
                } else {
                    -1
                };
                *level = level.clone() + LinExpr::constant(delta);
            }
        }
        out
    }

    /// Human-readable description against the original template.
    pub fn describe(&self, t: &Template) -> String {
        let kind = match self.kind {
            TemplateMutationKind::DropIncrement => "drop increment",
            TemplateMutationKind::ReduceAmount => "reduce amount",
            TemplateMutationKind::DropCheck => "drop check",
            TemplateMutationKind::ReorderCheckAfterNext => "reorder check after next op",
            TemplateMutationKind::RaiseLevel => "raise level",
            TemplateMutationKind::LowerLevel => "lower level",
        };
        format!(
            "{kind} at {}[{}]: {}",
            t.role_name(self.role),
            self.op,
            t.render_op(self.role, self.op)
        )
    }
}

/// The minimum value an expression takes over all assignments with every
/// parameter `≥ 1`; `None` when a negative coefficient makes the minimum
/// unbounded below.
fn min_over_positive_assignments(e: &LinExpr, nparams: usize) -> Option<i64> {
    let mut acc = e.constant_term();
    for i in 0..nparams {
        let c = e.coeff(i);
        if c < 0 {
            return None;
        }
        acc += c;
    }
    Some(acc)
}

/// Enumerate every applicable mutation of a template.
///
/// Eligibility mirrors [`all_mutations`], lifted to expressions that must
/// stay non-negative for **all** assignments with parameters `≥ 1`:
/// `ReduceAmount` needs the amount to stay meaningful (min value ≥ 2),
/// `LowerLevel` needs the level to stay instantiable (min value ≥ 1),
/// `DropCheck` skips constant-zero levels, and `ReorderCheckAfterNext`
/// skips check-check swaps.
pub fn all_template_mutations(t: &Template) -> Vec<TemplateMutation> {
    let mut out = Vec::new();
    let nparams = t.num_params();
    for (ri, role) in t.roles.iter().enumerate() {
        let role_id = RoleId(ri);
        for (oi, top) in role.ops.iter().enumerate() {
            let mut push = |kind| {
                out.push(TemplateMutation {
                    role: role_id,
                    op: oi,
                    kind,
                })
            };
            match &top.kind {
                TOpKind::Inc { amount, .. } => {
                    push(TemplateMutationKind::DropIncrement);
                    if min_over_positive_assignments(amount, nparams).is_some_and(|m| m >= 2) {
                        push(TemplateMutationKind::ReduceAmount);
                    }
                }
                TOpKind::Check { level, .. } => {
                    let min = min_over_positive_assignments(level, nparams);
                    let constant_zero = level.is_constant() && level.constant_term() == 0;
                    if !constant_zero {
                        push(TemplateMutationKind::DropCheck);
                    }
                    push(TemplateMutationKind::RaiseLevel);
                    if min.is_some_and(|m| m >= 1) {
                        push(TemplateMutationKind::LowerLevel);
                    }
                    if oi + 1 < role.ops.len()
                        && !matches!(role.ops[oi + 1].kind, TOpKind::Check { .. })
                    {
                        push(TemplateMutationKind::ReorderCheckAfterNext);
                    }
                }
                TOpKind::Read { .. } | TOpKind::Write { .. } | TOpKind::ReadAll { .. } => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::SkeletonBuilder;
    use crate::verdict::verify;

    fn producer_consumer() -> Skeleton {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("done");
        let x = b.var("x");
        b.thread("producer").write(x).inc(c, 2);
        b.thread("consumer").check(c, 2).read(x);
        b.build()
    }

    #[test]
    fn every_mutation_of_producer_consumer_is_rejected() {
        let sk = producer_consumer();
        assert!(verify(&sk).is_certified());
        let muts = all_mutations(&sk);
        // inc: drop + reduce; check: drop + reorder.
        assert_eq!(muts.len(), 4);
        for m in muts {
            let mutant = m.apply(&sk);
            let v = verify(&mutant);
            assert!(
                !v.is_certified(),
                "mutation `{}` should be caught",
                m.describe(&sk)
            );
        }
    }

    #[test]
    fn drop_increment_causes_deadlock_finding() {
        let sk = producer_consumer();
        let mutant = Mutation::DropIncrement(OpRef {
            thread: 0,
            index: 1,
        })
        .apply(&sk);
        let v = verify(&mutant);
        let rej = v.rejection().unwrap();
        assert!(rej.deadlock.is_some());
    }

    #[test]
    fn template_mutations_enumerate_and_kill() {
        use crate::cutoff::param_verify;
        use crate::template::TemplateBuilder;

        let mut b = TemplateBuilder::new();
        let n = b.param("N");
        let workers = b.role("worker", n);
        let done = b.counter("done");
        let slot = b.var_per("slot", workers);
        b.body(workers).write(slot.me()).inc(done, 1);
        b.thread("collector").check(done, n).read_all(slot);
        let t = b.build();
        assert!(param_verify(&t).unwrap().is_certified());

        let muts = all_template_mutations(&t);
        // worker inc: drop only (amount 1); collector check: drop, raise,
        // lower, reorder (next op is a read_all).
        assert_eq!(muts.len(), 5);
        for m in &muts {
            let mutant = m.apply(&t);
            let v = param_verify(&mutant).unwrap();
            assert!(
                !v.is_certified(),
                "template mutation `{}` should be caught",
                m.describe(&t)
            );
        }
        // The canonical off-by-one: lowering `check(done, N)` to
        // `check(done, N - 1)` must be among the enumerated mutations.
        assert!(muts
            .iter()
            .any(|m| m.kind == TemplateMutationKind::LowerLevel));
    }

    #[test]
    fn reorder_check_causes_race_finding() {
        let sk = producer_consumer();
        // Swap consumer's check with its read: the read is now unguarded.
        let mutant = Mutation::ReorderCheckAfterNext(OpRef {
            thread: 1,
            index: 0,
        })
        .apply(&sk);
        let v = verify(&mutant);
        let rej = v.rejection().unwrap();
        assert!(!rej.races.is_empty());
    }
}
