//! The monotone fixpoint: maximum achievable counter values and the maximal
//! reachable cut.
//!
//! Because counters only grow and `check` is the only blocking operation, an
//! operation that becomes enabled can never become disabled: the transition
//! system is *monotone* in the sense of "Lost in Abstraction". Greedy
//! scheduling — repeatedly advancing every thread as far as it can go — is
//! therefore confluent and computes the unique maximal reachable cut,
//! independent of interleaving. This makes the analysis exact on the skeleton
//! IR, not merely sound: an operation is reachable in *some* schedule iff it
//! is inside the greedy cut, and the program deadlocks in some schedule iff
//! it deadlocks in every maximal schedule.

use std::fmt;

use mc_counter::Value;

use crate::ir::{CounterId, Op, OpRef, Skeleton};

/// The unique maximal reachable cut of a skeleton (optionally with some
/// threads truncated).
#[derive(Clone, Debug)]
pub struct Cut {
    /// For each thread, the index of the first operation it could **not**
    /// execute (== the thread's length if it ran to completion / truncation).
    pub positions: Vec<usize>,
    /// Final counter values at the cut — each counter's maximum achievable
    /// value.
    pub values: Vec<Value>,
    /// One witness schedule reaching the cut (greedy order).
    pub schedule: Vec<OpRef>,
}

impl Cut {
    /// True if every thread executed all of its (possibly truncated) ops.
    pub fn complete(&self, limits: &[usize]) -> bool {
        self.positions.iter().zip(limits).all(|(p, l)| p >= l)
    }

    /// True if the given position was executed.
    pub fn reached(&self, r: OpRef) -> bool {
        r.index < self.positions[r.thread]
    }
}

/// Compute the maximal reachable cut with per-thread limits.
///
/// `limits[t]` caps how many operations thread `t` may execute; pass
/// `sk.lens()` for the untruncated program. Runs in
/// `O(total_ops * blocking_rounds)`.
pub fn greedy_cut_limited(sk: &Skeleton, limits: &[usize]) -> Cut {
    let nthreads = sk.num_threads();
    debug_assert_eq!(limits.len(), nthreads);
    let mut positions = vec![0usize; nthreads];
    let mut values = vec![0 as Value; sk.num_counters()];
    let mut schedule = Vec::new();
    let mut progressed = true;
    while progressed {
        progressed = false;
        for t in 0..nthreads {
            let ops = sk.ops(t);
            let limit = limits[t].min(ops.len());
            while positions[t] < limit {
                let i = positions[t];
                match ops[i] {
                    Op::Check { counter, level } if values[counter.0] < level => break,
                    Op::Inc { counter, amount } => {
                        values[counter.0] = values[counter.0]
                            .checked_add(amount)
                            .expect("counter value overflow in skeleton fixpoint");
                    }
                    _ => {}
                }
                schedule.push(OpRef {
                    thread: t,
                    index: i,
                });
                positions[t] = i + 1;
                progressed = true;
            }
        }
    }
    Cut {
        positions,
        values,
        schedule,
    }
}

/// Compute the maximal reachable cut of the whole skeleton.
pub fn greedy_cut(sk: &Skeleton) -> Cut {
    greedy_cut_limited(sk, &sk.lens())
}

/// Why a thread can never pass its blocking check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StuckReason {
    /// Even if every unexecuted increment in the whole program were
    /// delivered, the counter could not reach the waited level.
    InsufficientIncrements {
        /// Maximum value the counter could ever reach: achieved value plus
        /// every increment remaining in any thread's unexecuted suffix.
        max_possible: Value,
    },
    /// Enough increments exist textually, but the threads holding them are
    /// themselves blocked — a deadlock cycle.
    WaitsOn {
        /// Blocked threads holding unexecuted increments of this counter.
        threads: Vec<usize>,
    },
}

/// One thread stuck at the fixpoint frontier.
#[derive(Clone, Debug)]
pub struct BlockedThread {
    /// The check the thread is stuck at.
    pub at: OpRef,
    /// The counter it waits on.
    pub counter: CounterId,
    /// The level it waits for.
    pub level: Value,
    /// The counter's maximum achievable value (at the fixpoint).
    pub value: Value,
    /// Why the check can never be satisfied.
    pub reason: StuckReason,
}

/// A whole-program deadlock: the maximal cut leaves threads blocked.
///
/// This is the static analogue of [`mc_counter::StallVerdict::NeverSatisfiable`]:
/// every blocked thread here is stuck in **all** schedules, by confluence of
/// the monotone fixpoint.
#[derive(Clone, Debug)]
pub struct DeadlockFinding {
    /// Every thread stuck at the frontier.
    pub blocked: Vec<BlockedThread>,
    /// A wait-for cycle among blocked threads, if one exists.
    pub cycle: Option<Vec<usize>>,
    /// A witness schedule: executing exactly these operations (in order)
    /// leaves every blocked thread stuck with no enabled operation left.
    pub witness: Vec<OpRef>,
}

impl DeadlockFinding {
    /// Render the finding with skeleton names.
    pub fn render(&self, sk: &Skeleton) -> String {
        let mut out = String::new();
        out.push_str("deadlock: maximal cut leaves threads blocked\n");
        for b in &self.blocked {
            out.push_str(&format!(
                "  {} — {} has max achievable value {}",
                sk.describe(b.at),
                sk.counter_name(b.counter),
                b.value
            ));
            match &b.reason {
                StuckReason::InsufficientIncrements { max_possible } => {
                    out.push_str(&format!(
                        " (even with every remaining increment: {max_possible} < {})\n",
                        b.level
                    ));
                }
                StuckReason::WaitsOn { threads } => {
                    let names: Vec<&str> = threads.iter().map(|&t| sk.thread_name(t)).collect();
                    out.push_str(&format!(
                        " (remaining increments held by blocked {})\n",
                        names.join(", ")
                    ));
                }
            }
        }
        if let Some(cycle) = &self.cycle {
            let names: Vec<&str> = cycle.iter().map(|&t| sk.thread_name(t)).collect();
            out.push_str(&format!("  wait-for cycle: {}\n", names.join(" -> ")));
        }
        out.push_str(&format!(
            "  witness schedule ({} ops) reaches the stuck state\n",
            self.witness.len()
        ));
        out
    }
}

impl fmt::Display for DeadlockFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadlock: {} thread(s) blocked at the maximal cut",
            self.blocked.len()
        )
    }
}

/// Run the fixpoint and classify any stuck threads.
///
/// Returns `None` when every thread runs to completion in the maximal cut —
/// which, by monotonicity, means no schedule of the skeleton can deadlock.
pub fn deadlock_analysis(sk: &Skeleton) -> Option<DeadlockFinding> {
    let lens = sk.lens();
    let cut = greedy_cut_limited(sk, &lens);
    if cut.complete(&lens) {
        return None;
    }

    // Remaining (unexecuted) increments per counter, and which blocked
    // thread holds them.
    let ncounters = sk.num_counters();
    let mut remaining = vec![0 as Value; ncounters];
    let mut holders: Vec<Vec<usize>> = vec![Vec::new(); ncounters];
    for t in 0..sk.num_threads() {
        for op in &sk.ops(t)[cut.positions[t]..] {
            if let Op::Inc { counter, amount } = *op {
                remaining[counter.0] = remaining[counter.0].saturating_add(amount);
                if !holders[counter.0].contains(&t) {
                    holders[counter.0].push(t);
                }
            }
        }
    }

    let mut blocked = Vec::new();
    let mut waits_on: Vec<(usize, Vec<usize>)> = Vec::new();
    for (t, (&pos, &len)) in cut.positions.iter().zip(lens.iter()).enumerate() {
        if pos >= len {
            continue;
        }
        let at = OpRef {
            thread: t,
            index: pos,
        };
        let Op::Check { counter, level } = sk.op(at) else {
            unreachable!("fixpoint can only block on Check");
        };
        let value = cut.values[counter.0];
        let max_possible = value.saturating_add(remaining[counter.0]);
        let reason = if max_possible < level {
            StuckReason::InsufficientIncrements { max_possible }
        } else {
            let threads = holders[counter.0].clone();
            waits_on.push((t, threads.clone()));
            StuckReason::WaitsOn { threads }
        };
        blocked.push(BlockedThread {
            at,
            counter,
            level,
            value,
            reason,
        });
    }

    let cycle = find_cycle(&waits_on);
    Some(DeadlockFinding {
        blocked,
        cycle,
        witness: cut.schedule,
    })
}

/// Find a cycle in the blocked-thread wait-for graph, if any.
fn find_cycle(edges: &[(usize, Vec<usize>)]) -> Option<Vec<usize>> {
    // Walk successor chains; a revisited node closes a cycle. The graph is
    // tiny (blocked threads only), so a simple path walk per start suffices.
    let succ = |t: usize| -> &[usize] {
        edges
            .iter()
            .find(|(from, _)| *from == t)
            .map(|(_, to)| to.as_slice())
            .unwrap_or(&[])
    };
    for &(start, _) in edges {
        let mut path = vec![start];
        let mut cur = start;
        // Follow the first blocked successor at each node (deterministic
        // walk).
        while let Some(&next) = succ(cur)
            .iter()
            .find(|&&n| !succ(n).is_empty() || n == start)
        {
            if let Some(pos) = path.iter().position(|&p| p == next) {
                let mut cycle = path[pos..].to_vec();
                cycle.push(next);
                return Some(cycle);
            }
            path.push(next);
            cur = next;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::SkeletonBuilder;

    #[test]
    fn complete_program_has_exact_values() {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        b.thread("a").inc(c, 2).check(c, 3);
        b.thread("b").check(c, 1).inc(c, 1);
        let sk = b.build();
        let cut = greedy_cut(&sk);
        assert!(cut.complete(&sk.lens()));
        assert_eq!(cut.values, vec![3]);
        assert!(deadlock_analysis(&sk).is_none());
    }

    #[test]
    fn insufficient_increments_detected() {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        b.thread("a").inc(c, 1).check(c, 5);
        let sk = b.build();
        let finding = deadlock_analysis(&sk).expect("must deadlock");
        assert_eq!(finding.blocked.len(), 1);
        assert_eq!(
            finding.blocked[0].reason,
            StuckReason::InsufficientIncrements { max_possible: 1 }
        );
        assert!(finding.cycle.is_none());
    }

    #[test]
    fn cross_wait_cycle_detected() {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        let d = b.counter("d");
        b.thread("a").check(d, 1).inc(c, 1);
        b.thread("b").check(c, 1).inc(d, 1);
        let sk = b.build();
        let finding = deadlock_analysis(&sk).expect("must deadlock");
        assert_eq!(finding.blocked.len(), 2);
        let cycle = finding.cycle.expect("cycle exists");
        assert!(cycle.len() >= 2);
        for b in &finding.blocked {
            assert!(matches!(b.reason, StuckReason::WaitsOn { .. }));
        }
    }

    #[test]
    fn truncation_limits_respected() {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        b.thread("a").inc(c, 1).inc(c, 1);
        b.thread("b").check(c, 2);
        let sk = b.build();
        let cut = greedy_cut_limited(&sk, &[1, 1]);
        assert_eq!(cut.positions, vec![1, 0]);
        assert_eq!(cut.values, vec![1]);
    }
}
