//! Static race analysis: prove every conflicting shared-variable access pair
//! is ordered by counter edges in all interleavings, or produce a concrete
//! unordered schedule.

use crate::fixpoint::{greedy_cut_limited, Cut};
use crate::hb::MustOrder;
use crate::ir::{Op, OpRef, Skeleton, VarId};

/// Whether an access reads or writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Shared-variable read.
    Read,
    /// Shared-variable write.
    Write,
}

/// A pair of conflicting accesses not ordered by counter synchronization.
#[derive(Clone, Debug)]
pub struct RaceFinding {
    /// The variable both accesses touch.
    pub var: VarId,
    /// The access that fires *first* in the witness schedule — chosen as the
    /// textually *later* access so the witness demonstrates order reversal.
    pub first: (OpRef, AccessKind),
    /// The access appended at the end of the witness schedule.
    pub second: (OpRef, AccessKind),
    /// A minimal executable schedule fragment in which `first` executes and
    /// then `second` executes immediately after — demonstrating the pair is
    /// unordered (program order alone would run `second`'s thread earlier).
    pub witness: Vec<OpRef>,
}

impl RaceFinding {
    /// Render the finding with skeleton names.
    pub fn render(&self, sk: &Skeleton) -> String {
        let mut out = format!(
            "race on {}: {} and {} are unordered\n",
            sk.var_name(self.var),
            sk.describe(self.first.0),
            sk.describe(self.second.0),
        );
        out.push_str("  witness schedule (unordered fragment):\n");
        for r in &self.witness {
            out.push_str(&format!("    {}\n", sk.describe(*r)));
        }
        out
    }
}

/// Check every conflicting pair of reachable accesses.
///
/// `full` must be the untruncated maximal cut (accesses beyond it can never
/// execute and so cannot race). Returns the unordered pairs; an empty vector
/// is a proof of determinacy of shared-variable contents (Section 6): every
/// write is ordered with every conflicting access in all interleavings, so
/// each read observes the same writer in every schedule.
pub fn race_analysis(sk: &Skeleton, mo: &MustOrder, full: &Cut) -> Vec<RaceFinding> {
    // Collect reachable accesses per variable.
    let mut accesses: Vec<Vec<(OpRef, AccessKind)>> = vec![Vec::new(); sk.num_vars()];
    for t in 0..sk.num_threads() {
        for (i, op) in sk.ops(t).iter().enumerate() {
            let r = OpRef {
                thread: t,
                index: i,
            };
            if !full.reached(r) {
                break;
            }
            if let Some((var, is_write)) = op.accessed_var() {
                let kind = if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                accesses[var.0].push((r, kind));
            }
        }
    }

    let mut findings = Vec::new();
    for (v, accs) in accesses.iter().enumerate() {
        for (ai, &(a, ka)) in accs.iter().enumerate() {
            for &(b, kb) in &accs[ai + 1..] {
                if a.thread == b.thread {
                    continue;
                }
                if ka == AccessKind::Read && kb == AccessKind::Read {
                    continue;
                }
                if mo.ordered(a, b) {
                    continue;
                }
                // Unordered conflicting pair. Build a witness in which the
                // pair executes in *reverse* of the natural (thread-index)
                // order, demonstrating both orders are schedulable. `a`
                // belongs to the lower-indexed thread, so run `b` first.
                findings.push(make_finding(sk, VarId(v), (a, ka), (b, kb)));
            }
        }
    }
    findings
}

/// Build the witness: truncate `late`'s thread just before `late`, greedily
/// run (this must execute `early` since the pair is unordered), prune the
/// schedule to the operations actually needed, then append `late`.
fn make_finding(
    sk: &Skeleton,
    var: VarId,
    late: (OpRef, AccessKind),
    early: (OpRef, AccessKind),
) -> RaceFinding {
    let (a, _) = late;
    let (b, _) = early;
    let mut limits = sk.lens();
    limits[a.thread] = a.index;
    let cut = greedy_cut_limited(sk, &limits);
    debug_assert!(cut.reached(b), "unordered pair must be co-reachable");
    debug_assert!(
        cut.positions[a.thread] == a.index,
        "late thread reaches its access"
    );

    // Prune to minimal per-thread prefixes, then re-run the fixpoint on just
    // those prefixes so the emitted schedule is executable by construction.
    // If pruning accidentally cut an op the orderings need, fall back to the
    // full truncated schedule (always executable).
    let needed = prune(sk, &cut, a, b);
    let pruned = greedy_cut_limited(sk, &needed);
    let mut witness = if pruned.positions == needed {
        pruned.schedule
    } else {
        cut.schedule.clone()
    };
    witness.push(a);
    RaceFinding {
        var,
        first: early,
        second: late,
        witness,
    }
}

/// Compute minimal per-thread prefixes that still execute `b` and enable `a`:
/// program-order predecessors of both, plus (transitively) enough increments
/// to satisfy every check inside the kept prefixes.
fn prune(sk: &Skeleton, cut: &Cut, a: OpRef, b: OpRef) -> Vec<usize> {
    let mut needed = vec![0usize; sk.num_threads()];
    needed[a.thread] = needed[a.thread].max(a.index); // a appended separately
    needed[b.thread] = needed[b.thread].max(b.index + 1);
    loop {
        // Total increments supplied by the kept prefixes, per counter.
        let mut supplied = vec![0u64; sk.num_counters()];
        for (t, &kept) in needed.iter().enumerate() {
            for op in &sk.ops(t)[..kept] {
                if let Op::Inc { counter, amount } = *op {
                    supplied[counter.0] += amount;
                }
            }
        }
        // Find an unsatisfied check inside a kept prefix.
        let mut deficit: Option<(usize, u64)> = None; // (counter, still missing)
        'scan: for (t, &kept) in needed.iter().enumerate() {
            for op in &sk.ops(t)[..kept] {
                if let Op::Check { counter, level } = *op {
                    if supplied[counter.0] < level {
                        deficit = Some((counter.0, level - supplied[counter.0]));
                        break 'scan;
                    }
                }
            }
        }
        let Some((counter, mut missing)) = deficit else {
            return needed;
        };
        // Extend prefixes with further increments of that counter, taking
        // them in greedy-schedule order (earliest available first).
        let mut extended = false;
        for r in &cut.schedule {
            if missing == 0 {
                break;
            }
            if r.index < needed[r.thread] {
                continue; // already kept
            }
            if let Op::Inc { counter: c, amount } = sk.op(*r) {
                if c.0 == counter {
                    needed[r.thread] = needed[r.thread].max(r.index + 1);
                    missing = missing.saturating_sub(amount);
                    extended = true;
                }
            }
        }
        debug_assert!(
            extended,
            "greedy schedule satisfied every check it executed, so increments must exist"
        );
        if !extended {
            return needed; // defensive: fall back to unpruned prefixes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixpoint::greedy_cut;
    use crate::ir::SkeletonBuilder;

    #[test]
    fn guarded_pair_is_race_free() {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        let x = b.var("x");
        b.thread("w").write(x).inc(c, 1);
        b.thread("r").check(c, 1).read(x);
        let sk = b.build();
        let mo = MustOrder::new(&sk);
        let full = greedy_cut(&sk);
        assert!(race_analysis(&sk, &mo, &full).is_empty());
    }

    #[test]
    fn unguarded_pair_reported_with_executable_witness() {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        let x = b.var("x");
        // Reader checks level 0: a no-op guard.
        b.thread("w").write(x).inc(c, 1);
        b.thread("r").check(c, 0).read(x);
        let sk = b.build();
        let mo = MustOrder::new(&sk);
        let full = greedy_cut(&sk);
        let findings = race_analysis(&sk, &mo, &full);
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(sk.var_name(f.var), "x");
        // The witness must execute the read before the write.
        let read = OpRef {
            thread: 1,
            index: 1,
        };
        let write = OpRef {
            thread: 0,
            index: 0,
        };
        let pos_read = f.witness.iter().position(|r| *r == read).unwrap();
        let pos_write = f.witness.iter().position(|r| *r == write).unwrap();
        assert!(pos_read < pos_write);
    }

    #[test]
    fn witness_is_pruned_to_relevant_threads() {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        let x = b.var("x");
        let y = b.var("y");
        b.thread("w").write(x);
        b.thread("r").read(x);
        // An unrelated well-synchronized pair that should not bloat the witness.
        b.thread("other-w").write(y).inc(c, 1);
        b.thread("other-r").check(c, 1).read(y);
        let sk = b.build();
        let mo = MustOrder::new(&sk);
        let full = greedy_cut(&sk);
        let findings = race_analysis(&sk, &mo, &full);
        assert_eq!(findings.len(), 1);
        for r in &findings[0].witness {
            assert!(
                r.thread < 2,
                "witness should only involve the racing threads"
            );
        }
    }

    #[test]
    fn two_unordered_writes_race() {
        let mut b = SkeletonBuilder::new();
        let x = b.var("x");
        b.thread("a").write(x);
        b.thread("b").write(x);
        let sk = b.build();
        let mo = MustOrder::new(&sk);
        let full = greedy_cut(&sk);
        assert_eq!(race_analysis(&sk, &mo, &full).len(), 1);
    }
}
