//! Skeleton extraction from a recorded `mc-detcheck` run.
//!
//! Enable recording on a [`mc_detcheck::Checker`], drive the program once
//! (typically sequentially — one logical thread at a time, each with its own
//! `ThreadCtx`), and convert the event log into a [`Skeleton`] for static
//! verification. The per-tid subsequences of the log are each thread's
//! program order, so the extraction is exact for straight-line protocols:
//! the skeleton's interleavings are precisely the executions the real
//! program can exhibit.

use std::collections::HashMap;

use mc_detcheck::{RecordedEvent, RecordedOp};

use crate::ir::{Op, Skeleton, SkeletonBuilder};

/// Convert a recorded event log into a skeleton.
///
/// Threads appear in order of each tid's first event and are named
/// `t{tid}`; counters and variables are interned by their recorded labels.
pub fn skeleton_from_events(events: &[RecordedEvent]) -> Skeleton {
    let mut b = SkeletonBuilder::new();
    let mut counters = HashMap::new();
    let mut vars = HashMap::new();
    let mut threads: Vec<(usize, Vec<Op>)> = Vec::new();

    for ev in events {
        let op = match &ev.op {
            RecordedOp::Increment { counter, amount } => {
                let id = *counters
                    .entry(counter.clone())
                    .or_insert_with(|| b.counter(counter.clone()));
                Op::Inc {
                    counter: id,
                    amount: *amount,
                }
            }
            RecordedOp::Check { counter, level } => {
                let id = *counters
                    .entry(counter.clone())
                    .or_insert_with(|| b.counter(counter.clone()));
                Op::Check {
                    counter: id,
                    level: *level,
                }
            }
            RecordedOp::Read { var } => {
                let id = *vars
                    .entry(var.clone())
                    .or_insert_with(|| b.var(var.clone()));
                Op::Read { var: id }
            }
            RecordedOp::Write { var } => {
                let id = *vars
                    .entry(var.clone())
                    .or_insert_with(|| b.var(var.clone()));
                Op::Write { var: id }
            }
        };
        match threads.iter_mut().find(|(tid, _)| *tid == ev.tid) {
            Some((_, ops)) => ops.push(op),
            None => threads.push((ev.tid, vec![op])),
        }
    }

    for (tid, ops) in threads {
        let mut tb = b.thread(format!("t{tid}"));
        for op in ops {
            tb = tb.push(op);
        }
        let _ = tb;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::verify;
    use mc_detcheck::{Checker, Shared, TrackedCounter};

    /// Drive the paper's Section 6 example sequentially, record it, and
    /// certify the extracted skeleton.
    #[test]
    fn recorded_section6_example_certifies() {
        let checker = Checker::new();
        checker.enable_recording();
        let root = checker.register_root();
        let a = root.fork();
        let b = root.fork();
        let x = Shared::new("x", 3);
        let c = TrackedCounter::named("c");

        // thread A: Check(0); x = x+1; Increment(1)
        c.check(&a, 0);
        x.update(&a, |v| *v += 1);
        c.increment(&a, 1);
        // thread B: Check(1); x = x*2; Increment(1)
        c.check(&b, 1);
        x.update(&b, |v| *v *= 2);
        c.increment(&b, 1);

        let sk = skeleton_from_events(&checker.recorded_events());
        assert_eq!(sk.num_threads(), 2);
        assert_eq!(sk.total_ops(), 6);
        let v = verify(&sk);
        let cert = v.certificate().expect("section 6 example certifies");
        assert_eq!(cert.final_values, vec![2]);
        assert!(cert.sequentially_equivalent());
    }

    /// The erroneous variant (both threads Check(0)) is rejected with a race
    /// on `x` — statically, from one recorded run.
    #[test]
    fn recorded_erroneous_variant_is_rejected() {
        let checker = Checker::new();
        checker.enable_recording();
        let root = checker.register_root();
        let a = root.fork();
        let b = root.fork();
        let x = Shared::new("x", 3);
        let c = TrackedCounter::named("c");

        c.check(&a, 0);
        x.update(&a, |v| *v += 1);
        c.increment(&a, 1);
        c.check(&b, 0); // bug: does not wait for a's increment
        x.update(&b, |v| *v *= 2);
        c.increment(&b, 1);

        let sk = skeleton_from_events(&checker.recorded_events());
        let v = verify(&sk);
        let rej = v.rejection().expect("race must be found");
        assert_eq!(rej.races.len(), 1);
        assert!(rej.render(&sk).contains("race on x"));
    }
}
