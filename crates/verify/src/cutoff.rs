//! The cutoff engine: one verdict for **every** thread count.
//!
//! [`param_verify`] decides the deadlock/race/seq-eq verdict of a
//! [`Template`] for *all* parameter assignments at once, by computing a
//! **cutoff** `c`: a size at which the verdict provably stops changing, so
//! the verdict at `c` certifies every `N ≥ c` and brute-force enumeration
//! covers every `N < c`.
//!
//! ## Why a cutoff exists
//!
//! The skeleton transition system is monotone (counters only grow, checks
//! never consume), so greedy scheduling is confluent and the greedy cut is
//! *the* canonical behaviour of an instantiation. Adding a replica to a role
//! only **adds** increments and threads; it never removes an enabled
//! transition from the existing replicas, so each counter's maximal value is
//! non-decreasing in every parameter, and a template-level check site whose
//! level is linear in the parameters is discharged uniformly once the
//! supplied increments outgrow it ("Lost in Abstraction": monotone systems
//! admit parameterized proofs). Concretely, once every role has distinct
//! first / interior / last replicas and every level expression is past its
//! crossover with the supplied-increment expression, one more replica
//! changes the greedy cut only by stamping out another interior copy — the
//! verdict is frozen.
//!
//! ## What the engine actually checks
//!
//! The crossover point is not computed symbolically; it is *detected and
//! then validated*. For a candidate `c` (starting at the structural minimum
//! — 3 when the template uses neighbour selectors or replica guards, else
//! 2, and at least `2·max_offset + 1`), the engine brute-force verifies
//! **every** instantiation with all parameters in `1..=c+2` and accepts `c`
//! as the cutoff iff, on the stabilization band (all parameters in
//! `[c, c+2]`):
//!
//! 1. the [`VerdictClass`] is identical at every band point;
//! 2. the *template-level finding sites* (which role/op deadlocks, which
//!    pairs race, mapped through [`Instance::site`]) are identical at every
//!    band point — the finding is replica-generic, not an artefact of one
//!    size;
//! 3. each counter family's total greedy-cut value is an exact affine
//!    function of the parameters across the band — growth is uniform, no
//!    latent crossover is pending;
//! 4. family totals are monotonically non-decreasing along every `+1` edge
//!    of the band — the monotonicity premise itself, observed where the
//!    claim applies. (Below the band the premise can genuinely fail for
//!    *topology* templates: growing the role re-shapes the edge replicas'
//!    bodies, e.g. the old last replica gains a `next()` neighbour check,
//!    so a buggy template may certify at `N = 1` yet deadlock with a
//!    smaller cut at `N = 2`. Those sizes are exhaustively enumerated
//!    instead of extrapolated.)
//!
//! A class flip inside the band (or non-affine growth) rejects the
//! candidate and the search moves to `c + 1`; a template that never
//! stabilizes within the bound reports [`CutoffError::NoStabilization`]
//! rather than guessing. Every accepted cutoff therefore ships with its own
//! validation data: the full grid of enumerated verdicts up to `c + 2`
//! ([`CutoffProof::enumerated`]), which the property tests and the E12
//! experiment re-derive independently.
//!
//! Rejections carry a [`ParamWitness`]: the **smallest failing assignment**
//! (minimal parameter sum, then lexicographic), its lowered [`Instance`],
//! and the concrete [`Rejection`] — replayable through the `mc-chaos`
//! skeleton interpreter like any other static counterexample.

use std::collections::BTreeSet;
use std::fmt;

use crate::fixpoint::greedy_cut;
use crate::ir::OpRef;
use crate::template::{Instance, InstantiateError, RoleId, Template};
use crate::verdict::{verify, Certificate, Rejection, Verdict};

/// The shape of a verdict, comparable across instantiation sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VerdictClass {
    /// Deadlock-free and race-free (a certificate was issued).
    pub certified: bool,
    /// A deadlock finding is present.
    pub deadlock: bool,
    /// At least one race finding is present.
    pub race: bool,
    /// The Section 6 sequential precondition holds.
    pub seq_eq: bool,
}

impl VerdictClass {
    /// Classify a concrete verdict.
    pub fn of(v: &Verdict) -> Self {
        match v {
            Verdict::Certified(c) => VerdictClass {
                certified: true,
                deadlock: false,
                race: false,
                seq_eq: c.sequentially_equivalent(),
            },
            Verdict::Rejected(r) => VerdictClass {
                certified: false,
                deadlock: r.deadlock.is_some(),
                race: !r.races.is_empty(),
                seq_eq: r.seq_eq.is_none(),
            },
        }
    }
}

impl fmt::Display for VerdictClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.certified {
            write!(f, "certified (seq-eq: {})", self.seq_eq)
        } else {
            write!(
                f,
                "rejected (deadlock: {}, race: {}, seq-eq: {})",
                self.deadlock, self.race, self.seq_eq
            )
        }
    }
}

/// A template-level finding profile: which sites deadlock and which site
/// pairs race, independent of the instantiation size.
type SiteProfile = (
    BTreeSet<(RoleId, usize)>,
    BTreeSet<((RoleId, usize), (RoleId, usize))>,
);

/// The validation data behind an accepted cutoff.
#[derive(Clone, Debug)]
pub struct CutoffProof {
    /// The accepted cutoff.
    pub cutoff: u64,
    /// Every enumerated assignment (all parameters in `1..=cutoff+2`) with
    /// its brute-force verdict class, in grid order.
    pub enumerated: Vec<(Vec<u64>, VerdictClass)>,
    /// The class shared by every band point — the verdict claimed for all
    /// assignments with every parameter `≥ cutoff`.
    pub stable_class: VerdictClass,
    /// Enumerated assignments (necessarily below the band) whose class
    /// differs from `stable_class` — small-size degenerate behaviour,
    /// reported rather than hidden.
    pub exceptions: Vec<Vec<u64>>,
    /// Evidence check 2: finding sites identical across the band.
    pub uniform_sites: bool,
    /// Evidence check 3: family totals affine in the parameters on the band.
    pub affine_totals: bool,
    /// Evidence check 4: family totals non-decreasing along every band edge.
    pub monotone_totals: bool,
}

impl CutoffProof {
    /// Number of brute-forced instantiations.
    pub fn instantiations(&self) -> usize {
        self.enumerated.len()
    }

    /// The enumerated class at an assignment, if it was in the grid.
    pub fn class_at(&self, assign: &[u64]) -> Option<VerdictClass> {
        self.enumerated
            .iter()
            .find(|(a, _)| a == assign)
            .map(|&(_, c)| c)
    }
}

/// A parameterized rejection: the smallest failing assignment with its
/// lowered instance and concrete findings, replayable through `mc-chaos`.
#[derive(Clone, Debug)]
pub struct ParamWitness {
    /// The smallest failing parameter assignment (minimal sum, then lex).
    pub assign: Vec<u64>,
    /// The template lowered at `assign`.
    pub instance: Instance,
    /// The findings at `assign`.
    pub rejection: Rejection,
}

/// Result of [`param_verify`]: one verdict for every parameter assignment.
#[derive(Clone, Debug)]
pub enum ParamVerdict {
    /// Certified at every band point: deadlock- and race-free for all
    /// assignments with every parameter `≥ cutoff` (and each smaller
    /// assignment's verdict is in the proof's enumeration).
    Certified {
        /// The validation data.
        proof: CutoffProof,
        /// The certificate at the all-parameters-=-cutoff instantiation.
        at_cutoff: Certificate,
    },
    /// Rejected at every band point, with a concrete witness at the
    /// smallest failing assignment.
    Rejected {
        /// The validation data.
        proof: CutoffProof,
        /// The smallest failing assignment's findings (boxed: the lowered
        /// instance dwarfs the certified variant).
        witness: Box<ParamWitness>,
    },
}

impl ParamVerdict {
    /// True if certified for all sizes past the cutoff.
    pub fn is_certified(&self) -> bool {
        matches!(self, ParamVerdict::Certified { .. })
    }

    /// The proof, whichever the verdict.
    pub fn proof(&self) -> &CutoffProof {
        match self {
            ParamVerdict::Certified { proof, .. } | ParamVerdict::Rejected { proof, .. } => proof,
        }
    }

    /// The witness, if rejected.
    pub fn witness(&self) -> Option<&ParamWitness> {
        match self {
            ParamVerdict::Certified { .. } => None,
            ParamVerdict::Rejected { witness, .. } => Some(witness),
        }
    }

    /// Render a one-paragraph summary with template names.
    pub fn render(&self, t: &Template) -> String {
        let proof = self.proof();
        let params: Vec<&str> = (0..t.num_params()).map(|i| t.param_name(i)).collect();
        let mut out = format!(
            "cutoff {} over ({}) — {} instantiations enumerated, class for all {} >= {}: {}",
            proof.cutoff,
            params.join(", "),
            proof.instantiations(),
            params.join(", "),
            proof.cutoff,
            proof.stable_class,
        );
        if !proof.exceptions.is_empty() {
            out.push_str(&format!(
                "; small-size exceptions at {:?}",
                proof.exceptions
            ));
        }
        if let ParamVerdict::Rejected { witness, .. } = self {
            out.push_str(&format!(
                "\nsmallest failing assignment {:?}:\n{}",
                witness.assign,
                witness.rejection.render(&witness.instance.skeleton)
            ));
        }
        out
    }
}

/// Why no cutoff could be established.
#[derive(Clone, Debug)]
pub enum CutoffError {
    /// The verdict (or its evidence) kept changing up to the search bound —
    /// the template is outside the fragment the monotonicity argument
    /// covers (e.g. a level growing faster than its supplied increments
    /// crosses over at an unexplored size).
    NoStabilization {
        /// The largest candidate cutoff tried.
        max_tried: u64,
        /// The class observed at the last band, if it was at least
        /// class-stable (evidence checks failed instead).
        last_class: Option<VerdictClass>,
    },
    /// An instantiation in the enumerated grid failed to lower.
    Instantiate(InstantiateError),
}

impl fmt::Display for CutoffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CutoffError::NoStabilization {
                max_tried,
                last_class,
            } => {
                write!(f, "verdict did not stabilize by cutoff {max_tried}")?;
                if let Some(c) = last_class {
                    write!(f, " (last band class: {c})")?;
                }
                Ok(())
            }
            CutoffError::Instantiate(e) => write!(f, "instantiation failed: {e}"),
        }
    }
}

impl std::error::Error for CutoffError {}

impl From<InstantiateError> for CutoffError {
    fn from(e: InstantiateError) -> Self {
        CutoffError::Instantiate(e)
    }
}

/// Everything the engine needs to know about one grid point.
struct Point {
    class: VerdictClass,
    sites: SiteProfile,
    /// Greedy-cut total per counter family.
    totals: Vec<u64>,
}

fn evaluate_point(t: &Template, assign: &[u64]) -> Result<Point, CutoffError> {
    let inst = t.instantiate_full(assign)?;
    let verdict = verify(&inst.skeleton);
    let class = VerdictClass::of(&verdict);
    let mut dl_sites = BTreeSet::new();
    let mut race_sites = BTreeSet::new();
    if let Verdict::Rejected(rej) = &verdict {
        if let Some(dl) = &rej.deadlock {
            for b in &dl.blocked {
                dl_sites.insert(inst.site(b.at.thread, b.at.index));
            }
        }
        for race in &rej.races {
            let site = |r: OpRef| inst.site(r.thread, r.index);
            let (a, b) = (site(race.first.0), site(race.second.0));
            race_sites.insert(if a <= b { (a, b) } else { (b, a) });
        }
    }
    // Family totals from the greedy cut — defined whether or not the
    // instantiation certifies.
    let cut = greedy_cut(&inst.skeleton);
    let mut totals = vec![0u64; inst.counter_families];
    for (c, &v) in cut.values.iter().enumerate() {
        totals[inst.counter_origin[c].0] = totals[inst.counter_origin[c].0].saturating_add(v);
    }
    Ok(Point {
        class,
        sites: (dl_sites, race_sites),
        totals,
    })
}

/// Enumerate the grid `1..=hi` in every dimension, in lexicographic order.
fn grid(dims: usize, hi: u64) -> Vec<Vec<u64>> {
    let mut out = vec![Vec::new()];
    for _ in 0..dims {
        let mut next = Vec::with_capacity(out.len() * hi as usize);
        for prefix in &out {
            for v in 1..=hi {
                let mut p = prefix.clone();
                p.push(v);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

/// Exact affine fit of family totals over the band: derive coefficients
/// from the corner points, then require every band point to match.
fn affine_on_band(points: &[(&Vec<u64>, &Point)], c: u64, dims: usize, families: usize) -> bool {
    let at = |assign: &[u64]| -> Option<&Point> {
        points
            .iter()
            .find(|(a, _)| a.as_slice() == assign)
            .map(|&(_, p)| p)
    };
    let base = vec![c; dims];
    let Some(p0) = at(&base) else { return false };
    for fam in 0..families {
        let v0 = p0.totals[fam] as i128;
        let mut coeffs = Vec::with_capacity(dims);
        for d in 0..dims {
            let mut corner = base.clone();
            corner[d] += 1;
            let Some(pd) = at(&corner) else { return false };
            coeffs.push(pd.totals[fam] as i128 - v0);
        }
        let a0 = v0
            - coeffs
                .iter()
                .zip(&base)
                .map(|(a, &x)| a * x as i128)
                .sum::<i128>();
        for (assign, p) in points {
            let predicted = a0
                + coeffs
                    .iter()
                    .zip(assign.iter())
                    .map(|(a, &x)| a * x as i128)
                    .sum::<i128>();
            if predicted != p.totals[fam] as i128 {
                return false;
            }
        }
    }
    true
}

/// Default search bound for [`param_verify`].
pub const DEFAULT_MAX_CUTOFF: u64 = 8;

/// Verify a template for **all** parameter assignments, searching for a
/// cutoff up to [`DEFAULT_MAX_CUTOFF`]. See the [module docs](self).
pub fn param_verify(t: &Template) -> Result<ParamVerdict, CutoffError> {
    param_verify_bounded(t, DEFAULT_MAX_CUTOFF)
}

/// [`param_verify`] with an explicit search bound.
pub fn param_verify_bounded(t: &Template, max_cutoff: u64) -> Result<ParamVerdict, CutoffError> {
    let dims = t.num_params();
    if dims == 0 {
        // Degenerate: a concrete skeleton in template clothing. The single
        // instantiation *is* the proof.
        let point = evaluate_point(t, &[])?;
        let proof = CutoffProof {
            cutoff: 0,
            enumerated: vec![(Vec::new(), point.class)],
            stable_class: point.class,
            exceptions: Vec::new(),
            uniform_sites: true,
            affine_totals: true,
            monotone_totals: true,
        };
        return finish(t, proof);
    }

    // Structural minimum: roles with topology need first/interior/last
    // replicas (and offsets need reach) before one more replica is just
    // another interior copy.
    let mut start = if t.has_topology() { 3 } else { 2 };
    start = start.max(2 * t.max_offset() + 1);
    let start = start.min(max_cutoff);

    let mut cache: Vec<(Vec<u64>, Point)> = Vec::new();
    let mut last_class = None;
    for c in start..=max_cutoff {
        // Evaluate every grid point once, reusing earlier candidates' work.
        for assign in grid(dims, c + 2) {
            if cache.iter().any(|(a, _)| *a == assign) {
                continue;
            }
            let point = evaluate_point(t, &assign)?;
            cache.push((assign, point));
        }
        let in_grid: Vec<(&Vec<u64>, &Point)> = cache
            .iter()
            .filter(|(a, _)| a.iter().all(|&v| v <= c + 2))
            .map(|(a, p)| (a, p))
            .collect();
        let band: Vec<(&Vec<u64>, &Point)> = in_grid
            .iter()
            .filter(|(a, _)| a.iter().all(|&v| v >= c))
            .copied()
            .collect();

        // Check 1: one class across the band.
        let stable_class = band[0].1.class;
        if band.iter().any(|(_, p)| p.class != stable_class) {
            last_class = None;
            continue;
        }
        last_class = Some(stable_class);

        // Check 2: replica-generic finding sites.
        let uniform_sites = band.iter().all(|(_, p)| p.sites == band[0].1.sites);
        // Check 3: affine family totals on the band.
        let families = band[0].1.totals.len();
        let affine_totals = affine_on_band(&band, c, dims, families);
        // Check 4: monotone totals along every +1 edge of the band. Edges
        // below the band are exempt: growing a *topology* role re-shapes the
        // edge replicas' bodies (a new last replica gives the old one a
        // `next()` neighbour check), so totals may legitimately drop at
        // small sizes — and every sub-band point is exhaustively enumerated
        // regardless.
        let monotone_totals = band.iter().all(|(a, p)| {
            (0..dims).all(|d| {
                let mut succ = (*a).clone();
                succ[d] += 1;
                in_grid
                    .iter()
                    .find(|(b, _)| **b == succ)
                    .is_none_or(|(_, q)| p.totals.iter().zip(&q.totals).all(|(x, y)| x <= y))
            })
        });
        if !(uniform_sites && affine_totals && monotone_totals) {
            continue;
        }

        let mut enumerated: Vec<(Vec<u64>, VerdictClass)> = in_grid
            .iter()
            .map(|(a, p)| ((*a).clone(), p.class))
            .collect();
        enumerated.sort();
        let exceptions = enumerated
            .iter()
            .filter(|(_, cl)| *cl != stable_class)
            .map(|(a, _)| a.clone())
            .collect();
        let proof = CutoffProof {
            cutoff: c,
            enumerated,
            stable_class,
            exceptions,
            uniform_sites,
            affine_totals,
            monotone_totals,
        };
        return finish(t, proof);
    }
    Err(CutoffError::NoStabilization {
        max_tried: max_cutoff,
        last_class,
    })
}

/// Package the proof into the final verdict, materializing the certificate
/// or the smallest-failing-assignment witness.
fn finish(t: &Template, proof: CutoffProof) -> Result<ParamVerdict, CutoffError> {
    if proof.stable_class.certified {
        let at = vec![proof.cutoff.max(1); t.num_params()];
        let inst = t.instantiate_full(&at)?;
        match verify(&inst.skeleton) {
            Verdict::Certified(at_cutoff) => Ok(ParamVerdict::Certified { proof, at_cutoff }),
            Verdict::Rejected(_) => unreachable!("band point re-verification flipped"),
        }
    } else {
        // Smallest failing assignment: minimal parameter sum, then lex.
        let mut failing: Vec<&Vec<u64>> = proof
            .enumerated
            .iter()
            .filter(|(_, cl)| !cl.certified)
            .map(|(a, _)| a)
            .collect();
        failing.sort_by_key(|a| (a.iter().sum::<u64>(), (*a).clone()));
        let assign = failing
            .first()
            .expect("rejected stable class implies a failing point")
            .to_vec();
        let instance = t.instantiate_full(&assign)?;
        match verify(&instance.skeleton) {
            Verdict::Rejected(rejection) => Ok(ParamVerdict::Rejected {
                proof,
                witness: Box::new(ParamWitness {
                    assign,
                    instance,
                    rejection,
                }),
            }),
            Verdict::Certified(_) => unreachable!("enumerated rejection re-verified as certified"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TemplateBuilder;

    fn fan_in() -> Template {
        let mut b = TemplateBuilder::new();
        let n = b.param("N");
        let workers = b.role("worker", n);
        let done = b.counter("done");
        let slot = b.var_per("slot", workers);
        b.body(workers).write(slot.me()).inc(done, 1);
        b.thread("combiner").check(done, n).read_all(slot);
        b.build()
    }

    #[test]
    fn fan_in_certified_for_all_n() {
        let v = param_verify(&fan_in()).expect("stabilizes");
        let ParamVerdict::Certified { proof, at_cutoff } = v else {
            panic!("fan_in must certify");
        };
        assert_eq!(proof.cutoff, 2);
        assert!(proof.exceptions.is_empty());
        assert!(proof.uniform_sites && proof.affine_totals && proof.monotone_totals);
        // Grid is 1..=4 in one dimension.
        assert_eq!(proof.instantiations(), 4);
        assert_eq!(at_cutoff.final_values, vec![2]);
    }

    #[test]
    fn off_by_one_level_rejected_with_smallest_witness() {
        let mut b = TemplateBuilder::new();
        let n = b.param("N");
        let workers = b.role("worker", n);
        let done = b.counter("done");
        let slot = b.var_per("slot", workers);
        b.body(workers).write(slot.me()).inc(done, 1);
        // The classic parameterized off-by-one: waits for N-1 of N arrivals.
        b.thread("combiner").check(done, n - 1u64).read_all(slot);
        let t = b.build();
        let v = param_verify(&t).expect("stabilizes");
        let ParamVerdict::Rejected { proof, witness } = v else {
            panic!("off-by-one fan_in must be rejected");
        };
        assert!(proof.stable_class.race);
        assert!(!proof.stable_class.deadlock);
        // Smallest failing N is 1: with level 0 the only slot is unguarded.
        assert_eq!(witness.assign, vec![1]);
        assert!(!witness.rejection.races.is_empty());
    }

    #[test]
    fn raised_level_deadlocks_for_all_n() {
        let mut b = TemplateBuilder::new();
        let n = b.param("N");
        let workers = b.role("worker", n);
        let done = b.counter("done");
        b.body(workers).inc(done, 1);
        b.thread("combiner").check(done, n + 1u64);
        let t = b.build();
        let v = param_verify(&t).expect("stabilizes");
        assert!(!v.is_certified());
        let w = v.witness().unwrap();
        assert_eq!(w.assign, vec![1]);
        let dl = w.rejection.deadlock.as_ref().expect("deadlock finding");
        assert_eq!(dl.blocked.len(), 1);
    }

    #[test]
    fn two_parameter_template_gets_grid_cutoff() {
        // N producers, M consumers each waiting for all N.
        let mut b = TemplateBuilder::new();
        let n = b.param("N");
        let m = b.param("M");
        let producers = b.role("producer", n);
        let consumers = b.role("consumer", m);
        let done = b.counter("done");
        let slot = b.var_per("slot", producers);
        b.body(producers).write(slot.me()).inc(done, 1);
        b.body(consumers).check(done, n).read_all(slot);
        let t = b.build();
        let v = param_verify(&t).expect("stabilizes");
        let ParamVerdict::Certified { proof, .. } = v else {
            panic!("fan_in_fan_out must certify");
        };
        assert_eq!(proof.cutoff, 2);
        assert_eq!(proof.instantiations(), 16); // 4 x 4 grid
        assert!(proof.class_at(&[1, 4]).unwrap().certified);
    }

    #[test]
    fn zero_param_template_is_concrete_verification() {
        let mut b = TemplateBuilder::new();
        let c = b.counter("c");
        b.thread("t").inc(c, 1).check(c, 1);
        let t = b.build();
        let v = param_verify(&t).expect("trivial");
        assert!(v.is_certified());
        assert_eq!(v.proof().cutoff, 0);
    }

    #[test]
    fn render_mentions_cutoff_and_witness() {
        let v = param_verify(&fan_in()).unwrap();
        let s = v.render(&fan_in());
        assert!(s.contains("cutoff 2"), "{s}");
        assert!(s.contains("certified"), "{s}");
    }
}
