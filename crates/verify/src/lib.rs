//! # Static determinacy verification for counter programs
//!
//! Section 6 of the paper claims that counter-only synchronization plus
//! guarded shared variables yields deterministic results in **every**
//! interleaving. `mc-detcheck` checks one *observed* execution; this crate
//! proves the claim *statically*, over all interleavings, for programs
//! abstracted to a [synchronization skeleton](Skeleton): per-thread
//! sequences of `Inc(counter, amount)`, `Check(counter, level)`,
//! `Read(var)`, `Write(var)`.
//!
//! The key leverage is monotonicity ("Lost in Abstraction"): counters only
//! grow and checks are the only blocking operation, so an enabled operation
//! can never become disabled. Greedy scheduling is therefore *confluent* and
//! computes the unique maximal reachable cut — making every analysis here
//! exact on the IR, not just sound:
//!
//! * [`greedy_cut`] / [`deadlock_analysis`] — each counter's maximum
//!   achievable value; statically never-satisfiable checks; wait-for cycles.
//!   The whole-program analogue of `Supervisor::NeverSatisfiable`.
//! * [`MustOrder`] / [`race_analysis`] — must-happen-before via thread
//!   truncation: `a` precedes `b` in all schedules iff `b` is unreachable
//!   with `a`'s thread stopped just before `a`. Unordered conflicting
//!   accesses are reported with a minimal executable witness schedule.
//! * [`sequential_equivalence`] — the Section 6 theorem's sequential
//!   precondition (declared thread order satisfies every check it reaches).
//!
//! [`verify`] bundles the three into a [`Verdict`]: a determinacy
//! [`Certificate`] or a [`Rejection`] carrying concrete counterexamples.
//! Skeletons come from the [`SkeletonBuilder`] API, from the
//! [models] of the `mc-algos`/`mc-patterns` protocols, or from a
//! [recorded](record::skeleton_from_events) `mc-detcheck` run.
//!
//! On top of the concrete layer sits **parameterized verification**:
//! [`Template`]s declare replicated thread roles (`N` producers, `M`
//! consumers) with amounts and levels as [linear expressions](LinExpr) in
//! the parameters, [`Template::instantiate`] lowers them to concrete
//! skeletons, and [`param_verify`] computes a *cutoff* `c` — exploiting the
//! same monotonicity (adding a replica only grows reachable counter
//! values) — such that the verdict at `c` certifies **every** `N ≥ c`,
//! validated internally by brute-force enumeration of all instantiations up
//! to `c + 2`. [`models::template_corpus`] models the shipped protocols at
//! symbolic scale; parameterized rejections carry a [`ParamWitness`] at the
//! smallest failing size, replayable through the `mc-chaos` interpreter.
//!
//! ```
//! use mc_verify::{SkeletonBuilder, verify};
//!
//! let mut b = SkeletonBuilder::new();
//! let done = b.counter("done");
//! let x = b.var("x");
//! b.thread("producer").write(x).inc(done, 1);
//! b.thread("consumer").check(done, 1).read(x);
//! let sk = b.build();
//! assert!(verify(&sk).is_certified());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod concrete;
mod cutoff;
mod fixpoint;
mod hb;
mod ir;
pub mod models;
mod mutate;
mod race;
pub mod record;
mod seqeq;
mod template;
mod verdict;

pub use cutoff::{
    param_verify, param_verify_bounded, CutoffError, CutoffProof, ParamVerdict, ParamWitness,
    VerdictClass, DEFAULT_MAX_CUTOFF,
};
pub use fixpoint::{
    deadlock_analysis, greedy_cut, greedy_cut_limited, BlockedThread, Cut, DeadlockFinding,
    StuckReason,
};
pub use hb::MustOrder;
pub use ir::{CounterId, Op, OpRef, Skeleton, SkeletonBuilder, ThreadBuilder, VarId};
pub use mutate::{
    all_mutations, all_template_mutations, Mutation, TemplateMutation, TemplateMutationKind,
};
pub use race::{race_analysis, AccessKind, RaceFinding};
pub use seqeq::{sequential_equivalence, SeqEqViolation};
pub use template::{
    CSel, EvalError, Guard, Instance, InstantiateError, LinExpr, Param, RoleId, TCounter,
    TCounterFam, TVar, TVarFam, TVarFamWide, TVarWide, Template, TemplateBuilder,
    TemplateThreadBuilder, VSel,
};
pub use verdict::{verify, Certificate, Rejection, Verdict};
