//! Execute a skeleton on real `mc-counter` counters under a
//! [`Supervisor`] — the bridge between the static verdict and the dynamic
//! stall diagnosis.
//!
//! Increments are delivered directly at their program points (no upfront
//! obligations), so when the run *quiesces* — every thread has either
//! finished or is suspended in a `wait` — the counters hold exactly the
//! values of the static greedy fixpoint: by monotonicity, a quiescent state
//! with no enabled operation *is* the maximal cut. At that point
//! [`Supervisor::diagnose`] must agree with the static verdict:
//! `NeverSatisfiable` for every counter blocking a statically-stuck thread,
//! and no report at all (all threads finished) for a statically
//! deadlock-free skeleton — no false `Slow`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mc_counter::{Counter, FailureInfo, MonotonicCounter, StallReport, Supervisor};

use crate::ir::{Op, Skeleton};

/// Result of running a skeleton to quiescence on real counters.
#[derive(Debug)]
pub struct ConcreteRun {
    /// True if every thread ran to completion.
    pub completed: bool,
    /// Threads that ended suspended in a `wait` (released by poisoning at
    /// teardown).
    pub blocked_threads: usize,
    /// The supervisor's diagnosis at quiescence.
    pub report: StallReport,
}

/// Run every thread of the skeleton on real [`Counter`]s, wait for
/// quiescence, diagnose, then poison-and-join.
///
/// Panics if the run fails to quiesce within `timeout` (a liveness bug in
/// the counters themselves, not a property of the skeleton).
pub fn run_concrete(sk: &Skeleton, timeout: Duration) -> ConcreteRun {
    let counters: Vec<Arc<Counter>> = (0..sk.num_counters())
        .map(|_| Arc::new(Counter::default()))
        .collect();
    let supervisor = Supervisor::new();
    for (i, c) in counters.iter().enumerate() {
        supervisor.register(sk.counter_name(crate::ir::CounterId(i)), c);
    }

    let finished = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for t in 0..sk.num_threads() {
        let ops = sk.ops(t).to_vec();
        let counters = counters.clone();
        let finished = Arc::clone(&finished);
        handles.push(std::thread::spawn(move || {
            for op in ops {
                match op {
                    Op::Inc { counter, amount } => counters[counter.0].increment(amount),
                    Op::Check { counter, level } => {
                        if counters[counter.0].wait(level).is_err() {
                            // Poisoned at teardown: this thread was blocked.
                            return false;
                        }
                    }
                    Op::Read { .. } | Op::Write { .. } => {}
                }
            }
            finished.fetch_add(1, Ordering::SeqCst);
            true
        }));
    }

    // Wait for quiescence: every thread finished, or suspended on a level
    // strictly above its counter's value (i.e. genuinely blocked — a waiter
    // whose level is already satisfied is mid-wakeup and will progress).
    let deadline = Instant::now() + timeout;
    let nthreads = sk.num_threads();
    let report = loop {
        let done = finished.load(Ordering::SeqCst);
        if done == nthreads {
            break supervisor.diagnose();
        }
        let report = supervisor.diagnose();
        let suspended: usize = report
            .counters
            .iter()
            .flat_map(|c| c.waiters.iter())
            .map(|w| w.threads)
            .sum();
        let all_blocked = report
            .counters
            .iter()
            .all(|c| c.waiters.iter().all(|w| w.level > c.value));
        if done + suspended == nthreads && all_blocked && done == finished.load(Ordering::SeqCst) {
            break report;
        }
        assert!(
            Instant::now() < deadline,
            "skeleton run failed to quiesce: {done} finished, {suspended} suspended of {nthreads}"
        );
        std::thread::yield_now();
        std::thread::sleep(Duration::from_micros(50));
    };

    // Release any blocked threads and join everyone.
    supervisor.poison_all(FailureInfo::new("concrete-run teardown"));
    let mut completed = 0;
    for h in handles {
        if h.join().expect("skeleton thread panicked") {
            completed += 1;
        }
    }
    ConcreteRun {
        completed: completed == nthreads,
        blocked_threads: nthreads - completed,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::SkeletonBuilder;
    use mc_counter::StallVerdict;

    #[test]
    fn complete_skeleton_finishes_with_idle_report() {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        b.thread("p").inc(c, 1);
        b.thread("q").check(c, 1);
        let sk = b.build();
        let run = run_concrete(&sk, Duration::from_secs(10));
        assert!(run.completed);
        assert_eq!(run.blocked_threads, 0);
        for cr in &run.report.counters {
            assert_eq!(cr.verdict, StallVerdict::Idle);
        }
    }

    #[test]
    fn stuck_skeleton_diagnosed_never_satisfiable() {
        let mut b = SkeletonBuilder::new();
        let c = b.counter("c");
        b.thread("p").inc(c, 1);
        b.thread("q").check(c, 5);
        let sk = b.build();
        let run = run_concrete(&sk, Duration::from_secs(10));
        assert!(!run.completed);
        assert_eq!(run.blocked_threads, 1);
        let stuck = run.report.stuck();
        assert_eq!(stuck.len(), 1);
        assert_eq!(stuck[0].name, "c");
    }
}
